"""Equivalence tests for the fast paths.

The columnar capture, the vectorised binning and the merged link event chain
replaced scalar per-record/per-event implementations.  These tests pin the
new code to reference implementations of the old behaviour on randomized
inputs: identical filter results, bin-for-bin identical time series and
identical delivery timing.
"""

import random

import pytest

from repro.experiments.harness import paper_experiment, run_experiment, run_scenarios_parallel
from repro.measure.sampling import per_tag_timeseries, throughput_timeseries
from repro.netsim.capture import CaptureRecord, PacketCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.units import mbps, throughput_mbps, transmission_time


def random_capture(seed: int, count: int = 400) -> PacketCapture:
    """A capture with randomized tags, subflows, ACKs and retransmissions."""
    rng = random.Random(seed)
    cap = PacketCapture()
    for _ in range(count):
        is_ack = rng.random() < 0.3
        size = 60 if is_ack else rng.choice([200, 1000, 1460])
        cap.on_packet(
            Packet(
                "s",
                "d",
                size,
                tag=rng.choice([None, 1, 2, 3]),
                flow_id=rng.choice([1, 2]),
                subflow_id=rng.choice([0, 1, 2]),
                payload_len=0 if is_ack else size - 60,
                is_ack=is_ack,
                seq=rng.randrange(10**6),
                dsn=rng.randrange(10**6),
                is_retransmission=rng.random() < 0.05,
            ),
            round(rng.uniform(0.0, 4.0), 6),
        )
    return cap


def legacy_filter(records, *, tag=None, subflow_id=None, flow_id=None, data_only=True,
                  predicate=None):
    """The historical per-record filter loop, kept as the reference."""
    selected = []
    for record in records:
        if data_only and record.is_ack:
            continue
        if tag is not None and record.tag != tag:
            continue
        if subflow_id is not None and record.subflow_id != subflow_id:
            continue
        if flow_id is not None and record.flow_id != flow_id:
            continue
        if predicate is not None and not predicate(record):
            continue
        selected.append(record)
    return selected


def legacy_throughput_timeseries(records, interval, *, start=0.0, end=None,
                                 use_payload=False):
    """The historical per-record Python binning loop, kept as the reference."""
    records = list(records)
    if end is None:
        end = max((r.time for r in records), default=start) + interval
    bin_count = max(int((end - start) / interval + 0.5), 1)
    bins = [0] * bin_count
    for record in records:
        if record.time < start or record.time > end:
            continue
        index = min(int((record.time - start) / interval), bin_count - 1)
        bins[index] += record.payload_len if use_payload else record.size
    times = [start + (i + 1) * interval for i in range(bin_count)]
    values = [throughput_mbps(num_bytes, interval) for num_bytes in bins]
    return times, values


class TestColumnarCaptureEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_filter_matches_legacy(self, seed):
        cap = random_capture(seed)
        reference = cap.records
        cases = [
            {},
            {"data_only": False},
            {"tag": 1},
            {"tag": 2, "subflow_id": 1},
            {"flow_id": 2, "data_only": False},
            {"subflow_id": 0, "flow_id": 1},
            {"tag": 3, "predicate": lambda r: r.time > 1.0},
            {"predicate": lambda r: r.is_retransmission, "data_only": False},
        ]
        for kwargs in cases:
            assert cap.filter(**kwargs) == legacy_filter(reference, **kwargs)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_accounting_matches_legacy(self, seed):
        cap = random_capture(seed)
        reference = cap.records
        assert cap.tags() == sorted(
            {r.tag for r in reference if r.tag is not None and not r.is_ack}
        )
        assert cap.subflow_ids() == sorted({r.subflow_id for r in reference if not r.is_ack})
        assert cap.bytes_captured() == sum(r.size for r in reference if not r.is_ack)
        assert cap.bytes_captured(data_only=False) == sum(r.size for r in reference)
        assert cap.payload_bytes() == sum(r.payload_len for r in reference)

    def test_record_view_round_trips_none_tag(self):
        cap = PacketCapture()
        cap.on_packet(Packet("s", "d", 500, tag=None, payload_len=440), 0.25)
        record = cap.records[0]
        assert record.tag is None
        assert isinstance(record, CaptureRecord)

    def test_record_view_invalidated_by_append(self):
        cap = random_capture(7, count=10)
        before = len(cap.records)
        cap.on_packet(Packet("s", "d", 100, tag=1, payload_len=40), 5.0)
        assert len(cap.records) == before + 1


class TestVectorizedBinningEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("interval", [0.01, 0.1, 0.3])
    def test_bins_match_legacy_loop(self, seed, interval):
        cap = random_capture(seed)
        records = cap.filter()
        series = throughput_timeseries(records, interval)
        ref_times, ref_values = legacy_throughput_timeseries(records, interval)
        assert series.times == ref_times
        assert series.values == ref_values

    @pytest.mark.parametrize("kwargs", [
        {"start": 0.5, "end": 3.5},
        {"start": 0.0, "end": 10.0},
        {"use_payload": True},
        {"end": 2.0, "use_payload": True},
    ])
    def test_bins_match_legacy_with_options(self, kwargs):
        cap = random_capture(11)
        records = cap.filter()
        series = throughput_timeseries(records, 0.05, **kwargs)
        ref_times, ref_values = legacy_throughput_timeseries(records, 0.05, **kwargs)
        assert series.times == ref_times
        assert series.values == ref_values

    def test_empty_records(self):
        series = throughput_timeseries([], 0.1)
        ref_times, ref_values = legacy_throughput_timeseries([], 0.1)
        assert series.times == ref_times
        assert series.values == ref_values

    def test_capture_fast_path_matches_record_path(self):
        cap = random_capture(13)
        from_columns = throughput_timeseries(cap, 0.1, end=4.0)
        from_records = throughput_timeseries(cap.filter(), 0.1, end=4.0)
        assert from_columns.times == from_records.times
        assert from_columns.values == from_records.values

    @pytest.mark.parametrize("seed", [0, 4])
    def test_per_tag_grouped_pass_matches_per_filter(self, seed):
        cap = random_capture(seed)
        grouped = per_tag_timeseries(cap, 0.1, end=4.0)
        assert sorted(grouped) == cap.tags()
        for tag, series in grouped.items():
            ref_times, ref_values = legacy_throughput_timeseries(
                legacy_filter(cap.records, tag=tag), 0.1, end=4.0
            )
            assert series.times == ref_times
            assert series.values == ref_values

    def test_per_tag_default_end_is_per_tag(self):
        # With end=None each tag historically got its own range; the grouped
        # pass must preserve that.
        cap = PacketCapture()
        cap.on_packet(Packet("s", "d", 1000, tag=1, payload_len=940), 0.05)
        cap.on_packet(Packet("s", "d", 1000, tag=2, payload_len=940), 1.95)
        grouped = per_tag_timeseries(cap, 0.1)
        for tag in (1, 2):
            ref_times, ref_values = legacy_throughput_timeseries(
                legacy_filter(cap.records, tag=tag), 0.1
            )
            assert grouped[tag].times == ref_times
            assert grouped[tag].values == ref_values


class RecordingNode:
    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.received = []

    def receive(self, packet, link=None):
        self.received.append((self.sim.now, packet))


class TestMergedLinkEquivalence:
    """The single-delivery-event link must reproduce the classic
    serialise-then-propagate timing exactly."""

    def test_burst_delivery_times_match_two_event_chain(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(10), delay=0.003, queue=DropTailQueue(100))
        sizes = [1500, 500, 1460, 60, 1000]
        for size in sizes:
            link.send(Packet("a", "b", size))
        sim.run()
        # Reference: packet k starts when the previous serialisation ends.
        expected = []
        tx_end = 0.0
        for size in sizes:
            tx_end = tx_end + transmission_time(size, mbps(10))
            expected.append(tx_end + 0.003)
        assert [t for t, _ in dst.received] == pytest.approx(expected, abs=0.0)

    def test_staggered_arrivals_and_idle_gaps(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(50), delay=0.001)
        tx = transmission_time(1000, mbps(50))
        # Two back-to-back, then a gap long enough for the link to go idle.
        sim.schedule(0.0, link.send, Packet("a", "b", 1000))
        sim.schedule(0.0, link.send, Packet("a", "b", 1000))
        sim.schedule(1.0, link.send, Packet("a", "b", 1000))
        sim.run()
        times = [t for t, _ in dst.received]
        assert times[0] == pytest.approx(tx + 0.001, abs=0.0)
        assert times[1] == pytest.approx(2 * tx + 0.001, abs=0.0)
        assert times[2] == pytest.approx(1.0 + tx + 0.001, abs=0.0)

    def test_queue_occupancy_drops_match_capacity(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(1), delay=0.0, queue=DropTailQueue(2))
        results = [link.send(Packet("a", "b", 1000)) for _ in range(6)]
        # 1 serialising + 2 queued accepted, the other 3 dropped at enqueue.
        assert results == [True, True, True, False, False, False]
        assert link.drops == 3
        sim.run()
        assert len(dst.received) == 3


class TestEngineFastPath:
    def test_fast_and_slow_events_interleave_deterministically(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "slow-1")
        sim.schedule_fast(1.0, order.append, "fast-1")
        sim.schedule_fast(0.5, order.append, "fast-0.5")
        sim.schedule(1.0, order.append, "slow-2")
        sim.run()
        assert order == ["fast-0.5", "slow-1", "fast-1", "slow-2"]

    def test_schedule_fast_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_fast_at(0.75, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(0.75)]

    def test_schedule_fast_rejects_negative_delay(self):
        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_fast_at(-1.0, lambda: None)

    def test_cancelled_entries_feed_the_free_list(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        for event in events[:5]:
            event.cancel()
        sim.run()
        assert sim.free_list_size == 5
        # Recycled entries are reused by later schedules.
        sim.schedule(1.0, lambda: None)
        assert sim.free_list_size == 4

    def test_cancel_after_fire_does_not_corrupt_recycled_entry(self):
        sim = Simulator()
        stale = sim.schedule(0.5, lambda: None)
        cancelled = sim.schedule(0.6, lambda: None)
        cancelled.cancel()
        sim.run()  # drains both; the cancelled entry enters the free list
        seen = []
        fresh = sim.schedule(1.0, seen.append, "fresh")
        stale.cancel()  # stale handle may point at the recycled entry
        cancelled.cancel()
        sim.run()
        assert seen == ["fresh"]
        assert fresh.cancelled is False
        assert stale.cancelled is True


class TestParallelHarnessEquivalence:
    def test_parallel_sweep_matches_serial(self):
        configs = [
            paper_experiment("cubic", duration=0.4, sampling_interval=0.1),
            paper_experiment("lia", duration=0.4, sampling_interval=0.1),
        ]
        serial = [run_experiment(config) for config in configs]
        parallel = run_scenarios_parallel(configs, max_workers=2)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert p.total_series.values == s.total_series.values
            assert p.summary() == s.summary()
