"""Equivalence tests for the fast paths.

The columnar capture, the vectorised binning and the merged link event chain
replaced scalar per-record/per-event implementations, and the protocol-stack
fast path (packet/segment free lists, inlined sender/receiver hot paths,
O(1) scheduler dispatch, fused coupled-CC aggregation) rebuilt the per-packet
work of the transport layers.  These tests pin the new code two ways:

* against reference implementations of the old behaviour on randomized
  inputs (identical filter results, bin-for-bin identical series, identical
  delivery timing, identical coupled-increase floats); and
* against ``tests/data/golden_pipeline.json`` -- the full observable output
  of pinned single-flow and multi-flow scenarios computed by the tree from
  *before* the protocol fast path, which must round-trip bit-identically.
"""

import random

import pytest

from repro.experiments.harness import paper_experiment, run_experiment, run_scenarios_parallel
from repro.measure.sampling import per_tag_timeseries, throughput_timeseries
from repro.netsim.capture import CaptureRecord, PacketCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet, acquire, acquire_ack, acquire_data
from repro.netsim.queues import DropTailQueue
from repro.units import mbps, throughput_mbps, transmission_time

from tests import golden_pipeline


def random_capture(seed: int, count: int = 400) -> PacketCapture:
    """A capture with randomized tags, subflows, ACKs and retransmissions."""
    rng = random.Random(seed)
    cap = PacketCapture()
    for _ in range(count):
        is_ack = rng.random() < 0.3
        size = 60 if is_ack else rng.choice([200, 1000, 1460])
        cap.on_packet(
            Packet(
                "s",
                "d",
                size,
                tag=rng.choice([None, 1, 2, 3]),
                flow_id=rng.choice([1, 2]),
                subflow_id=rng.choice([0, 1, 2]),
                payload_len=0 if is_ack else size - 60,
                is_ack=is_ack,
                seq=rng.randrange(10**6),
                dsn=rng.randrange(10**6),
                is_retransmission=rng.random() < 0.05,
            ),
            round(rng.uniform(0.0, 4.0), 6),
        )
    return cap


def legacy_filter(records, *, tag=None, subflow_id=None, flow_id=None, data_only=True,
                  predicate=None):
    """The historical per-record filter loop, kept as the reference."""
    selected = []
    for record in records:
        if data_only and record.is_ack:
            continue
        if tag is not None and record.tag != tag:
            continue
        if subflow_id is not None and record.subflow_id != subflow_id:
            continue
        if flow_id is not None and record.flow_id != flow_id:
            continue
        if predicate is not None and not predicate(record):
            continue
        selected.append(record)
    return selected


def legacy_throughput_timeseries(records, interval, *, start=0.0, end=None,
                                 use_payload=False):
    """The historical per-record Python binning loop, kept as the reference."""
    records = list(records)
    if end is None:
        end = max((r.time for r in records), default=start) + interval
    bin_count = max(int((end - start) / interval + 0.5), 1)
    bins = [0] * bin_count
    for record in records:
        if record.time < start or record.time > end:
            continue
        index = min(int((record.time - start) / interval), bin_count - 1)
        bins[index] += record.payload_len if use_payload else record.size
    times = [start + (i + 1) * interval for i in range(bin_count)]
    values = [throughput_mbps(num_bytes, interval) for num_bytes in bins]
    return times, values


class TestColumnarCaptureEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_filter_matches_legacy(self, seed):
        cap = random_capture(seed)
        reference = cap.records
        cases = [
            {},
            {"data_only": False},
            {"tag": 1},
            {"tag": 2, "subflow_id": 1},
            {"flow_id": 2, "data_only": False},
            {"subflow_id": 0, "flow_id": 1},
            {"tag": 3, "predicate": lambda r: r.time > 1.0},
            {"predicate": lambda r: r.is_retransmission, "data_only": False},
        ]
        for kwargs in cases:
            assert cap.filter(**kwargs) == legacy_filter(reference, **kwargs)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_accounting_matches_legacy(self, seed):
        cap = random_capture(seed)
        reference = cap.records
        assert cap.tags() == sorted(
            {r.tag for r in reference if r.tag is not None and not r.is_ack}
        )
        assert cap.subflow_ids() == sorted({r.subflow_id for r in reference if not r.is_ack})
        assert cap.bytes_captured() == sum(r.size for r in reference if not r.is_ack)
        assert cap.bytes_captured(data_only=False) == sum(r.size for r in reference)
        assert cap.payload_bytes() == sum(r.payload_len for r in reference)

    def test_record_view_round_trips_none_tag(self):
        cap = PacketCapture()
        cap.on_packet(Packet("s", "d", 500, tag=None, payload_len=440), 0.25)
        record = cap.records[0]
        assert record.tag is None
        assert isinstance(record, CaptureRecord)

    def test_record_view_invalidated_by_append(self):
        cap = random_capture(7, count=10)
        before = len(cap.records)
        cap.on_packet(Packet("s", "d", 100, tag=1, payload_len=40), 5.0)
        assert len(cap.records) == before + 1


class TestVectorizedBinningEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("interval", [0.01, 0.1, 0.3])
    def test_bins_match_legacy_loop(self, seed, interval):
        cap = random_capture(seed)
        records = cap.filter()
        series = throughput_timeseries(records, interval)
        ref_times, ref_values = legacy_throughput_timeseries(records, interval)
        assert series.times == ref_times
        assert series.values == ref_values

    @pytest.mark.parametrize("kwargs", [
        {"start": 0.5, "end": 3.5},
        {"start": 0.0, "end": 10.0},
        {"use_payload": True},
        {"end": 2.0, "use_payload": True},
    ])
    def test_bins_match_legacy_with_options(self, kwargs):
        cap = random_capture(11)
        records = cap.filter()
        series = throughput_timeseries(records, 0.05, **kwargs)
        ref_times, ref_values = legacy_throughput_timeseries(records, 0.05, **kwargs)
        assert series.times == ref_times
        assert series.values == ref_values

    def test_empty_records(self):
        series = throughput_timeseries([], 0.1)
        ref_times, ref_values = legacy_throughput_timeseries([], 0.1)
        assert series.times == ref_times
        assert series.values == ref_values

    def test_capture_fast_path_matches_record_path(self):
        cap = random_capture(13)
        from_columns = throughput_timeseries(cap, 0.1, end=4.0)
        from_records = throughput_timeseries(cap.filter(), 0.1, end=4.0)
        assert from_columns.times == from_records.times
        assert from_columns.values == from_records.values

    @pytest.mark.parametrize("seed", [0, 4])
    def test_per_tag_grouped_pass_matches_per_filter(self, seed):
        cap = random_capture(seed)
        grouped = per_tag_timeseries(cap, 0.1, end=4.0)
        assert sorted(grouped) == cap.tags()
        for tag, series in grouped.items():
            ref_times, ref_values = legacy_throughput_timeseries(
                legacy_filter(cap.records, tag=tag), 0.1, end=4.0
            )
            assert series.times == ref_times
            assert series.values == ref_values

    def test_per_tag_default_end_is_per_tag(self):
        # With end=None each tag historically got its own range; the grouped
        # pass must preserve that.
        cap = PacketCapture()
        cap.on_packet(Packet("s", "d", 1000, tag=1, payload_len=940), 0.05)
        cap.on_packet(Packet("s", "d", 1000, tag=2, payload_len=940), 1.95)
        grouped = per_tag_timeseries(cap, 0.1)
        for tag in (1, 2):
            ref_times, ref_values = legacy_throughput_timeseries(
                legacy_filter(cap.records, tag=tag), 0.1
            )
            assert grouped[tag].times == ref_times
            assert grouped[tag].values == ref_values


class RecordingNode:
    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.received = []

    def receive(self, packet, link=None):
        self.received.append((self.sim.now, packet))


class TestMergedLinkEquivalence:
    """The single-delivery-event link must reproduce the classic
    serialise-then-propagate timing exactly."""

    def test_burst_delivery_times_match_two_event_chain(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(10), delay=0.003, queue=DropTailQueue(100))
        sizes = [1500, 500, 1460, 60, 1000]
        for size in sizes:
            link.send(Packet("a", "b", size))
        sim.run()
        # Reference: packet k starts when the previous serialisation ends.
        expected = []
        tx_end = 0.0
        for size in sizes:
            tx_end = tx_end + transmission_time(size, mbps(10))
            expected.append(tx_end + 0.003)
        assert [t for t, _ in dst.received] == pytest.approx(expected, abs=0.0)

    def test_staggered_arrivals_and_idle_gaps(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(50), delay=0.001)
        tx = transmission_time(1000, mbps(50))
        # Two back-to-back, then a gap long enough for the link to go idle.
        sim.schedule(0.0, link.send, Packet("a", "b", 1000))
        sim.schedule(0.0, link.send, Packet("a", "b", 1000))
        sim.schedule(1.0, link.send, Packet("a", "b", 1000))
        sim.run()
        times = [t for t, _ in dst.received]
        assert times[0] == pytest.approx(tx + 0.001, abs=0.0)
        assert times[1] == pytest.approx(2 * tx + 0.001, abs=0.0)
        assert times[2] == pytest.approx(1.0 + tx + 0.001, abs=0.0)

    def test_queue_occupancy_drops_match_capacity(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(1), delay=0.0, queue=DropTailQueue(2))
        results = [link.send(Packet("a", "b", 1000)) for _ in range(6)]
        # 1 serialising + 2 queued accepted, the other 3 dropped at enqueue.
        assert results == [True, True, True, False, False, False]
        assert link.drops == 3
        sim.run()
        assert len(dst.received) == 3


class TestEngineFastPath:
    def test_fast_and_slow_events_interleave_deterministically(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "slow-1")
        sim.schedule_fast(1.0, order.append, "fast-1")
        sim.schedule_fast(0.5, order.append, "fast-0.5")
        sim.schedule(1.0, order.append, "slow-2")
        sim.run()
        assert order == ["fast-0.5", "slow-1", "fast-1", "slow-2"]

    def test_schedule_fast_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_fast_at(0.75, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(0.75)]

    def test_schedule_fast_rejects_negative_delay(self):
        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_fast_at(-1.0, lambda: None)

    def test_cancelled_entries_feed_the_free_list(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        for event in events[:5]:
            event.cancel()
        sim.run()
        assert sim.free_list_size == 5
        # Recycled entries are reused by later schedules.
        sim.schedule(1.0, lambda: None)
        assert sim.free_list_size == 4

    def test_fired_entries_recycled_by_until_bounded_runs(self):
        # Network-style runs (run(until=...)) recycle fired entries too, so
        # the per-packet link pushes reuse them instead of allocating.
        sim = Simulator()
        for _ in range(8):
            sim.schedule(0.5, lambda: None)
        sim.run(until=1.0)
        assert sim.free_list_size == 8

    def test_cancel_after_fire_does_not_corrupt_recycled_entry(self):
        sim = Simulator()
        stale = sim.schedule(0.5, lambda: None)
        cancelled = sim.schedule(0.6, lambda: None)
        cancelled.cancel()
        sim.run()  # drains both; the cancelled entry enters the free list
        seen = []
        fresh = sim.schedule(1.0, seen.append, "fresh")
        stale.cancel()  # stale handle may point at the recycled entry
        cancelled.cancel()
        sim.run()
        assert seen == ["fresh"]
        assert fresh.cancelled is False
        assert stale.cancelled is True


class TestParallelHarnessEquivalence:
    def test_parallel_sweep_matches_serial(self):
        configs = [
            paper_experiment("cubic", duration=0.4, sampling_interval=0.1),
            paper_experiment("lia", duration=0.4, sampling_interval=0.1),
        ]
        serial = [run_experiment(config) for config in configs]
        parallel = run_scenarios_parallel(configs, max_workers=2)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert p.total_series.values == s.total_series.values
            assert p.summary() == s.summary()


class TestPacketPool:
    """The free-list packet pool must never mutate a packet behind a holder."""

    def test_acquired_packets_recycle(self):
        p = acquire_data("a", "b", 1500, 1, 7, 0, 100, 1460, 100, False, 0.5)
        assert p._poolable
        pid = id(p)
        p.release()
        q = acquire_ack("b", "a", 60, 1, 7, 0, 1560, 1560, (), 0.5, 0.6)
        assert id(q) == pid  # LIFO reuse of the released instance
        assert q.is_ack and q.ack == 1560 and q.payload_len == 0
        assert q.sack_blocks == ()
        q.release()

    def test_constructor_packets_never_pooled(self):
        p = Packet("a", "b", 100)
        assert not p._poolable
        p.release()  # no-op
        q = acquire("a", "b", 100, None, 1, 0, "tcp", 0, 40, False, 0, 0, 0,
                    False, (), -1.0, 0.0)
        assert q is not p
        q.release()

    def test_double_release_is_harmless(self):
        p = acquire("a", "b", 100, None, 1, 0, "tcp", 0, 40, False, 0, 0, 0,
                    False, (), -1.0, 0.0)
        p.release()
        p.release()  # second release must not enqueue the object twice
        q = acquire("a", "b", 100, None, 2, 0, "tcp", 0, 40, False, 0, 0, 0,
                    False, (), -1.0, 0.0)
        r = acquire("a", "b", 100, None, 3, 0, "tcp", 0, 40, False, 0, 0, 0,
                    False, (), -1.0, 0.0)
        assert q is not r
        q.release()
        r.release()

    def test_acquire_matches_constructor_fields(self):
        a = acquire("s", "d", 1500, 2, 9, 1, "tcp", 11, 1460, False, 0, 22,
                    33, True, ((5, 9),), 0.25, 1.5)
        b = Packet("s", "d", 1500, tag=2, flow_id=9, subflow_id=1,
                   protocol="tcp", seq=11, payload_len=1460, is_ack=False,
                   ack=0, dsn=22, dack=33, is_retransmission=True,
                   sack_blocks=((5, 9),), ts_echo=0.25, created_at=1.5)
        for field in ("src", "dst", "size", "tag", "flow_id", "subflow_id",
                      "protocol", "seq", "payload_len", "is_ack", "ack",
                      "dsn", "dack", "is_retransmission", "sack_blocks",
                      "ts_echo", "created_at", "enqueued_at", "hops", "ecn"):
            assert getattr(a, field) == getattr(b, field), field
        assert b.packet_id > a.packet_id


class TestPureAckFastPath:
    """Satellite audit: pure ACKs must carry no dead per-packet work."""

    def _run_one_second(self):
        from repro.netsim.network import Network
        from repro.netsim.topology import Topology
        from repro.tcp.connection import TcpConnection

        topology = Topology("ack-audit")
        topology.add_host("s")
        topology.add_host("d")
        topology.add_link("s", "d", 50.0, 0.002, 1000)
        network = Network(topology)
        network.install_path(["s", "d"], tag=1, as_default=True)
        # Bounded transfer far below the queue capacity: the run stays
        # loss-free, so every ACK is a pure in-order cumulative ACK.
        connection = TcpConnection(
            network, "s", "d", cc="reno", tag=1, total_bytes=200 * 1460
        )
        return network, connection

    def test_in_order_acks_share_the_empty_sack_tuple(self):
        network, connection = self._run_one_second()
        sender = connection.sender
        seen = []

        class Tap:
            def handle_packet(self, packet):
                seen.append(packet.sack_blocks)
                sender.handle_packet(packet)

        host = network.host("s")
        host.unregister_agent(connection.flow_id, 0)
        host.register_agent(connection.flow_id, 0, Tap())
        connection.start(0.0)
        network.run(0.5)
        assert seen, "no ACKs observed"
        # Loss-free in-order run: every ACK carries the shared empty tuple
        # (no per-ACK tuple allocation on the fast path).
        empty = ()
        assert all(blocks is empty for blocks in seen)

    def test_data_only_capture_records_nothing_for_acks(self):
        cap = PacketCapture(data_only=True)
        ack = acquire_ack("d", "s", 60, 1, 1, 0, 1460, 1460, (), 0.1, 0.2)
        cap.on_packet(ack, 0.2)
        assert len(cap) == 0
        ack.release()


def _reference_lia_increase(members, me, acked_segments):
    """The historical multi-pass LIA update, kept as the reference."""
    total_cwnd = sum(m.cwnd for m in members)
    if total_cwnd <= 0 or me.cwnd <= 0:
        return max(me.cwnd, 1.0) - me.cwnd
    denominator = sum(m.cwnd / m.rtt_or_default() for m in members) ** 2
    if total_cwnd <= 0 or denominator <= 0:
        alpha = 1.0
    else:
        alpha = total_cwnd * max(
            m.cwnd / (m.rtt_or_default() ** 2) for m in members
        ) / denominator
    coupled = alpha * acked_segments / total_cwnd
    uncoupled = acked_segments / me.cwnd
    return min(coupled, uncoupled)


class TestCoupledFusedPassEquivalence:
    """The fused one-pass aggregates must be bit-identical to the old loops."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_lia_increase_matches_multi_pass_reference(self, seed):
        from repro.core.coupled import CouplingGroup, LiaCongestionControl

        rng = random.Random(seed)
        group = CouplingGroup()
        members = [LiaCongestionControl(mss=1460, group=group) for _ in range(3)]
        for m in members:
            m.cwnd = rng.uniform(1.0, 120.0)
            m.ssthresh = 1.0  # force congestion avoidance
            m.srtt = rng.uniform(0.001, 0.3)
        for m in members:
            acked = rng.uniform(0.1, 2.0)
            expected = m.cwnd + _reference_lia_increase(members, m, acked)
            m._congestion_avoidance(acked, m.srtt, 1.0)
            assert m.cwnd == expected  # exact float equality

    @pytest.mark.parametrize("algorithm", ["olia", "balia", "wvegas"])
    def test_fused_algorithms_reproduce_golden_series(self, algorithm):
        # End-to-end: one short run per algorithm is deterministic, so two
        # consecutive runs must produce identical series (guards against
        # order-dependent state in the fused passes / cached member lists).
        config = paper_experiment(algorithm, duration=0.5, sampling_interval=0.1)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.total_series.values == second.total_series.values

    def test_members_of_cache_invalidated_on_membership_change(self):
        from repro.core.coupled import CouplingGroup, OliaCongestionControl

        group = CouplingGroup()
        a = OliaCongestionControl(mss=1460, group=group)
        assert group.members_of(OliaCongestionControl) == [a]
        b = OliaCongestionControl(mss=1460, group=group)
        assert group.members_of(OliaCongestionControl) == [a, b]
        group.unregister(a)
        assert group.members_of(OliaCongestionControl) == [b]


class TestSchedulerFastDispatch:
    """O(1) unconstrained dispatch must be indistinguishable from the full path."""

    def _throughputs(self, scheduler, send_buffer_bytes):
        config = paper_experiment("cubic", duration=0.6, sampling_interval=0.1)
        config = config.with_overrides(
            scheduler=scheduler, send_buffer_bytes=send_buffer_bytes
        )
        return run_experiment(config).total_series.values

    @pytest.mark.parametrize("scheduler", ["minrtt", "roundrobin"])
    def test_unconstrained_equals_forced_slow_path(self, scheduler, monkeypatch):
        from repro.core import connection as connection_module

        fast = self._throughputs(scheduler, None)
        # Force the generic scheduler dispatch by disabling the fast flag.
        original_init = connection_module.MptcpConnection.__init__

        def patched(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            self._fast_allocate = False

        monkeypatch.setattr(connection_module.MptcpConnection, "__init__", patched)
        slow = self._throughputs(scheduler, None)
        assert fast == slow

    def test_minrtt_single_pass_picks_first_minimum(self):
        # Construct sender stubs with equal SRTTs: the historical
        # min()-over-candidates kept the first subflow; the single-pass scan
        # must do the same.
        from repro.core.scheduler import MinRttScheduler

        class StubRtt:
            def __init__(self, srtt):
                self.srtt = srtt

            def smoothed(self, default=0.01):
                return self.srtt if self.srtt is not None else default

        class StubCc:
            cwnd = 10.0
            mss = 1460

        class StubSender:
            def __init__(self, srtt):
                self.snd_nxt = 0
                self.snd_una = 0
                self.mss = 1460
                self.cc = StubCc()
                self.rtt = StubRtt(srtt)

        class StubSubflow:
            def __init__(self, srtt):
                self.sender = StubSender(srtt)
                self.state = "active"

        class StubAllocator:
            send_buffer_bytes = 1
            total_bytes = None

            def allocate(self, max_bytes):
                return (0, max_bytes)

        class StubConnection:
            allocator = StubAllocator()

        first, second = StubSubflow(0.05), StubSubflow(0.05)
        StubConnection.subflows = [first, second]
        scheduler = MinRttScheduler()
        assert scheduler.allocate(StubConnection(), first, 1460) == (0, 1460)
        assert scheduler.allocate(StubConnection(), second, 1460) is None


@pytest.mark.usefixtures("each_kernel")
class TestGoldenPipelineEquivalence:
    """Every pinned scenario must reproduce its pre-fast-path output exactly.

    The golden file stores *all* float samples of every throughput series
    (JSON round-trips IEEE-754 doubles exactly), plus drop/retransmission
    counters, generated before the protocol fast path landed.  Parametrized
    over both kernels (``each_kernel``): the compiled event loop must
    reproduce the same bytes as the pure-Python reference.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return golden_pipeline.load_golden()

    @pytest.mark.parametrize("cc", ["cubic", "lia", "olia"])
    def test_single_flow_series_byte_identical(self, golden, cc):
        fresh = golden_pipeline.single_flow_case(cc)
        assert fresh == golden[f"single/{cc}"]

    def test_bounded_buffer_scheduler_series_byte_identical(self, golden):
        fresh = golden_pipeline.single_flow_case(
            "cubic", scheduler="roundrobin", send_buffer_bytes=256 * 1024
        )
        assert fresh == golden["single/cubic-roundrobin-bounded"]
        fresh = golden_pipeline.single_flow_case(
            "lia", scheduler="minrtt", send_buffer_bytes=192 * 1024
        )
        assert fresh == golden["single/lia-minrtt-bounded"]

    def test_mptcp_vs_tcp_shared_bottleneck_byte_identical(self, golden):
        from repro.experiments.scenarios import mptcp_vs_tcp_shared_bottleneck

        fresh = golden_pipeline.multi_flow_case(
            mptcp_vs_tcp_shared_bottleneck(
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            )
        )
        assert fresh == golden["multi/mptcp_vs_tcp_shared_bottleneck"]

    def test_two_mptcp_competition_byte_identical(self, golden):
        from repro.experiments.scenarios import two_mptcp_competition

        fresh = golden_pipeline.multi_flow_case(
            two_mptcp_competition(
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            )
        )
        assert fresh == golden["multi/two_mptcp_competition"]

    def test_mptcp_vs_tcp_olia_byte_identical(self, golden):
        from repro.experiments.scenarios import mptcp_vs_tcp_shared_bottleneck

        fresh = golden_pipeline.multi_flow_case(
            mptcp_vs_tcp_shared_bottleneck(
                congestion_control="olia",
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            )
        )
        assert fresh == golden["multi/mptcp_vs_tcp_olia"]

    def test_red_ecn_single_flow_byte_identical(self, golden):
        # AQM scenes decline the native bypass (the kernel's eligibility
        # check requires drop-tail queues), so the compiled leg of this test
        # pins the Python handlers under the compiled event loop against the
        # same golden bytes as the pure-Python loop.
        fresh = golden_pipeline.single_flow_case("lia", queue_kind="red", ecn=True)
        assert fresh == golden["single/lia-red-ecn"]

    def test_codel_multi_flow_byte_identical(self, golden):
        from repro.experiments.scenarios import aqm_vs_droptail

        fresh = golden_pipeline.multi_flow_case(
            aqm_vs_droptail(
                queue_kind="codel",
                ecn=True,
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            )
        )
        assert fresh == golden["multi/aqm_codel_ecn"]


class TestAqmDeclinesNativeBypass:
    """The whole-window native pipeline must refuse non-drop-tail scenes.

    The eligibility plan requires ``type(link.queue) is DropTailQueue``; a
    RED or CoDel link makes ``run_network`` return None (untouched scene,
    Python fallback) where the identical drop-tail scene runs natively.
    """

    @staticmethod
    def build_network(queue_kind):
        from repro.netsim.network import Network
        from repro.tcp.connection import TcpConnection

        from .conftest import make_chain_topology

        topology = make_chain_topology(capacity_mbps=20.0)
        if queue_kind != "droptail":
            topology.set_queue_kind(queue_kind)
        network = Network(topology)
        network.install_path(["s", "r1", "d"], tag=1, as_default=True)
        connection = TcpConnection(network, "s", "d", cc="reno", tag=1)
        connection.start(0.0)
        return network

    @pytest.mark.parametrize("queue_kind", ["red", "codel"])
    def test_aqm_scene_is_ineligible(self, queue_kind):
        from repro import kernel
        from repro.kernel.pipeline import run_network

        available, reason = kernel.compiled_available()
        if not available:
            pytest.skip(f"compiled kernel unavailable: {reason}")
        with kernel.override("compiled"):
            ext = kernel.compiled_module()
            assert ext is not None
            network = self.build_network(queue_kind)
            assert run_network(network, 0.5, ext) is None
            # Positive control: the same scene with drop-tail queues runs
            # natively, so the decline above is the queue discipline's doing.
            control = self.build_network("droptail")
            assert run_network(control, 0.5, ext) is not None
