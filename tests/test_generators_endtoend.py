"""Every topology generator run end-to-end through the experiment harness.

For each generated scenario the analytical LP optimum must be finite and
positive, and the throughput an MPTCP connection actually achieves must not
exceed it (wire-overhead tolerance aside) -- the basic sanity contract
between the packet-level simulator and the analytical model on every
topology family, not just the paper's network.
"""

import pytest

from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.topologies.generators import (
    disjoint_paths,
    pairwise_overlap,
    parking_lot,
    shared_bottleneck,
    two_bottleneck_diamond,
    wifi_cellular,
)

GENERATORS = {
    "shared_bottleneck": lambda: shared_bottleneck(2, bottleneck_mbps=40.0),
    "disjoint_paths": lambda: disjoint_paths((40.0, 20.0)),
    "wifi_cellular": lambda: wifi_cellular(wifi_mbps=40.0, cellular_mbps=20.0),
    "parking_lot": lambda: parking_lot(segments=3, segment_mbps=40.0),
    "pairwise_overlap": lambda: pairwise_overlap(3, capacities=(40.0, 60.0, 80.0)),
    "two_bottleneck_diamond": lambda: two_bottleneck_diamond(),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generator_end_to_end(name):
    scenario = GENERATORS[name]()
    config = ExperimentConfig(
        name=f"e2e-{name}",
        scenario=scenario,
        congestion_control="lia",
        duration=1.5,
    )
    result = run_experiment(config)

    optimum = result.optimum.total
    assert optimum > 0.0
    assert optimum != float("inf")
    # The connection moves data and does not beat the analytical optimum
    # (5% slack: the series counts wire bytes, the LP counts capacity).
    assert result.achieved_total_mbps > 0.0
    assert result.achieved_total_mbps <= optimum * 1.05
    # One series per path, on the configured sampling grid.
    assert set(result.per_path_series) == {path.tag for path in scenario[1]}
    assert len(result.total_series) == int(config.duration / config.sampling_interval)
