"""Greedy filling, max-min fairness, Pareto analysis, gradient ascent, polytope."""

import pytest

from repro.errors import ModelError
from repro.model.bottleneck import build_constraints
from repro.model.gradient import project_onto_feasible, projected_gradient_ascent
from repro.model.greedy import best_greedy_order, greedy_fill, worst_greedy_order
from repro.model.lp import max_total_throughput
from repro.model.maxmin import max_min_fair_rates
from repro.model.pareto import (
    blocking_constraints,
    improving_exchange,
    is_pareto_optimal,
    optimality_gap,
    pareto_frontier_2d,
)
from repro.model.polytope import enumerate_vertices, feasible_region_volume, maximize_over_vertices
from repro.topologies.generators import disjoint_paths
from repro.topologies.paper import build_paper_topology, paper_paths


@pytest.fixture
def system():
    return build_constraints(build_paper_topology(), paper_paths(), include_private_links=False)


class TestGreedy:
    def test_greedy_from_default_path_is_suboptimal(self, system):
        # Fill Path 2 (the default) first, as MPTCP does at start-up.
        result = greedy_fill(system, order=[1, 0, 2])
        assert result.rates[1] == pytest.approx(40.0)
        assert result.total < 90.0 - 1e-6

    def test_greedy_result_is_feasible_and_pareto(self, system):
        result = greedy_fill(system, order=[1, 0, 2])
        assert system.is_feasible(result.rates)
        assert is_pareto_optimal(system, result.rates)

    def test_every_order_is_feasible(self, system):
        import itertools

        for order in itertools.permutations(range(3)):
            result = greedy_fill(system, list(order))
            assert system.is_feasible(result.rates)

    def test_best_greedy_no_better_than_lp(self, system):
        assert best_greedy_order(system).total <= 90.0 + 1e-6

    def test_worst_greedy_no_better_than_best(self, system):
        assert worst_greedy_order(system).total <= best_greedy_order(system).total + 1e-9

    def test_invalid_order_rejected(self, system):
        with pytest.raises(ModelError):
            greedy_fill(system, order=[0, 0, 1])

    def test_infeasible_start_rejected(self, system):
        with pytest.raises(ModelError):
            greedy_fill(system, start_rates=[100.0, 0.0, 0.0])

    def test_greedy_on_disjoint_paths_is_optimal(self):
        topology, paths = disjoint_paths((30.0, 50.0))
        system = build_constraints(topology, paths)
        assert greedy_fill(system).total == pytest.approx(80.0)


class TestMaxMin:
    def test_maxmin_is_feasible(self, system):
        result = max_min_fair_rates(system)
        assert system.is_feasible(result.rates)

    def test_maxmin_below_lp_optimum_on_paper_topology(self, system):
        result = max_min_fair_rates(system)
        assert result.total < 90.0

    def test_smallest_rate_is_maximal(self, system):
        # The defining property: no allocation can raise the minimum rate.
        result = max_min_fair_rates(system)
        min_rate = min(result.rates)
        assert min_rate == pytest.approx(20.0)  # equal split of the 40-link

    def test_every_path_frozen_by_a_constraint(self, system):
        result = max_min_fair_rates(system)
        assert all(constraint is not None for constraint in result.freezing_constraints)

    def test_disjoint_paths_each_fill_their_capacity(self):
        topology, paths = disjoint_paths((30.0, 50.0))
        system = build_constraints(topology, paths)
        result = max_min_fair_rates(system)
        assert result.rates == pytest.approx([30.0, 50.0])


class TestPareto:
    def test_greedy_point_is_pareto_but_improvable_jointly(self, system):
        greedy = greedy_fill(system, order=[1, 0, 2])
        assert is_pareto_optimal(system, greedy.rates)
        exchange = improving_exchange(system, greedy.rates)
        assert exchange is not None
        assert exchange.total_gain > 0
        # The exchange lowers the default path and raises the others, exactly
        # the rebalancing described in Section 3 of the paper.
        assert 1 in exchange.decreased_paths
        assert exchange.increased_paths

    def test_optimum_has_no_improving_exchange(self, system):
        optimum = max_total_throughput(system)
        assert improving_exchange(system, optimum.rates) is None

    def test_zero_allocation_is_not_pareto(self, system):
        assert not is_pareto_optimal(system, [0.0, 0.0, 0.0])

    def test_infeasible_point_rejected(self, system):
        with pytest.raises(ModelError):
            is_pareto_optimal(system, [100.0, 0.0, 0.0])

    def test_blocking_constraints_at_greedy_point(self, system):
        greedy = greedy_fill(system, order=[1, 0, 2])
        blockers = blocking_constraints(system, greedy.rates, index=0)
        assert blockers  # path 1 cannot grow because of the 40-link

    def test_optimality_gap(self, system):
        greedy = greedy_fill(system, order=[1, 0, 2])
        gap = optimality_gap(system, greedy.rates)
        assert gap == pytest.approx(90.0 - greedy.total)
        assert optimality_gap(system, max_total_throughput(system).rates) == pytest.approx(0.0, abs=1e-5)

    def test_pareto_frontier_sweep(self, system):
        frontier = pareto_frontier_2d(system, fixed_index=1, fixed_values=[0, 10, 20, 30, 40])
        totals = [sum(point) for point in frontier]
        assert max(totals) == pytest.approx(90.0, abs=1e-4)
        # Forcing the default path to its full 40 Mbps lowers the best total.
        assert totals[-1] < 90.0


class TestGradient:
    def test_projection_of_feasible_point_is_identity(self, system):
        point = [10.0, 10.0, 10.0]
        assert project_onto_feasible(system, point) == pytest.approx(point, abs=1e-6)

    def test_projection_result_is_feasible(self, system):
        projected = project_onto_feasible(system, [100.0, 100.0, 100.0])
        assert system.is_feasible(projected, tol=1e-5)

    def test_projection_dimension_validated(self, system):
        with pytest.raises(ModelError):
            project_onto_feasible(system, [1.0, 2.0])

    def test_gradient_ascent_reaches_lp_optimum(self, system):
        trace = projected_gradient_ascent(system)
        assert trace.final_total == pytest.approx(90.0, abs=0.5)

    def test_gradient_ascent_escapes_greedy_corner(self, system):
        greedy = greedy_fill(system, order=[1, 0, 2])
        trace = projected_gradient_ascent(system, start=greedy.rates)
        assert trace.final_total > greedy.total + 5.0

    def test_totals_never_leave_feasible_region(self, system):
        trace = projected_gradient_ascent(system, iterations=50)
        for iterate in trace.iterates:
            assert system.is_feasible(iterate, tol=1e-4)


class TestPolytope:
    def test_vertices_are_feasible(self, system):
        for vertex in enumerate_vertices(system):
            assert system.is_feasible(vertex, tol=1e-6)

    def test_origin_is_a_vertex(self, system):
        assert [0.0, 0.0, 0.0] in enumerate_vertices(system)

    def test_lp_optimum_is_a_vertex(self, system):
        vertices = enumerate_vertices(system)
        best = maximize_over_vertices(system)
        assert best in vertices
        assert sum(best) == pytest.approx(90.0)

    def test_volume_positive_and_bounded_by_box(self, system):
        volume = feasible_region_volume(system, samples=5000, seed=1)
        assert 0 < volume < 40.0 * 60.0 * 80.0

    def test_unbounded_region_detected(self):
        from repro.model.bottleneck import Constraint, ConstraintSystem
        from repro.model.paths import Path

        paths = [Path(["s", "a", "d"]), Path(["s", "b", "d"])]
        constraints = [Constraint(link=("s", "a"), capacity=10.0, path_indices=(0,))]
        system = ConstraintSystem(paths, constraints)
        with pytest.raises(ModelError):
            enumerate_vertices(system)
