"""Property-based tests for the simulation substrate (queues, DSN, sampling, engine)."""

from hypothesis import given, settings, strategies as st

from repro.core.options import DsnReassembler
from repro.measure.sampling import throughput_timeseries
from repro.netsim.capture import CaptureRecord
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.tcp.rtt import RttEstimator


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_run_until_never_executes_later_events(self, delays, horizon):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=horizon)
        assert all(delay <= horizon for delay in fired)


class TestQueueProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, capacity, sizes):
        queue = DropTailQueue(capacity_packets=capacity)
        for size in sizes:
            queue.enqueue(Packet("s", "d", size), 0.0)
        assert len(queue) <= capacity
        assert queue.stats.enqueued + queue.stats.dropped == len(sizes)

    @given(st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_fifo_conservation(self, sizes):
        queue = DropTailQueue(capacity_packets=1000)
        packets = [Packet("s", "d", size) for size in sizes]
        for packet in packets:
            queue.enqueue(packet, 0.0)
        drained = []
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            drained.append(packet)
        assert drained == packets
        assert queue.byte_count == 0


class TestDsnReassemblerProperties:
    @given(st.permutations(list(range(20))), st.integers(min_value=100, max_value=1500))
    @settings(max_examples=50, deadline=None)
    def test_any_delivery_order_reassembles_completely(self, order, chunk):
        reasm = DsnReassembler()
        for index in order:
            reasm.deliver(index * chunk, chunk, now=0.0)
        assert reasm.data_ack == 20 * chunk
        assert reasm.delivered_bytes == 20 * chunk
        assert reasm.out_of_order_bytes == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=60),
        st.integers(min_value=100, max_value=1500),
    )
    @settings(max_examples=50, deadline=None)
    def test_duplicates_never_inflate_delivered_bytes(self, indices, chunk):
        reasm = DsnReassembler()
        for index in indices:
            reasm.deliver(index * chunk, chunk, now=0.0)
        unique = len(set(indices))
        # Delivered bytes can be less (holes) but never more than unique chunks.
        assert reasm.delivered_bytes + reasm.out_of_order_bytes == unique * chunk
        assert reasm.data_ack <= unique * chunk


class TestSamplingProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.integers(min_value=60, max_value=1500),
            ),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from([0.01, 0.05, 0.1]),
    )
    @settings(max_examples=50, deadline=None)
    def test_binning_conserves_bytes(self, arrivals, interval):
        records = [
            CaptureRecord(
                time=t,
                size=size,
                payload_len=size,
                tag=1,
                flow_id=1,
                subflow_id=0,
                is_ack=False,
                seq=0,
                dsn=0,
                is_retransmission=False,
            )
            for t, size in arrivals
        ]
        series = throughput_timeseries(records, interval=interval, start=0.0, end=1.0 + interval)
        binned_bytes = sum(v * 1e6 / 8 * interval for v in series.values)
        assert abs(binned_bytes - sum(size for _, size in arrivals)) < 1e-3

    @given(st.lists(st.floats(min_value=0.001, max_value=0.5), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_rtt_estimator_stays_within_sample_range(self, samples):
        estimator = RttEstimator()
        for sample in samples:
            estimator.update(sample)
        assert min(samples) <= estimator.srtt <= max(samples)
        assert estimator.min_rtt == min(samples)
