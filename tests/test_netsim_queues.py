"""Drop-tail, RED and CoDel queue behaviour."""

import pytest

from repro.netsim.packet import Packet
from repro.netsim.queues import (
    ECN_CE,
    ECN_ECT,
    CoDelQueue,
    DropTailQueue,
    QUEUE_KINDS,
    REDQueue,
    make_queue,
)


def make_packet(size=1500, ecn=0):
    packet = Packet("s", "d", size)
    packet.ecn = ecn
    return packet


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10)
        first, second = make_packet(), make_packet()
        queue.enqueue(first, 0.0)
        queue.enqueue(second, 0.0)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(capacity_packets=2)
        assert queue.enqueue(make_packet(), 0.0)
        assert queue.enqueue(make_packet(), 0.0)
        assert not queue.enqueue(make_packet(), 0.0)
        assert queue.stats.dropped == 1
        assert len(queue) == 2

    def test_byte_count_tracks_contents(self):
        queue = DropTailQueue(capacity_packets=10)
        queue.enqueue(make_packet(1000), 0.0)
        queue.enqueue(make_packet(500), 0.0)
        assert queue.byte_count == 1500
        queue.dequeue()
        assert queue.byte_count == 500

    def test_stats_counters(self):
        queue = DropTailQueue(capacity_packets=1)
        queue.enqueue(make_packet(100), 0.0)
        queue.enqueue(make_packet(200), 0.0)  # dropped
        queue.dequeue()
        stats = queue.stats.as_dict()
        assert stats["enqueued"] == 1
        assert stats["dropped"] == 1
        assert stats["dequeued"] == 1
        assert stats["bytes_dropped"] == 200
        assert stats["max_depth"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0)

    def test_enqueued_timestamp_recorded(self):
        queue = DropTailQueue()
        packet = make_packet()
        queue.enqueue(packet, 1.25)
        assert packet.enqueued_at == 1.25

    def test_is_empty(self):
        queue = DropTailQueue()
        assert queue.is_empty
        queue.enqueue(make_packet(), 0.0)
        assert not queue.is_empty


class TestRedQueue:
    def test_accepts_everything_when_lightly_loaded(self):
        queue = REDQueue(capacity_packets=100, seed=1)
        accepted = sum(queue.enqueue(make_packet(), 0.0) for _ in range(10))
        assert accepted == 10

    def test_never_exceeds_hard_capacity(self):
        queue = REDQueue(capacity_packets=20, seed=1)
        for _ in range(200):
            queue.enqueue(make_packet(), 0.0)
        assert len(queue) <= 20

    def test_drops_probabilistically_under_sustained_load(self):
        queue = REDQueue(capacity_packets=50, min_threshold=5, max_threshold=15, seed=3)
        # Keep the queue long so the average crosses the thresholds.
        for _ in range(500):
            queue.enqueue(make_packet(), 0.0)
        assert queue.stats.dropped > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            queue = REDQueue(capacity_packets=30, min_threshold=2, max_threshold=10, seed=seed)
            return [queue.enqueue(make_packet(), 0.0) for _ in range(300)]

        assert run(7) == run(7)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            REDQueue(capacity_packets=10, min_threshold=8, max_threshold=4)


class TestQueueFactory:
    def test_droptail_by_name(self):
        assert isinstance(make_queue("droptail", 10), DropTailQueue)

    def test_fifo_alias(self):
        assert isinstance(make_queue("fifo", 10), DropTailQueue)

    def test_red_by_name(self):
        assert isinstance(make_queue("red", 10), REDQueue)

    def test_codel_by_name(self):
        assert isinstance(make_queue("codel", 10), CoDelQueue)

    def test_all_registered_kinds_constructible(self):
        for kind in QUEUE_KINDS:
            assert make_queue(kind, 10).capacity_packets == 10

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_queue("pie", 10)

    def test_capacity_forwarded(self):
        assert make_queue("droptail", 7).capacity_packets == 7


class TestRedIdleDecay:
    def test_average_decays_across_idle_period(self):
        """Floyd & Jacobson: the EWMA must decay while the queue sits empty."""
        queue = REDQueue(capacity_packets=50, seed=1, ecn=False)
        # Build up a non-trivial average.
        for _ in range(200):
            queue.enqueue(make_packet(), 0.0)
        while queue.dequeue(0.0) is not None:
            pass
        busy_avg = queue.average_queue
        assert busy_avg > 0.0
        # One arrival after a long idle gap: the decayed average must be far
        # below the busy-period average.
        queue.enqueue(make_packet(), 10.0)
        assert queue.average_queue < busy_avg * 0.01

    def test_no_decay_without_idle_gap(self):
        queue = REDQueue(capacity_packets=50, seed=1, ecn=False)
        for _ in range(100):
            queue.enqueue(make_packet(), 0.0)
        avg = queue.average_queue
        queue.enqueue(make_packet(), 0.0)
        assert queue.average_queue >= avg


def sustain_backlog(queue, n, depth, ecn=0):
    """Offer ``n`` packets while a drain keeps the standing queue at ``depth``."""
    packets = []
    for _ in range(n):
        packet = make_packet(ecn=ecn)
        packets.append(packet)
        queue.enqueue(packet, 0.0)
        while len(queue) > depth:
            queue.dequeue(0.0)
    return packets


class TestRedEcn:
    def test_marks_ect_packets_instead_of_dropping(self):
        queue = REDQueue(
            capacity_packets=50, min_threshold=2, max_threshold=10, seed=3, ecn=True
        )
        sustain_backlog(queue, 1000, depth=20, ecn=ECN_ECT)
        assert queue.stats.ecn_marks > 0
        assert queue.stats.early_drops == 0

    def test_marked_packets_carry_ce(self):
        queue = REDQueue(
            capacity_packets=50, min_threshold=2, max_threshold=10, seed=3, ecn=True
        )
        packets = sustain_backlog(queue, 1000, depth=20, ecn=ECN_ECT)
        marked = [p for p in packets if p.ecn == ECN_CE]
        assert len(marked) == queue.stats.ecn_marks

    def test_non_ect_traffic_still_dropped(self):
        queue = REDQueue(
            capacity_packets=50, min_threshold=2, max_threshold=10, seed=3, ecn=True
        )
        sustain_backlog(queue, 1000, depth=20, ecn=0)
        assert queue.stats.early_drops > 0
        assert queue.stats.ecn_marks == 0

    def test_early_and_full_drops_counted_separately(self):
        queue = REDQueue(
            capacity_packets=10, min_threshold=1, max_threshold=4, seed=5, ecn=False
        )
        sustain_backlog(queue, 1000, depth=8)
        stats = queue.stats
        assert stats.early_drops > 0
        assert stats.full_drops >= 0
        assert stats.early_drops + stats.full_drops == stats.dropped
        as_dict = stats.as_dict()
        assert as_dict["early_drops"] == stats.early_drops
        assert as_dict["full_drops"] == stats.full_drops


class TestCoDelQueue:
    def test_fifo_when_under_target(self):
        queue = CoDelQueue(capacity_packets=10)
        first, second = make_packet(), make_packet()
        queue.enqueue(first, 0.0)
        queue.enqueue(second, 0.0)
        assert queue.dequeue(0.001) is first
        assert queue.dequeue(0.001) is second
        assert queue.stats.dropped == 0

    def test_drops_when_sojourn_exceeds_target_for_interval(self):
        queue = CoDelQueue(capacity_packets=100, target=0.005, interval=0.1, ecn=False)
        now = 0.0
        for _ in range(50):
            queue.enqueue(make_packet(), now)
        # Drain slowly: every packet's sojourn stays above target for longer
        # than one interval, so the control law must start discarding.
        dequeued = 0
        for step in range(50):
            now = 0.2 + step * 0.05
            if queue.dequeue(now) is not None:
                dequeued += 1
            if queue.is_empty:
                break
        assert queue.stats.dropped > 0
        assert dequeued + queue.stats.dropped + len(queue) == 50

    def test_marks_instead_of_drops_for_ect(self):
        queue = CoDelQueue(capacity_packets=100, target=0.005, interval=0.1, ecn=True)
        packets = [make_packet(ecn=ECN_ECT) for _ in range(50)]
        now = 0.0
        for packet in packets:
            queue.enqueue(packet, now)
        delivered = []
        for step in range(100):
            now = 0.2 + step * 0.05
            packet = queue.dequeue(now)
            if packet is not None:
                delivered.append(packet)
            if queue.is_empty:
                break
        assert queue.stats.dropped == 0
        assert queue.stats.ecn_marks > 0
        assert len(delivered) == 50
        assert sum(1 for p in delivered if p.ecn == ECN_CE) == queue.stats.ecn_marks

    def test_tracks_queue_delay(self):
        queue = CoDelQueue(capacity_packets=10)
        queue.enqueue(make_packet(), 1.0)
        queue.dequeue(1.5)
        assert queue.stats.queue_delay_sum == pytest.approx(0.5)
        assert queue.stats.mean_queue_delay == pytest.approx(0.5)

    def test_recovers_after_load_subsides(self):
        queue = CoDelQueue(capacity_packets=100, target=0.005, interval=0.1, ecn=False)
        now = 0.0
        for _ in range(30):
            queue.enqueue(make_packet(), now)
        while not queue.is_empty:
            now += 0.05
            queue.dequeue(now)
        drops_during_overload = queue.stats.dropped
        # Light load afterwards: fresh packets with tiny sojourn sail through.
        for i in range(10):
            t = 100.0 + i * 1.0
            queue.enqueue(make_packet(), t)
            assert queue.dequeue(t + 0.001) is not None
        assert queue.stats.dropped == drops_during_overload
