"""Drop-tail and RED queue behaviour."""

import pytest

from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue, REDQueue, make_queue


def make_packet(size=1500):
    return Packet("s", "d", size)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10)
        first, second = make_packet(), make_packet()
        queue.enqueue(first, 0.0)
        queue.enqueue(second, 0.0)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(capacity_packets=2)
        assert queue.enqueue(make_packet(), 0.0)
        assert queue.enqueue(make_packet(), 0.0)
        assert not queue.enqueue(make_packet(), 0.0)
        assert queue.stats.dropped == 1
        assert len(queue) == 2

    def test_byte_count_tracks_contents(self):
        queue = DropTailQueue(capacity_packets=10)
        queue.enqueue(make_packet(1000), 0.0)
        queue.enqueue(make_packet(500), 0.0)
        assert queue.byte_count == 1500
        queue.dequeue()
        assert queue.byte_count == 500

    def test_stats_counters(self):
        queue = DropTailQueue(capacity_packets=1)
        queue.enqueue(make_packet(100), 0.0)
        queue.enqueue(make_packet(200), 0.0)  # dropped
        queue.dequeue()
        stats = queue.stats.as_dict()
        assert stats["enqueued"] == 1
        assert stats["dropped"] == 1
        assert stats["dequeued"] == 1
        assert stats["bytes_dropped"] == 200
        assert stats["max_depth"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0)

    def test_enqueued_timestamp_recorded(self):
        queue = DropTailQueue()
        packet = make_packet()
        queue.enqueue(packet, 1.25)
        assert packet.enqueued_at == 1.25

    def test_is_empty(self):
        queue = DropTailQueue()
        assert queue.is_empty
        queue.enqueue(make_packet(), 0.0)
        assert not queue.is_empty


class TestRedQueue:
    def test_accepts_everything_when_lightly_loaded(self):
        queue = REDQueue(capacity_packets=100, seed=1)
        accepted = sum(queue.enqueue(make_packet(), 0.0) for _ in range(10))
        assert accepted == 10

    def test_never_exceeds_hard_capacity(self):
        queue = REDQueue(capacity_packets=20, seed=1)
        for _ in range(200):
            queue.enqueue(make_packet(), 0.0)
        assert len(queue) <= 20

    def test_drops_probabilistically_under_sustained_load(self):
        queue = REDQueue(capacity_packets=50, min_threshold=5, max_threshold=15, seed=3)
        # Keep the queue long so the average crosses the thresholds.
        for _ in range(500):
            queue.enqueue(make_packet(), 0.0)
        assert queue.stats.dropped > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            queue = REDQueue(capacity_packets=30, min_threshold=2, max_threshold=10, seed=seed)
            return [queue.enqueue(make_packet(), 0.0) for _ in range(300)]

        assert run(7) == run(7)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            REDQueue(capacity_packets=10, min_threshold=8, max_threshold=4)


class TestQueueFactory:
    def test_droptail_by_name(self):
        assert isinstance(make_queue("droptail", 10), DropTailQueue)

    def test_fifo_alias(self):
        assert isinstance(make_queue("fifo", 10), DropTailQueue)

    def test_red_by_name(self):
        assert isinstance(make_queue("red", 10), REDQueue)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_queue("codel", 10)

    def test_capacity_forwarded(self):
        assert make_queue("droptail", 7).capacity_packets == 7
