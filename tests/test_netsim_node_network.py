"""Nodes, hosts, agent dispatch and the Network façade."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.netsim.network import Network
from repro.netsim.packet import Packet

from .conftest import make_chain_topology


class CollectingAgent:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


@pytest.fixture
def built_chain():
    network = Network(make_chain_topology())
    network.install_path(["s", "r1", "d"], tag=1, as_default=True)
    return network


class TestNetworkBuild:
    def test_nodes_created(self, built_chain):
        assert set(built_chain.nodes) == {"s", "r1", "d"}

    def test_links_created_in_both_directions(self, built_chain):
        assert ("s", "r1") in built_chain.links
        assert ("r1", "s") in built_chain.links

    def test_host_accessor_type_checks(self, built_chain):
        built_chain.host("s")
        with pytest.raises(TopologyError):
            built_chain.host("r1")

    def test_unknown_node_raises(self, built_chain):
        with pytest.raises(TopologyError):
            built_chain.node("zzz")

    def test_unknown_link_raises(self, built_chain):
        with pytest.raises(TopologyError):
            built_chain.link("s", "d")

    def test_install_path_validates_links(self, built_chain):
        with pytest.raises(TopologyError):
            built_chain.install_path(["s", "d"], tag=2)

    def test_install_path_requires_tag_routing(self):
        from repro.netsim.routing import StaticRoutingTable

        topology = make_chain_topology()
        network = Network(topology, routing=StaticRoutingTable(topology.undirected_graph()))
        with pytest.raises(TopologyError):
            network.install_path(["s", "r1", "d"], tag=1)


class TestPacketDelivery:
    def test_end_to_end_delivery_to_registered_agent(self, built_chain):
        agent = CollectingAgent()
        built_chain.host("d").register_agent(flow_id=1, subflow_id=0, agent=agent)
        packet = Packet("s", "d", 1000, tag=1, flow_id=1, subflow_id=0, payload_len=940)
        built_chain.host("s").send(packet)
        built_chain.run(1.0)
        assert agent.packets == [packet]
        assert packet.hops == 2

    def test_unregistered_flow_is_dropped_silently(self, built_chain):
        packet = Packet("s", "d", 1000, tag=1, flow_id=9, subflow_id=0)
        built_chain.host("s").send(packet)
        built_chain.run(1.0)
        assert built_chain.host("d").stats.delivered == 1

    def test_duplicate_agent_registration_rejected(self, built_chain):
        built_chain.host("d").register_agent(1, 0, CollectingAgent())
        with pytest.raises(RoutingError):
            built_chain.host("d").register_agent(1, 0, CollectingAgent())

    def test_unregister_agent(self, built_chain):
        agent = CollectingAgent()
        host = built_chain.host("d")
        host.register_agent(1, 0, agent)
        host.unregister_agent(1, 0)
        host.register_agent(1, 0, CollectingAgent())  # no error after unregister

    def test_packet_without_route_counts_routing_drop(self, built_chain):
        packet = Packet("s", "d", 1000, tag=42, flow_id=1, subflow_id=0)
        # Tag 42 has no installed path and no default exists for it only if
        # defaults are absent; default exists here, so use an unknown dst.
        missing = Packet("s", "nowhere", 1000, tag=1)
        assert built_chain.host("s").send(missing) is False
        assert built_chain.host("s").stats.routing_drops == 1
        assert built_chain.host("s").send(packet) is True  # falls back to default

    def test_node_without_routing_table_raises(self, sim):
        from repro.netsim.node import Host

        host = Host("lonely", sim, routing=None)
        with pytest.raises(RoutingError):
            host.send(Packet("lonely", "x", 100))

    def test_router_forward_counters(self, built_chain):
        agent = CollectingAgent()
        built_chain.host("d").register_agent(1, 0, agent)
        for _ in range(3):
            built_chain.host("s").send(Packet("s", "d", 500, tag=1, flow_id=1, subflow_id=0))
        built_chain.run(1.0)
        router = built_chain.node("r1")
        assert router.stats.forwarded == 3
        assert router.stats.received == 3


class TestCaptures:
    def test_capture_records_delivered_packets(self, built_chain):
        capture = built_chain.attach_capture("d")
        built_chain.host("d").register_agent(1, 0, CollectingAgent())
        built_chain.host("s").send(Packet("s", "d", 800, tag=1, flow_id=1, subflow_id=0, payload_len=740))
        built_chain.run(1.0)
        assert len(capture) == 1
        assert capture.records[0].tag == 1

    def test_attach_capture_is_idempotent(self, built_chain):
        first = built_chain.attach_capture("d")
        second = built_chain.attach_capture("d")
        assert first is second

    def test_capture_lookup_requires_attachment(self, built_chain):
        with pytest.raises(TopologyError):
            built_chain.capture("s")


class TestNetworkStats:
    def test_total_drops_initially_zero(self, built_chain):
        assert built_chain.total_drops() == 0
        assert built_chain.drops_by_link() == {}

    def test_link_utilization_between_zero_and_one(self, built_chain):
        built_chain.host("d").register_agent(1, 0, CollectingAgent())
        for _ in range(10):
            built_chain.host("s").send(Packet("s", "d", 1500, tag=1, flow_id=1, subflow_id=0))
        built_chain.run(1.0)
        utilization = built_chain.link_utilization("s", "r1", 1.0)
        assert 0.0 < utilization <= 1.0
