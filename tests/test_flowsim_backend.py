"""Flow-level backend behind the experiment/multiflow/campaign front doors.

Covers the ``backend`` config field, the result-shape contract (a
flow-level run returns the same dataclasses as a packet run), the
cross-fidelity comparison helpers, and the ISSUE-6 agreement bounds:
per-flow mean rates within tolerance and identical throughput ranking
between the two backends on the paper topology and the
``mptcp_vs_tcp_shared_bottleneck`` competition.

Agreement tolerances are calibrated against measured gaps (paper/lia mean
relative error ~0.11, mptcp-vs-tcp/cubic ~0.16) with headroom for timing
jitter, not invented: the fluid model is an idealisation, and a coupled
controller's packet dynamics legitimately sit a few percent off the
weighted max-min fixed point.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import multiflow_fairness_campaign, run_campaign
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.multiflow import MultiFlowConfig, run_multiflow
from repro.experiments.scenarios import (
    cross_traffic_perturbation,
    mptcp_vs_tcp_shared_bottleneck,
    two_mptcp_competition,
)
from repro.measure.validation import (
    compare_backend_rates,
    compare_experiment_backends,
    compare_multiflow_backends,
)

from .conftest import make_two_path_scenario


def tail_mean(series) -> float:
    values = list(series.values)
    tail = values[len(values) // 2 :]
    return sum(tail) / len(tail)


class TestBackendField:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(backend="ns3")
        with pytest.raises(ConfigurationError):
            MultiFlowConfig(scenario=make_two_path_scenario, flows=[], backend="ns3")

    def test_backend_override_round_trip(self):
        config = ExperimentConfig(duration=1.0)
        assert config.backend == "packet"
        assert config.with_overrides(backend="flowlevel").backend == "flowlevel"

    def test_path_manager_rejected_on_flowlevel(self):
        config = ExperimentConfig(
            duration=1.0, backend="flowlevel", path_manager="failover"
        )
        with pytest.raises(ConfigurationError):
            run_experiment(config)


class TestExperimentFlowlevel:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            ExperimentConfig(
                congestion_control="lia", duration=3.0, backend="flowlevel"
            )
        )

    def test_result_shape_matches_packet_contract(self, result):
        assert set(result.per_path_series) == {1, 2, 3}
        assert result.drops == 0
        assert result.events_processed > 0
        assert result.stats.retransmissions == 0
        assert len(result.stats.subflows) == 3
        assert result.optimum.total == pytest.approx(90.0)

    def test_coupled_rates_hit_weighted_maxmin(self, result):
        rates = {tag: tail_mean(series) for tag, series in result.per_path_series.items()}
        assert rates[1] == pytest.approx(20.0, rel=1e-6)
        assert rates[2] == pytest.approx(20.0, rel=1e-6)
        assert rates[3] == pytest.approx(40.0, rel=1e-6)
        assert result.achieved_total_mbps == pytest.approx(80.0, rel=1e-6)


class TestMultiflowFlowlevel:
    def test_lia_vs_tcp_splits_bottleneck_evenly(self):
        config = mptcp_vs_tcp_shared_bottleneck(
            congestion_control="lia", duration=2.0
        ).with_overrides(backend="flowlevel")
        result = run_multiflow(config)
        assert result.flow("mptcp").mean_mbps == pytest.approx(25.0, rel=1e-3)
        assert result.flow("tcp").mean_mbps == pytest.approx(25.0, rel=1e-3)
        assert result.jain_index == pytest.approx(1.0, abs=1e-6)

    def test_two_mptcp_split_evenly(self):
        config = two_mptcp_competition(duration=2.0).with_overrides(
            backend="flowlevel"
        )
        result = run_multiflow(config)
        rates = [flow.mean_mbps for flow in result.flows]
        assert rates[0] == pytest.approx(rates[1], rel=1e-3)

    def test_cross_traffic_udp_capped(self):
        config = cross_traffic_perturbation(duration=4.0).with_overrides(
            backend="flowlevel"
        )
        result = run_multiflow(config)
        mptcp = result.flow("mptcp").mean_mbps
        cross = result.flow("cross-traffic").mean_mbps
        # The on-off source only claims its burst rate during ON windows;
        # the responsive connection soaks up everything else.
        assert cross < mptcp
        assert mptcp + cross <= 50.0 * 1.001


class TestCompareBackendRates:
    def test_mismatched_flow_sets_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            compare_backend_rates({"a": 1.0}, {"b": 1.0})

    def test_exact_agreement(self):
        comparison = compare_backend_rates(
            {"a": 10.0, "b": 20.0}, {"a": 10.0, "b": 20.0}, scenario="unit"
        )
        assert comparison.mean_rel_error == pytest.approx(0.0)
        assert comparison.rank_agreement == pytest.approx(1.0)
        assert comparison.as_dict()["scenario"] == "unit"

    def test_rank_tolerance_treats_noise_as_tie(self):
        strict = compare_backend_rates(
            {"a": 20.0, "b": 20.0}, {"a": 21.0, "b": 19.0}, rank_tol=0.01
        )
        loose = compare_backend_rates(
            {"a": 20.0, "b": 20.0}, {"a": 21.0, "b": 19.0}, rank_tol=0.2
        )
        assert strict.rank_agreement == pytest.approx(0.0)
        assert loose.rank_agreement == pytest.approx(1.0)


class TestCrossBackendAgreement:
    """ISSUE-6 satellite: rate error within tolerance, identical ranking."""

    def test_paper_topology_rates_and_ranking(self):
        config = ExperimentConfig(congestion_control="lia", duration=4.0)
        packet = run_experiment(config)
        flowlevel = run_experiment(config.with_overrides(backend="flowlevel"))
        comparison = compare_experiment_backends(flowlevel, packet)
        assert comparison.mean_rel_error < 0.20
        assert comparison.max_rel_error < 0.30
        # Paths 1 and 2 are symmetric in the fluid model; the packet-level
        # difference between them is controller noise, so ranking is judged
        # with a tolerance wide enough to call them tied.
        rates = {
            name: entry for name, entry in comparison.per_flow.items()
        }
        loose = compare_backend_rates(
            {name: entry["flowlevel_mbps"] for name, entry in rates.items()},
            {name: entry["packet_mbps"] for name, entry in rates.items()},
            rank_tol=0.25,
        )
        assert loose.rank_agreement == pytest.approx(1.0)
        top = max(rates, key=lambda name: rates[name]["packet_mbps"])
        assert top == "path-3"
        assert max(rates, key=lambda name: rates[name]["flowlevel_mbps"]) == top

    def test_shared_bottleneck_rates_and_ranking(self):
        # cubic (uncoupled) gives a strict mptcp > tcp order in both
        # fidelities: two greedy subflows against one.
        config = mptcp_vs_tcp_shared_bottleneck(
            congestion_control="cubic", duration=4.0
        )
        packet = run_multiflow(config)
        flowlevel = run_multiflow(config.with_overrides(backend="flowlevel"))
        comparison = compare_multiflow_backends(flowlevel, packet)
        assert comparison.mean_rel_error < 0.30
        assert comparison.rank_agreement == pytest.approx(1.0)
        assert flowlevel.flow("mptcp").mean_mbps > flowlevel.flow("tcp").mean_mbps
        assert packet.flow("mptcp").mean_mbps > packet.flow("tcp").mean_mbps

    def test_shared_bottleneck_lia_rate_error_bounded(self):
        config = mptcp_vs_tcp_shared_bottleneck(
            congestion_control="lia", duration=4.0
        )
        packet = run_multiflow(config)
        flowlevel = run_multiflow(config.with_overrides(backend="flowlevel"))
        comparison = compare_multiflow_backends(flowlevel, packet)
        # LIA overshoots the TCP-fair even split by ~20% at packet level.
        assert comparison.mean_rel_error < 0.35
        assert comparison.max_rel_error < 0.45


class TestFlowlevelCampaign:
    def test_campaign_records_cross_fidelity(self, tmp_path):
        spec = multiflow_fairness_campaign(duration=1.0, backend="flowlevel")
        result = run_campaign(spec, tmp_path / "store.jsonl", chunk_size=8)
        assert all(record["status"] == "ok" for record in result.records)
        for record in result.records:
            assert record["params"]["backend"] == "flowlevel"
            fidelity = record["cross_fidelity"]
            for field in ("mean_rel_error", "max_rel_error", "rank_agreement"):
                value = fidelity[field]
                assert value is not None and math.isfinite(value)
            for entry in fidelity["per_flow"].values():
                assert entry["rel_error"] is not None
                assert math.isfinite(entry["rel_error"])
        report = result.cross_fidelity_report()
        assert report is not None
        assert report["points"] == len(result.records)
        assert math.isfinite(report["mean_rel_error"])

    def test_packet_campaign_keys_unchanged(self):
        # ``backend`` must not leak into packet-point params: content-hash
        # keys (and therefore store resume) stay stable across this change.
        spec = multiflow_fairness_campaign(duration=1.0)
        for point in spec.expand():
            assert "backend" not in point.params
