"""Golden scenario definitions for the protocol fast-path equivalence tests.

The protocol-stack fast path (packet pool, sender/receiver common-case paths,
O(1) scheduler dispatch, fused coupled-CC aggregation) must not change a
single produced value.  This module defines the pinned scenarios and computes
their observable output -- every throughput sample of every series, plus the
headline counters -- as plain JSON-compatible floats/ints.

``tests/data/golden_pipeline.json`` was generated from the tree *before* the
fast path landed; the equivalence tests re-run the scenarios and require the
output to round-trip bit-identically (JSON float serialisation via ``repr``
is exact for IEEE-754 doubles).

Regenerate (only when intentionally changing protocol behaviour) with::

    PYTHONPATH=src python tests/golden_pipeline.py
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict

from repro.core.connection import MptcpConnection
from repro.experiments.harness import paper_experiment, run_experiment
from repro.experiments.multiflow import FlowSpec, MultiFlowConfig, run_multiflow
from repro.experiments.scenarios import (
    aqm_vs_droptail,
    cross_traffic_perturbation,
    mptcp_vs_tcp_shared_bottleneck,
    two_mptcp_competition,
)
from repro.netsim.dynamics import DynamicsSpec
from repro.netsim.network import Network
from repro.topologies.generators import shared_bottleneck
from repro.topologies.paper import paper_scenario
from repro.traffic.iperf import IperfClient

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_pipeline.json"

#: Short but non-trivial horizons: long enough for slow-start exit, loss
#: recovery and coupled-CC rebalancing to all appear in the series.
SINGLE_FLOW_DURATION = 1.5
MULTI_FLOW_DURATION = 1.5
SAMPLING_INTERVAL = 0.1


def single_flow_case(congestion_control: str, **overrides) -> dict:
    """One paper-topology run reduced to its observable output."""
    config = paper_experiment(
        congestion_control,
        duration=SINGLE_FLOW_DURATION,
        sampling_interval=SAMPLING_INTERVAL,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    result = run_experiment(config)
    return {
        "total_times": list(result.total_series.times),
        "total_values": list(result.total_series.values),
        "per_path_values": {
            str(tag): list(series.values)
            for tag, series in sorted(result.per_path_series.items())
        },
        "drops": result.drops,
        "retransmissions": result.stats.retransmissions,
    }


def multi_flow_case(config) -> dict:
    """One multi-flow competition run reduced to its observable output."""
    result = run_multiflow(config)
    return {
        "flow_values": {
            flow.name: list(flow.series.values) for flow in result.flows
        },
        "per_path_values": {
            flow.name: {
                str(tag): list(series.values)
                for tag, series in sorted(flow.per_path_series.items())
            }
            for flow in result.flows
        },
        "jain_index": result.fairness.jain_index,
        "drops": result.drops,
        "bytes_delivered": {
            flow.name: flow.bytes_delivered for flow in result.flows
        },
        "retransmissions": {
            flow.name: flow.retransmissions for flow in result.flows
        },
    }


def iperf_case() -> dict:
    """A greedy IperfClient bulk transfer on the paper topology.

    Pins the iperf wrapper's observable output (interval throughput series
    plus the headline report counters) so the traffic-layer refactor can be
    proven byte-identical.
    """
    topology, paths = paper_scenario()
    network = Network(topology)
    capture = network.attach_capture("d", data_only=True)
    connection = MptcpConnection(network, "s", "d", paths, congestion_control="cubic")
    client = IperfClient(connection, capture=capture, report_interval=SAMPLING_INTERVAL)
    client.start(0.0)
    network.run(SINGLE_FLOW_DURATION)
    report = client.report(SINGLE_FLOW_DURATION)
    return {
        "interval_times": list(report.interval_series.times),
        "interval_values": list(report.interval_series.values),
        "bytes_transferred": report.bytes_transferred,
        "mean_throughput_mbps": report.mean_throughput_mbps,
        "retransmissions": report.retransmissions,
    }


def udp_cbr_mix_config() -> MultiFlowConfig:
    """MPTCP plus a constant-bit-rate UDP flow that stops mid-run.

    Exercises the UDP source (pacing, stop_at handling, sink accounting) in
    a multi-flow competition, complementing the on-off coverage of
    ``cross_traffic_perturbation``.
    """
    topology, paths = shared_bottleneck(3, 50.0, 100.0)
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:2],
            congestion_control="lia",
        ),
        FlowSpec(kind="udp", name="udp", path_index=2, rate_mbps=20.0, stop=1.2),
    ]
    return MultiFlowConfig(
        name="udp-cbr-mix",
        scenario=(topology, paths),
        flows=flows,
        duration=MULTI_FLOW_DURATION,
        sampling_interval=SAMPLING_INTERVAL,
        bottleneck_link=("agg", "core"),
    )


def compute_golden() -> Dict[str, dict]:
    """Run every pinned scenario and collect the observable output."""
    return {
        "single/cubic": single_flow_case("cubic"),
        "single/lia": single_flow_case("lia"),
        "single/olia": single_flow_case("olia"),
        "single/cubic-roundrobin-bounded": single_flow_case(
            "cubic", scheduler="roundrobin", send_buffer_bytes=256 * 1024
        ),
        "single/lia-minrtt-bounded": single_flow_case(
            "lia", scheduler="minrtt", send_buffer_bytes=192 * 1024
        ),
        "multi/mptcp_vs_tcp_shared_bottleneck": multi_flow_case(
            mptcp_vs_tcp_shared_bottleneck(
                duration=MULTI_FLOW_DURATION, sampling_interval=SAMPLING_INTERVAL
            )
        ),
        "multi/two_mptcp_competition": multi_flow_case(
            two_mptcp_competition(
                duration=MULTI_FLOW_DURATION, sampling_interval=SAMPLING_INTERVAL
            )
        ),
        "multi/mptcp_vs_tcp_olia": multi_flow_case(
            mptcp_vs_tcp_shared_bottleneck(
                congestion_control="olia",
                duration=MULTI_FLOW_DURATION,
                sampling_interval=SAMPLING_INTERVAL,
            )
        ),
        # The dynamics machinery merged but *inactive*: an attached empty
        # Schedule must leave every static scenario byte-identical (the
        # values below equal "single/cubic" / "multi/two_mptcp_competition"
        # exactly, which tests/test_dynamics.py also asserts directly).
        "single/cubic-empty-dynamics": single_flow_case(
            "cubic", dynamics=DynamicsSpec()
        ),
        "multi/two_mptcp_empty_dynamics": multi_flow_case(
            two_mptcp_competition(
                duration=MULTI_FLOW_DURATION, sampling_interval=SAMPLING_INTERVAL
            ).with_overrides(dynamics=DynamicsSpec())
        ),
        # Traffic-source coverage: the iperf wrapper, the on-off burst source
        # and the plain CBR UDP source, pinned before the traffic layer moved
        # under repro.workload (the sources must stay byte-identical).
        "single/iperf_paper": iperf_case(),
        "multi/cross_traffic_perturbation": multi_flow_case(
            cross_traffic_perturbation(
                duration=MULTI_FLOW_DURATION, sampling_interval=SAMPLING_INTERVAL
            )
        ),
        "multi/udp_cbr_mix": multi_flow_case(udp_cbr_mix_config()),
        # AQM/ECN signal plane: a RED+ECN single flow and a CoDel competition,
        # pinned when the pluggable-discipline refactor landed.  Both decline
        # the native kernel bypass, so these keys prove the Python handlers
        # under the compiled event loop match the pure-Python loop exactly.
        "single/lia-red-ecn": single_flow_case("lia", queue_kind="red", ecn=True),
        "multi/aqm_codel_ecn": multi_flow_case(
            aqm_vs_droptail(
                queue_kind="codel",
                ecn=True,
                duration=MULTI_FLOW_DURATION,
                sampling_interval=SAMPLING_INTERVAL,
            )
        ),
    }


def load_golden() -> Dict[str, dict]:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = compute_golden()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} scenarios)")


if __name__ == "__main__":
    main()
