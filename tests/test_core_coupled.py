"""Coupled congestion control: coupling group, LIA, OLIA, BALIA, wVegas."""

import pytest

from repro.core.coupled import (
    MULTIPATH_ALGORITHMS,
    PAPER_ALGORITHMS,
    CouplingGroup,
    make_multipath_congestion_control,
)
from repro.core.coupled.balia import BaliaCongestionControl
from repro.core.coupled.lia import LiaCongestionControl
from repro.core.coupled.olia import OliaCongestionControl
from repro.core.coupled.uncoupled import UncoupledCubic, UncoupledReno
from repro.core.coupled.wvegas import WVegasCongestionControl
from repro.errors import ConfigurationError

MSS = 1400


def make_group(algorithm, n, rtts=None):
    """n coupled controllers sharing one group, pushed out of slow start."""
    group = CouplingGroup()
    members = [
        make_multipath_congestion_control(algorithm, mss=MSS, group=group) for _ in range(n)
    ]
    for index, cc in enumerate(members):
        cc.ssthresh = 10.0
        cc.cwnd = 10.0
        cc.srtt = rtts[index] if rtts else 0.01
    return group, members


class TestFactory:
    def test_all_advertised_algorithms_instantiate(self):
        for name in MULTIPATH_ALGORITHMS:
            group = CouplingGroup()
            cc = make_multipath_congestion_control(name, mss=MSS, group=group)
            assert cc.mss == MSS
            assert len(group) == 1

    def test_paper_algorithms_subset(self):
        assert set(PAPER_ALGORITHMS) <= set(MULTIPATH_ALGORITHMS)
        assert set(PAPER_ALGORITHMS) == {"cubic", "lia", "olia"}

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            make_multipath_congestion_control("vivace", mss=MSS)

    def test_expected_classes(self):
        mapping = {
            "cubic": UncoupledCubic,
            "reno": UncoupledReno,
            "lia": LiaCongestionControl,
            "olia": OliaCongestionControl,
            "balia": BaliaCongestionControl,
            "wvegas": WVegasCongestionControl,
        }
        for name, cls in mapping.items():
            assert isinstance(make_multipath_congestion_control(name, mss=MSS), cls)


class TestCouplingGroup:
    def test_members_share_group(self):
        group, members = make_group("lia", 3)
        assert group.members == members
        assert len(group) == 3

    def test_total_cwnd(self):
        group, members = make_group("lia", 3)
        assert group.total_cwnd() == pytest.approx(30.0)

    def test_max_cwnd(self):
        group, members = make_group("lia", 2)
        members[1].cwnd = 25.0
        assert group.max_cwnd() == 25.0

    def test_best_rate_member_prefers_low_rtt(self):
        group, members = make_group("lia", 2, rtts=[0.05, 0.01])
        assert group.best_rate_member() is members[1]

    def test_unregister(self):
        group, members = make_group("lia", 2)
        group.unregister(members[0])
        assert len(group) == 1

    def test_each_connection_gets_default_group(self):
        cc = make_multipath_congestion_control("lia", mss=MSS)
        assert len(cc.group) == 1


class TestLia:
    def test_alpha_equals_one_for_single_path(self):
        _, (cc,) = make_group("lia", 1)
        # RFC 6356: with one subflow LIA must behave like standard TCP.
        assert cc.alpha() == pytest.approx(1.0, rel=1e-6)

    def test_single_path_increase_matches_reno(self):
        _, (cc,) = make_group("lia", 1)
        cc.on_ack(MSS, srtt=0.01, now=0.1)
        assert cc.cwnd == pytest.approx(10.0 + 1.0 / 10.0, rel=1e-3)

    def test_coupled_increase_is_capped_by_uncoupled(self):
        group, members = make_group("lia", 3)
        cc = members[0]
        before = cc.cwnd
        cc.on_ack(MSS, srtt=0.01, now=0.1)
        increase = cc.cwnd - before
        assert increase <= 1.0 / before + 1e-9

    def test_aggregate_increase_no_more_aggressive_than_single_flow(self):
        # Acknowledge one segment on every subflow: the total window growth must
        # not exceed what one TCP flow would gain from the same ACKs.
        group, members = make_group("lia", 3)
        total_before = group.total_cwnd()
        for cc in members:
            cc.on_ack(MSS, srtt=0.01, now=0.1)
        total_increase = group.total_cwnd() - total_before
        single_flow_increase = 3 * (1.0 / total_before)
        assert total_increase <= single_flow_increase * 1.05

    def test_loss_halves_window(self):
        _, members = make_group("lia", 2)
        members[0].on_loss(now=0.1)
        assert members[0].cwnd == pytest.approx(5.0)

    def test_alpha_favours_low_rtt_paths(self):
        group, members = make_group("lia", 2, rtts=[0.1, 0.01])
        # alpha grows when the best path (low RTT) dominates.
        assert members[0].alpha() > 0


class TestOlia:
    def test_single_path_behaves_sanely(self):
        _, (cc,) = make_group("olia", 1)
        before = cc.cwnd
        cc.on_ack(MSS, srtt=0.01, now=0.1)
        assert cc.cwnd > before

    def test_equal_paths_have_zero_alpha(self):
        _, members = make_group("olia", 3)
        for cc in members:
            cc._bytes_since_loss = 10000.0
        assert all(cc._alpha() == pytest.approx(0.0) for cc in members)

    def test_alpha_positive_for_best_path_with_small_window(self):
        _, members = make_group("olia", 2)
        good, big = members
        good.cwnd = 5.0          # small window
        good._bytes_since_loss = 1_000_000.0  # but best measured rate
        big.cwnd = 20.0
        big._bytes_since_loss = 10_000.0
        assert good._alpha() > 0
        assert big._alpha() < 0

    def test_alpha_values_bounded_by_design(self):
        _, members = make_group("olia", 3)
        members[0].cwnd = 5.0
        members[0]._bytes_since_loss = 1_000_000.0
        n = len(members)
        for cc in members:
            assert abs(cc._alpha()) <= 1.0 / n + 1e-9

    def test_loss_rotates_interval_bytes(self):
        _, (cc, _unused) = make_group("olia", 2)
        cc._bytes_since_loss = 50_000.0
        cc.on_loss(now=0.5)
        assert cc._bytes_between_losses == pytest.approx(50_000.0)
        assert cc._bytes_since_loss == 0.0

    def test_window_never_drops_below_one_segment(self):
        _, members = make_group("olia", 2)
        cc = members[0]
        cc.cwnd = 1.0
        cc._bytes_since_loss = 1.0
        members[1]._bytes_since_loss = 1_000_000.0
        for _ in range(100):
            cc.on_ack(MSS, srtt=0.01, now=0.1)
        assert cc.cwnd >= 1.0

    def test_increase_smaller_than_uncoupled_tcp(self):
        _, members = make_group("olia", 3)
        cc = members[0]
        before = cc.cwnd
        cc.on_ack(MSS, srtt=0.01, now=0.1)
        assert cc.cwnd - before < 1.0 / before


class TestBalia:
    def test_increase_positive(self):
        _, members = make_group("balia", 2)
        before = members[0].cwnd
        members[0].on_ack(MSS, srtt=0.01, now=0.1)
        assert members[0].cwnd > before

    def test_loss_decrease_bounded(self):
        _, members = make_group("balia", 2)
        cc = members[0]
        cc.cwnd = 20.0
        cc.on_loss(now=0.1)
        # The decrease factor is capped at 1.5/2 = 75% of the window.
        assert cc.cwnd >= 20.0 * 0.25 - 1e-9
        assert cc.cwnd < 20.0

    def test_alpha_of_best_path_is_one(self):
        _, members = make_group("balia", 2)
        members[0].cwnd = 20.0
        members[1].cwnd = 10.0
        assert members[0]._alpha() == pytest.approx(1.0)
        assert members[1]._alpha() == pytest.approx(2.0)


class TestWVegas:
    def test_holds_window_when_backlog_on_target(self):
        _, (cc, other) = make_group("wvegas", 2)
        cc.base_rtt = 0.01
        before = cc.cwnd
        # RTT equal to base RTT -> no queueing -> grow.
        cc.on_ack(MSS, srtt=0.01, now=0.1)
        assert cc.cwnd > before

    def test_backs_off_when_queueing_detected(self):
        _, (cc, other) = make_group("wvegas", 2)
        cc.base_rtt = 0.01
        cc.cwnd = 50.0
        before = cc.cwnd
        # RTT doubled -> half the window is queued -> way above target -> shrink.
        cc.on_ack(MSS, srtt=0.02, now=0.1)
        assert cc.cwnd < before

    def test_weights_sum_to_one(self):
        _, members = make_group("wvegas", 3)
        assert sum(cc._weight() for cc in members) == pytest.approx(1.0)

    def test_loss_halves_window(self):
        _, members = make_group("wvegas", 2)
        members[0].cwnd = 30.0
        members[0].on_loss(now=0.1)
        assert members[0].cwnd == pytest.approx(15.0)

    def test_repeated_losses_never_drop_below_one_segment(self):
        # Regression: the loss decrease had no floor, so a loss burst could
        # drive cwnd below one segment (and asymptotically to zero).
        _, members = make_group("wvegas", 2)
        cc = members[0]
        cc.cwnd = 1.2
        for _ in range(10):
            cc._loss_decrease(now=0.1)
        assert cc.cwnd >= 1.0


class TestUncoupled:
    def test_uncoupled_cubic_ignores_siblings(self):
        group = CouplingGroup()
        a = make_multipath_congestion_control("cubic", mss=MSS, group=group)
        b = make_multipath_congestion_control("cubic", mss=MSS, group=group)
        a.ssthresh = a.cwnd = 10.0
        solo = make_multipath_congestion_control("cubic", mss=MSS)
        solo.ssthresh = solo.cwnd = 10.0
        for now in (0.01, 0.02, 0.03):
            a.on_ack(MSS, srtt=0.01, now=now)
            solo.on_ack(MSS, srtt=0.01, now=now)
        assert a.cwnd == pytest.approx(solo.cwnd)

    def test_uncoupled_registers_with_group_for_observability(self):
        group = CouplingGroup()
        make_multipath_congestion_control("cubic", mss=MSS, group=group)
        make_multipath_congestion_control("cubic", mss=MSS, group=group)
        assert len(group) == 2
