"""Path objects and overlap analysis."""

import pytest

from repro.errors import ModelError
from repro.model.paths import Path, PathSet, paths_from_node_lists
from repro.topologies.paper import build_paper_topology, paper_paths


class TestPath:
    def test_basic_properties(self):
        path = Path(["s", "v1", "d"], tag=1, name="Path 1")
        assert path.src == "s"
        assert path.dst == "d"
        assert path.hop_count == 2
        assert path.links == (("s", "v1"), ("v1", "d"))

    def test_default_name(self):
        assert Path(["s", "d"]).name == "s->d"

    def test_too_short_rejected(self):
        with pytest.raises(ModelError):
            Path(["s"])

    def test_loop_rejected(self):
        with pytest.raises(ModelError):
            Path(["s", "v1", "s"])

    def test_shared_links(self):
        a = Path(["s", "v1", "v4", "d"])
        b = Path(["s", "v1", "v2", "d"])
        assert a.shares_link_with(b)
        assert a.shared_links(b) == [("s", "v1")]

    def test_disjoint_paths_share_nothing(self):
        a = Path(["s", "v1", "d"])
        b = Path(["s", "v2", "d"])
        assert not a.shares_link_with(b)
        assert a.shared_links(b) == []

    def test_uses_link_is_directional(self):
        path = Path(["s", "v1", "d"])
        assert path.uses_link("s", "v1")
        assert not path.uses_link("v1", "s")

    def test_capacity_is_bottleneck(self):
        topology = build_paper_topology()
        paths = paper_paths()
        # Path 1 traverses the 40 Mbps link s-v1 and the 80 Mbps link v4-d.
        assert paths[0].capacity(topology) == 40.0

    def test_propagation_delay_sums_links(self):
        topology = build_paper_topology()
        paths = paper_paths()
        delays = [p.propagation_delay(topology) for p in paths]
        # Path 2 was designed to be the shortest-RTT (default) path.
        assert delays[1] == min(delays)

    def test_hashable_and_equal(self):
        assert Path(["s", "d"], tag=1) == Path(["s", "d"], tag=1)
        assert len({Path(["s", "d"], tag=1), Path(["s", "d"], tag=1)}) == 1


class TestPathSet:
    def test_paper_paths_pairwise_overlap(self):
        paths = paper_paths()
        shared = paths.pairwise_shared_links()
        assert set(shared) == {(0, 1), (0, 2), (1, 2)}
        assert all(len(links) == 1 for links in shared.values())

    def test_overlap_matrix_diagonal_is_path_length(self):
        paths = paper_paths()
        matrix = paths.overlap_matrix()
        for i, path in enumerate(paths):
            assert matrix[i][i] == len(path.links)

    def test_overlap_matrix_symmetric(self):
        paths = paper_paths()
        matrix = paths.overlap_matrix()
        for i in range(3):
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]

    def test_paths_using_link(self):
        paths = paper_paths()
        assert paths.paths_using(("s", "v1")) == [0, 1]

    def test_all_links_unique(self):
        paths = paper_paths()
        links = paths.all_links()
        assert len(links) == len(set(links))

    def test_is_disjoint(self):
        disjoint = PathSet([Path(["s", "a", "d"], tag=1), Path(["s", "b", "d"], tag=2)])
        assert disjoint.is_disjoint()
        assert not paper_paths().is_disjoint()

    def test_mixed_endpoints_rejected(self):
        with pytest.raises(ModelError):
            PathSet([Path(["s", "d"]), Path(["s", "x"])])

    def test_src_dst_properties(self):
        paths = paper_paths()
        assert paths.src == "s"
        assert paths.dst == "d"

    def test_indexing_and_iteration(self):
        paths = paper_paths()
        assert paths[1].name == "Path 2"
        assert len(list(paths)) == 3


class TestPathsFromNodeLists:
    def test_auto_tags_and_names(self):
        paths = paths_from_node_lists([["s", "a", "d"], ["s", "b", "d"]])
        assert [p.tag for p in paths] == [1, 2]
        assert [p.name for p in paths] == ["Path 1", "Path 2"]

    def test_explicit_tags(self):
        paths = paths_from_node_lists([["s", "a", "d"]], tags=[7], names=["up"])
        assert paths[0].tag == 7
        assert paths[0].name == "up"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            paths_from_node_lists([["s", "a", "d"]], tags=[1, 2])
