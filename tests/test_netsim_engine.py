"""Discrete-event engine: ordering, cancellation, run bounds."""

import pytest

from repro.errors import SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(3.0, order.append, "latest")
        sim.run()
        assert order == ["early", "late", "latest"]

    def test_ties_run_in_fifo_order(self, sim):
        order = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(0.5)]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(1.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(1.25)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_more_events(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(1.0, chain, 2)
        sim.run()
        assert seen == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        sim.cancel(event)
        sim.run()
        assert seen == []

    def test_cancel_none_is_noop(self, sim):
        sim.cancel(None)
        assert sim.run() == 0.0

    def test_cancel_after_run_is_harmless(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert event.cancelled


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "in")
        sim.schedule(5.0, seen.append, "out")
        sim.run(until=2.0)
        assert seen == ["in"]
        assert sim.now == pytest.approx(2.0)
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=3.0)
        assert sim.now == pytest.approx(3.0)

    def test_continue_running_after_until(self, sim):
        seen = []
        sim.schedule(5.0, seen.append, "late")
        sim.run(until=2.0)
        sim.run()
        assert seen == ["late"]

    def test_stop_halts_the_loop(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "first")
        sim.schedule(1.5, sim.stop)
        sim.schedule(2.0, seen.append, "second")
        sim.run()
        assert seen == ["first"]

    def test_max_events_limits_processing(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(i + 1.0, seen.append, i)
        sim.run(max_events=4)
        assert len(seen) == 4

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_run_is_not_reentrant(self, sim):
        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, recurse)
        sim.run()

    def test_run_returns_current_time(self, sim):
        sim.schedule(0.7, lambda: None)
        assert sim.run() == pytest.approx(0.7)
