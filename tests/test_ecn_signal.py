"""End-to-end ECN semantics: CE at the bottleneck -> ECE echo -> rate cut.

RFC 3168 over the packet substrate: an ECN-capable sender marks its segments
ECT, an AQM bottleneck CE-marks them instead of dropping, the receiver echoes
CE as ECE on its ACKs, and the sender reduces its rate exactly once per
window of data -- without retransmitting anything, because the marked
segments were delivered.  The suites below pin that chain for single-path
TCP (Reno/Cubic) and for every coupled MPTCP controller family.
"""

import pytest

from repro.core.connection import MptcpConnection
from repro.core.coupled import MULTIPATH_ALGORITHMS
from repro.netsim.network import Network
from repro.netsim.packet import acquire_ack
from repro.netsim.queues import REDQueue
from repro.tcp.connection import TcpConnection

from .conftest import make_chain_topology, make_two_path_scenario


def make_responsive_red(capacity_packets: int = 400) -> REDQueue:
    """A RED queue that marks long before its buffer can overflow.

    The stock weight (0.002) tracks the instantaneous queue so slowly that a
    slow-start burst overflows the buffer before the average crosses the
    thresholds; a fast average plus low thresholds and a deep buffer make
    every congestion signal a CE mark and never a loss.
    """
    return REDQueue(
        capacity_packets,
        min_threshold=20,
        max_threshold=60,
        weight=0.05,
        ecn=True,
    )


def swap_in_red(network: Network, a: str, b: str) -> REDQueue:
    queue = make_responsive_red()
    link = network.link(a, b)
    link.queue = queue
    link._enqueue = queue.enqueue  # Link binds enqueue once at construction
    return queue


def run_single_ecn(cc: str, *, ecn: bool = True, capacity_mbps: float = 15.0,
                   duration: float = 1.0):
    topology = make_chain_topology(capacity_mbps=capacity_mbps, queue_packets=400)
    network = Network(topology)
    queue = swap_in_red(network, "s", "r1")
    network.install_path(["s", "r1", "d"], tag=1, as_default=True)
    connection = TcpConnection(network, "s", "d", cc=cc, tag=1, ecn=ecn)
    connection.start(0.0)
    network.run(duration)
    return network, connection, queue


def run_mptcp_ecn(cc: str, *, duration: float = 1.0):
    topology, paths = make_two_path_scenario(cap1=12.0, cap2=18.0)
    network = Network(topology)
    queues = [swap_in_red(network, "s", "a"), swap_in_red(network, "s", "b")]
    connection = MptcpConnection(
        network, "s", "d", paths, congestion_control=cc, ecn=True
    )
    connection.start(0.0)
    network.run(duration)
    return network, connection, queues


class TestSinglePathEcn:
    @pytest.mark.parametrize("cc", ["reno", "cubic"])
    def test_ce_marked_then_echoed_then_reacted(self, cc):
        network, connection, queue = run_single_ecn(cc)
        assert queue.stats.ecn_marks > 0
        # Every marked segment was delivered (nothing downstream drops), so
        # the receiver saw exactly the marked count as CE.
        assert connection.receiver.stats.ce_received == queue.stats.ecn_marks
        assert connection.sender.stats.ecn_echoes > 0

    @pytest.mark.parametrize("cc", ["reno", "cubic"])
    def test_reaction_is_once_per_window(self, cc):
        _, connection, queue = run_single_ecn(cc)
        sender = connection.sender
        # The sender reacts at most once per window of data, and every
        # reaction is the congestion controller's on_ecn (not a loss path).
        assert sender.stats.ecn_echoes <= connection.receiver.stats.ce_received
        assert sender.cc.ecn_signals == sender.stats.ecn_echoes

    def test_many_echoes_collapse_to_few_reactions(self):
        # Reno overshoots hard enough that RED marks whole bursts: the
        # receiver echoes far more ECE ACKs than the sender takes cuts.
        _, connection, _ = run_single_ecn("reno")
        sender = connection.sender
        assert connection.receiver.stats.ce_received > sender.stats.ecn_echoes

    @pytest.mark.parametrize("cc", ["reno", "cubic"])
    def test_marks_cause_no_retransmissions(self, cc):
        network, connection, _ = run_single_ecn(cc)
        assert connection.sender.stats.ecn_echoes > 0
        # The whole point of ECN: rate comes down without a single loss.
        assert network.total_drops() == 0
        assert connection.sender.stats.retransmissions == 0
        receiver = connection.receiver
        assert receiver.stats.bytes_received == receiver.rcv_nxt  # contiguous

    def test_throughput_still_fills_the_link(self):
        _, connection, _ = run_single_ecn("cubic")
        assert connection.throughput_mbps(1.0) > 0.6 * 15.0

    def test_non_ecn_sender_is_early_dropped_instead(self):
        network, connection, queue = run_single_ecn("reno", ecn=False)
        assert queue.stats.ecn_marks == 0
        assert connection.receiver.stats.ce_received == 0
        assert connection.sender.stats.ecn_echoes == 0
        # Same congestion, signalled the pre-ECN way: early drops and the
        # loss-recovery machinery.
        assert queue.stats.early_drops > 0
        assert connection.sender.stats.retransmissions > 0

    def test_sender_reacts_once_until_new_window_acked(self):
        # Direct guard check: a quiescent sender receiving two ECE ACKs for
        # the same window must cut exactly once (RFC 3168 once-per-RTT).
        _, connection, _ = run_single_ecn("reno", capacity_mbps=50.0, duration=0.2)
        sender = connection.sender
        assert sender._ecn_recover < sender.snd_una  # no marks at 50 Mbps
        echoes_before = sender.stats.ecn_echoes
        cwnd_before = sender.cc.cwnd
        for _ in range(2):
            ack = acquire_ack(
                "d", "s", 60, 1, sender.flow_id, sender.subflow_id,
                sender.snd_una, 0, (), -1.0, sender.sim.now,
            )
            ack.ecn = True  # ECE
            sender.handle_packet(ack)
        assert sender.stats.ecn_echoes == echoes_before + 1
        assert sender.cc.cwnd < cwnd_before
        assert sender._ecn_recover == sender.snd_nxt


class TestMptcpEcn:
    @pytest.mark.parametrize(
        "cc", sorted(set(MULTIPATH_ALGORITHMS) - {"cubic", "reno"})
    )
    def test_coupled_controllers_react_without_losses(self, cc):
        network, connection, queues = run_mptcp_ecn(cc)
        assert sum(q.stats.ecn_marks for q in queues) > 0
        echoes = sum(sf.sender.stats.ecn_echoes for sf in connection.subflows)
        signals = sum(sf.cc.ecn_signals for sf in connection.subflows)
        assert echoes > 0
        assert signals == echoes
        assert network.total_drops() == 0
        assert sum(sf.sender.stats.retransmissions for sf in connection.subflows) == 0
        assert connection.bytes_acked > 0

    def test_wvegas_and_lia_share_signal_accounting(self):
        # The counter lives on the base class: every family increments the
        # same ecn_signals slot its on_ecn override is reached through.
        for cc in ("lia", "wvegas"):
            _, connection, _ = run_mptcp_ecn(cc, duration=0.5)
            for subflow in connection.subflows:
                assert subflow.cc.ecn_signals == subflow.sender.stats.ecn_echoes
