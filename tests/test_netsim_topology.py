"""Declarative topology: nodes, links, paths, validation."""

import pytest

from repro.errors import TopologyError
from repro.netsim.topology import Topology


@pytest.fixture
def square():
    t = Topology("square")
    t.add_host("s")
    t.add_host("d")
    t.add_router("a")
    t.add_router("b")
    t.add_link("s", "a", 50, 0.001)
    t.add_link("a", "d", 100, 0.001)
    t.add_link("s", "b", 80, 0.002)
    t.add_link("b", "d", 100, 0.002)
    return t


class TestNodes:
    def test_hosts_and_routers_tracked_separately(self, square):
        assert sorted(square.hosts) == ["d", "s"]
        assert sorted(square.routers) == ["a", "b"]

    def test_duplicate_node_rejected(self, square):
        with pytest.raises(TopologyError):
            square.add_router("a")

    def test_unknown_node_lookup_raises(self, square):
        with pytest.raises(TopologyError):
            square.node("zzz")

    def test_node_kind(self, square):
        assert square.node("s").kind == "host"
        assert square.node("a").kind == "router"

    def test_host_metadata(self):
        t = Topology()
        t.add_host("h", role="client")
        assert t.node("h").metadata["role"] == "client"


class TestLinks:
    def test_links_are_bidirectional(self, square):
        assert square.has_link("s", "a")
        assert square.has_link("a", "s")

    def test_capacity_lookup(self, square):
        assert square.capacity_of("s", "a") == 50
        assert square.capacity_of("a", "s") == 50

    def test_asymmetric_capacity(self):
        t = Topology()
        t.add_host("x")
        t.add_host("y")
        t.add_link("x", "y", 100, capacity_mbps_reverse=10)
        assert t.capacity_of("x", "y") == 100
        assert t.capacity_of("y", "x") == 10

    def test_set_capacity(self, square):
        square.set_capacity("s", "a", 25)
        assert square.capacity_of("s", "a") == 25
        assert square.capacity_of("a", "s") == 25

    def test_duplicate_link_rejected(self, square):
        with pytest.raises(TopologyError):
            square.add_link("s", "a", 10)

    def test_reverse_duplicate_link_rejected(self, square):
        with pytest.raises(TopologyError):
            square.add_link("a", "s", 10)

    def test_self_loop_rejected(self, square):
        with pytest.raises(TopologyError):
            square.add_link("s", "s", 10)

    def test_link_to_unknown_node_rejected(self, square):
        with pytest.raises(TopologyError):
            square.add_link("s", "zzz", 10)

    def test_nonpositive_capacity_rejected(self, square):
        t = Topology()
        t.add_host("x")
        t.add_host("y")
        with pytest.raises(TopologyError):
            t.add_link("x", "y", 0)

    def test_links_listing_counts_both_directions(self, square):
        assert len(square.links) == 8

    def test_unknown_link_lookup_raises(self, square):
        with pytest.raises(TopologyError):
            square.link("a", "b")


class TestGraphsAndPaths:
    def test_graph_carries_capacity_attribute(self, square):
        g = square.graph()
        assert g["s"]["a"]["capacity_mbps"] == 50

    def test_shortest_path(self, square):
        path = square.shortest_path("s", "d")
        assert path[0] == "s" and path[-1] == "d" and len(path) == 3

    def test_shortest_path_missing_raises(self, square):
        square.add_router("island")
        with pytest.raises(TopologyError):
            square.shortest_path("s", "island")

    def test_simple_paths_enumerates_both(self, square):
        paths = list(square.simple_paths("s", "d"))
        assert sorted(paths) == [["s", "a", "d"], ["s", "b", "d"]]

    def test_k_shortest_paths(self, square):
        paths = square.k_shortest_paths("s", "d", 2)
        assert len(paths) == 2
        assert all(p[0] == "s" and p[-1] == "d" for p in paths)

    def test_validate_path_accepts_existing_links(self, square):
        square.validate_path(["s", "a", "d"])

    def test_validate_path_rejects_missing_link(self, square):
        with pytest.raises(TopologyError):
            square.validate_path(["s", "d"])

    def test_validate_path_rejects_single_node(self, square):
        with pytest.raises(TopologyError):
            square.validate_path(["s"])
