"""Packet record semantics."""

from repro.netsim.packet import Packet


class TestPacketBasics:
    def test_ids_are_unique_and_increasing(self):
        a = Packet("s", "d", 1500)
        b = Packet("s", "d", 1500)
        assert b.packet_id > a.packet_id

    def test_default_fields(self):
        p = Packet("s", "d", 1460)
        assert p.tag is None
        assert not p.is_ack
        assert p.payload_len == 0
        assert p.hops == 0
        assert p.protocol == "tcp"

    def test_end_seq(self):
        p = Packet("s", "d", 1460, seq=1000, payload_len=1400)
        assert p.end_seq == 2400

    def test_end_dsn(self):
        p = Packet("s", "d", 1460, dsn=5000, payload_len=1400)
        assert p.end_dsn == 6400

    def test_size_is_int(self):
        p = Packet("s", "d", 1460.0)
        assert isinstance(p.size, int)

    def test_ack_packet_fields(self):
        p = Packet("d", "s", 60, is_ack=True, ack=4200, dack=8400)
        assert p.is_ack
        assert p.ack == 4200
        assert p.dack == 8400
        assert p.payload_len == 0

    def test_tag_carried(self):
        p = Packet("s", "d", 1460, tag=3, flow_id=7, subflow_id=2)
        assert (p.tag, p.flow_id, p.subflow_id) == (3, 7, 2)

    def test_repr_mentions_kind(self):
        data = Packet("s", "d", 1460, payload_len=1400)
        ack = Packet("d", "s", 60, is_ack=True)
        assert "DATA" in repr(data)
        assert "ACK" in repr(ack)
