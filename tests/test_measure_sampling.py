"""Throughput time series and the tshark-style binning."""

import pytest

from repro.measure.sampling import (
    TimeSeries,
    per_tag_timeseries,
    sum_series,
    throughput_timeseries,
    total_timeseries,
)
from repro.netsim.capture import CaptureRecord, PacketCapture
from repro.netsim.packet import Packet


def record(time, size=1250, tag=1, subflow=0, is_ack=False):
    return CaptureRecord(
        time=time,
        size=size,
        payload_len=size - 60,
        tag=tag,
        flow_id=1,
        subflow_id=subflow,
        is_ack=is_ack,
        seq=0,
        dsn=0,
        is_retransmission=False,
    )


class TestThroughputTimeseries:
    def test_constant_rate_bins_evenly(self):
        # 1250 bytes every 1 ms = 10 Mbps.
        records = [record(0.001 * i) for i in range(100)]
        series = throughput_timeseries(records, interval=0.01, start=0.0, end=0.1)
        assert len(series) == 10
        assert series.values[3] == pytest.approx(10.0, rel=0.01)

    def test_empty_interval_is_zero(self):
        records = [record(0.005)]
        series = throughput_timeseries(records, interval=0.01, start=0.0, end=0.05)
        assert series.values[0] > 0
        assert series.values[1:] == [0.0] * 4

    def test_total_bytes_preserved(self):
        records = [record(0.013 * i) for i in range(37)]
        series = throughput_timeseries(records, interval=0.1, start=0.0, end=0.5)
        binned_bytes = sum(v * 1e6 / 8 * 0.1 for v in series.values)
        assert binned_bytes == pytest.approx(37 * 1250, rel=1e-6)

    def test_payload_only_mode(self):
        records = [record(0.0)]
        wire = throughput_timeseries(records, interval=0.1, end=0.1)
        goodput = throughput_timeseries(records, interval=0.1, end=0.1, use_payload=True)
        assert goodput.values[0] < wire.values[0]

    def test_records_outside_range_ignored(self):
        records = [record(0.05), record(5.0)]
        series = throughput_timeseries(records, interval=0.1, start=0.0, end=0.2)
        assert sum(series.values) == pytest.approx(series.values[0])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            throughput_timeseries([], interval=0.0)

    def test_sampling_interval_changes_resolution_not_mean(self):
        records = [record(0.001 * i) for i in range(400)]
        coarse = throughput_timeseries(records, interval=0.1, start=0.0, end=0.4)
        fine = throughput_timeseries(records, interval=0.01, start=0.0, end=0.4)
        assert coarse.mean() == pytest.approx(fine.mean(), rel=0.01)
        assert len(fine) == 10 * len(coarse)


class TestTimeSeriesStats:
    @pytest.fixture
    def series(self):
        return TimeSeries(times=[0.1, 0.2, 0.3, 0.4], values=[10.0, 20.0, 30.0, 40.0], interval=0.1)

    def test_mean_max_min(self, series):
        assert series.mean() == 25.0
        assert series.max() == 40.0
        assert series.min() == 10.0

    def test_stddev_and_cv(self, series):
        assert series.stddev() == pytest.approx(12.909, rel=1e-3)
        assert series.coefficient_of_variation() == pytest.approx(12.909 / 25.0, rel=1e-3)

    def test_window(self, series):
        window = series.window(0.1, 0.3)
        assert window.values == [20.0, 30.0]

    def test_mean_over(self, series):
        assert series.mean_over(0.2, 0.4) == pytest.approx(35.0)

    def test_value_at(self, series):
        assert series.value_at(0.15) == 20.0
        assert series.value_at(5.0) == 0.0

    def test_first_time_above(self, series):
        assert series.first_time_above(25.0) == pytest.approx(0.3)
        assert series.first_time_above(100.0) is None

    def test_fraction_above(self, series):
        assert series.fraction_above(25.0) == 0.5

    def test_empty_series_statistics(self):
        empty = TimeSeries()
        assert empty.mean() == 0.0
        assert empty.stddev() == 0.0
        assert empty.coefficient_of_variation() == 0.0
        assert empty.fraction_above(1.0) == 0.0


class TestCaptureIntegration:
    @pytest.fixture
    def capture(self):
        cap = PacketCapture()
        for i in range(50):
            cap.on_packet(
                Packet("s", "d", 1250, tag=1, flow_id=1, subflow_id=0, payload_len=1190),
                0.002 * i,
            )
            cap.on_packet(
                Packet("s", "d", 1250, tag=2, flow_id=1, subflow_id=1, payload_len=1190),
                0.002 * i + 0.001,
            )
        return cap

    def test_per_tag_series(self, capture):
        series = per_tag_timeseries(capture, interval=0.02, end=0.1)
        assert set(series) == {1, 2}
        assert series[1].mean() == pytest.approx(series[2].mean(), rel=0.05)

    def test_total_equals_sum_of_tags(self, capture):
        per_tag = per_tag_timeseries(capture, interval=0.02, end=0.1)
        total = total_timeseries(capture, interval=0.02, end=0.1)
        summed = sum_series(list(per_tag.values()))
        for total_value, summed_value in zip(total.values, summed.values):
            assert total_value == pytest.approx(summed_value)

    def test_explicit_tag_selection(self, capture):
        series = per_tag_timeseries(capture, interval=0.02, end=0.1, tags=[1, 3])
        assert set(series) == {1, 3}
        assert series[3].mean() == 0.0

    def test_sum_series_empty(self):
        assert len(sum_series([])) == 0
