"""DSN allocation and connection-level reassembly."""


from repro.core.options import DsnAllocator, DsnReassembler


class TestDsnAllocator:
    def test_unbounded_allocation_is_contiguous(self):
        alloc = DsnAllocator()
        assert alloc.allocate(1400) == (0, 1400)
        assert alloc.allocate(1400) == (1400, 1400)
        assert alloc.next_dsn == 2800

    def test_finite_transfer_truncates_last_grant(self):
        alloc = DsnAllocator(total_bytes=2000)
        assert alloc.allocate(1400) == (0, 1400)
        assert alloc.allocate(1400) == (1400, 600)
        assert alloc.allocate(1400) is None

    def test_send_buffer_limits_outstanding_data(self):
        alloc = DsnAllocator(send_buffer_bytes=2000)
        assert alloc.allocate(1400) == (0, 1400)
        assert alloc.allocate(1400) == (1400, 600)
        assert alloc.allocate(1400) is None
        alloc.on_acked(1400)
        assert alloc.allocate(1400) == (2000, 1400)

    def test_outstanding_bytes(self):
        alloc = DsnAllocator()
        alloc.allocate(1400)
        alloc.allocate(1400)
        alloc.on_acked(1400)
        assert alloc.outstanding_bytes == 1400

    def test_available_never_negative(self):
        alloc = DsnAllocator(send_buffer_bytes=1000)
        alloc.allocate(1000)
        assert alloc.available(1400) == 0

    def test_finished_flag(self):
        alloc = DsnAllocator(total_bytes=1000)
        assert not alloc.finished
        alloc.allocate(1000)
        assert not alloc.finished
        alloc.on_acked(1000)
        assert alloc.finished

    def test_unbounded_never_finished(self):
        alloc = DsnAllocator()
        alloc.allocate(10_000)
        alloc.on_acked(10_000)
        assert not alloc.finished


class TestDsnReassembler:
    def test_in_order_delivery_advances_data_ack(self):
        reasm = DsnReassembler()
        assert reasm.deliver(0, 1400, now=0.1) == 1400
        assert reasm.deliver(1400, 1400, now=0.2) == 2800
        assert reasm.delivered_bytes == 2800

    def test_out_of_order_held_until_hole_fills(self):
        reasm = DsnReassembler()
        assert reasm.deliver(1400, 1400, now=0.1) == 0
        assert reasm.out_of_order_bytes == 1400
        assert reasm.deliver(0, 1400, now=0.2) == 2800
        assert reasm.out_of_order_bytes == 0

    def test_interleaved_subflow_delivery(self):
        reasm = DsnReassembler()
        # Subflow A delivers even chunks, subflow B odd chunks, out of order.
        reasm.deliver(2800, 1400, now=0.1)
        reasm.deliver(0, 1400, now=0.2)
        reasm.deliver(4200, 1400, now=0.3)
        reasm.deliver(1400, 1400, now=0.4)
        assert reasm.data_ack == 5600

    def test_duplicates_not_counted_twice(self):
        reasm = DsnReassembler()
        reasm.deliver(0, 1400, now=0.1)
        reasm.deliver(0, 1400, now=0.2)
        assert reasm.delivered_bytes == 1400
        assert reasm.duplicate_bytes == 1400

    def test_duplicate_of_pending_range_ignored(self):
        reasm = DsnReassembler()
        reasm.deliver(1400, 1400, now=0.1)
        reasm.deliver(1400, 1400, now=0.2)
        reasm.deliver(0, 1400, now=0.3)
        assert reasm.data_ack == 2800
        assert reasm.duplicate_bytes == 1400

    def test_partial_overlap_counts_only_new_bytes(self):
        reasm = DsnReassembler()
        reasm.deliver(0, 1400, now=0.1)
        # Range [700, 2100): the first 700 bytes are already delivered.
        reasm.deliver(700, 1400, now=0.2)
        assert reasm.data_ack == 2100
        assert reasm.duplicate_bytes == 700

    def test_goodput_records_are_monotone(self):
        reasm = DsnReassembler()
        reasm.deliver(1400, 1400, now=0.1)
        reasm.deliver(0, 1400, now=0.2)
        reasm.deliver(2800, 1400, now=0.3)
        times = [t for t, _ in reasm.goodput_records]
        values = [v for _, v in reasm.goodput_records]
        assert times == sorted(times)
        assert values == sorted(values)

    def test_zero_length_delivery_is_noop(self):
        reasm = DsnReassembler()
        assert reasm.deliver(0, 0, now=0.1) == 0
        assert reasm.delivered_bytes == 0
