"""Single-path congestion control: slow start, Reno AIMD, CUBIC."""

import pytest

from repro.errors import ConfigurationError
from repro.tcp.cc import make_congestion_control
from repro.tcp.cc.base import INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS
from repro.tcp.cc.cubic import CubicCongestionControl
from repro.tcp.cc.reno import RenoCongestionControl

MSS = 1400


class TestFactory:
    def test_reno_by_name(self):
        assert isinstance(make_congestion_control("reno", mss=MSS), RenoCongestionControl)

    def test_newreno_alias(self):
        assert isinstance(make_congestion_control("newreno", mss=MSS), RenoCongestionControl)

    def test_cubic_by_name(self):
        assert isinstance(make_congestion_control("CUBIC", mss=MSS), CubicCongestionControl)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_congestion_control("bbr", mss=MSS)

    def test_lia_is_not_a_single_path_algorithm(self):
        with pytest.raises(ConfigurationError):
            make_congestion_control("lia", mss=MSS)


class TestCommonBehaviour:
    @pytest.fixture(params=["reno", "cubic"])
    def cc(self, request):
        return make_congestion_control(request.param, mss=MSS)

    def test_initial_window(self, cc):
        assert cc.cwnd == pytest.approx(INITIAL_CWND_SEGMENTS)
        assert cc.cwnd_bytes == pytest.approx(INITIAL_CWND_SEGMENTS * MSS)

    def test_slow_start_doubles_per_window(self, cc):
        # Acknowledging a full window in slow start doubles the window.
        before = cc.cwnd
        for _ in range(int(before)):
            cc.on_ack(MSS, srtt=0.01, now=0.01)
        assert cc.cwnd == pytest.approx(2 * before, rel=0.05)

    def test_loss_reduces_window(self, cc):
        for _ in range(40):
            cc.on_ack(MSS, srtt=0.01, now=0.01)
        before = cc.cwnd
        cc.on_loss(now=0.5)
        assert cc.cwnd < before
        assert cc.cwnd >= MIN_CWND_SEGMENTS

    def test_loss_sets_ssthresh(self, cc):
        for _ in range(40):
            cc.on_ack(MSS, srtt=0.01, now=0.01)
        cc.on_loss(now=0.5)
        assert cc.ssthresh == pytest.approx(cc.cwnd)

    def test_timeout_collapses_to_one_segment(self, cc):
        for _ in range(20):
            cc.on_ack(MSS, srtt=0.01, now=0.01)
        cc.on_timeout(now=1.0)
        assert cc.cwnd == 1.0
        assert cc.ssthresh >= MIN_CWND_SEGMENTS

    def test_zero_byte_ack_ignored(self, cc):
        before = cc.cwnd
        cc.on_ack(0, srtt=0.01, now=0.01)
        assert cc.cwnd == before

    def test_loss_counters(self, cc):
        cc.on_loss(now=0.1)
        cc.on_timeout(now=0.2)
        assert cc.losses == 1
        assert cc.timeouts == 1

    def test_slow_start_exits_at_ssthresh(self, cc):
        cc.ssthresh = 20.0
        for _ in range(200):
            cc.on_ack(MSS, srtt=0.01, now=0.01)
        assert not cc.in_slow_start


class TestRenoAimd:
    def test_congestion_avoidance_adds_one_segment_per_rtt(self):
        cc = RenoCongestionControl(mss=MSS)
        cc.ssthresh = 10.0
        cc.cwnd = 10.0
        # One round trip: acknowledge cwnd segments.
        for _ in range(10):
            cc.on_ack(MSS, srtt=0.01, now=0.02)
        assert cc.cwnd == pytest.approx(11.0, rel=0.02)

    def test_halving_on_loss(self):
        cc = RenoCongestionControl(mss=MSS)
        cc.ssthresh = 10.0
        cc.cwnd = 24.0
        cc.on_loss(now=0.1)
        assert cc.cwnd == pytest.approx(12.0)


class TestCubic:
    def make_cc(self, **kwargs):
        cc = CubicCongestionControl(mss=MSS, **kwargs)
        cc.ssthresh = cc.cwnd  # force congestion avoidance
        return cc

    def test_beta_decrease_on_loss(self):
        cc = self.make_cc()
        cc.cwnd = 100.0
        cc.on_loss(now=1.0)
        assert cc.cwnd == pytest.approx(70.0)

    def test_fast_convergence_lowers_wmax(self):
        cc = self.make_cc(fast_convergence=True)
        cc.cwnd = 100.0
        cc.on_loss(now=1.0)          # w_max = 100
        cc.cwnd = 80.0               # window stopped growing below w_max
        cc.on_loss(now=2.0)
        assert cc._w_max == pytest.approx(80.0 * (2 - cc.BETA) / 2)

    def test_without_fast_convergence_wmax_is_cwnd(self):
        cc = self.make_cc(fast_convergence=False)
        cc.cwnd = 100.0
        cc.on_loss(now=1.0)
        cc.cwnd = 80.0
        cc.on_loss(now=2.0)
        assert cc._w_max == pytest.approx(80.0)

    def test_window_grows_towards_wmax_after_loss(self):
        cc = self.make_cc()
        cc.cwnd = 100.0
        cc.on_loss(now=0.0)
        now = 0.0
        for _ in range(3000):
            now += 0.001
            cc.on_ack(MSS, srtt=0.01, now=now)
        # After enough time CUBIC grows back to (and beyond) the previous maximum.
        assert cc.cwnd >= 95.0

    def test_growth_is_slow_near_wmax_and_faster_far_from_it(self):
        cc = self.make_cc()
        cc.cwnd = 100.0
        cc.on_loss(now=0.0)
        early_window = cc.cwnd
        for i in range(100):
            cc.on_ack(MSS, srtt=0.01, now=0.001 * (i + 1))
        early_growth = cc.cwnd - early_window
        assert early_growth < 10.0  # concave region right after the loss

    def test_tcp_friendly_region_floors_growth(self):
        friendly = self.make_cc(tcp_friendliness=True)
        unfriendly = self.make_cc(tcp_friendliness=False)
        for cc in (friendly, unfriendly):
            cc.cwnd = 20.0
            cc.on_loss(now=0.0)
        now = 0.0
        for _ in range(400):
            now += 0.01
            friendly.on_ack(MSS, srtt=0.1, now=now)
            unfriendly.on_ack(MSS, srtt=0.1, now=now)
        # With a long RTT the Reno estimate dominates the cubic curve early on.
        assert friendly.cwnd >= unfriendly.cwnd

    def test_timeout_resets_epoch(self):
        cc = self.make_cc()
        cc.cwnd = 50.0
        cc.on_ack(MSS, srtt=0.01, now=0.5)
        cc.on_timeout(now=1.0)
        assert cc.cwnd == 1.0
        assert cc._epoch_start is None
