"""Network dynamics: time-varying links, failure/recovery, subflow lifecycle.

Covers the three refactored layers:

* netsim -- Link's dynamic mode (mid-serve rate re-plan, down/park/up, loss
  bursts, delay changes, FIFO-no-reorder guarantee) and the Schedule API;
* core -- the PathManager lifecycle (runtime add/close subflow, failover,
  DSN re-injection, coupling-group membership);
* experiments/cli -- the named dynamics scenarios end-to-end, including the
  acceptance pin: a connection keeps transferring data across a default-path
  LinkDown/LinkUp cycle.

Plus the merged-but-inactive guard: an attached empty Schedule leaves the
golden static scenarios byte-identical.
"""

import random

import pytest

from repro.core.connection import MptcpConnection
from repro.core.path_manager import FailoverPathManager, TagPathManager
from repro.errors import ConfigurationError
from repro.experiments.harness import run_experiment
from repro.experiments.scenarios import (
    DYNAMICS_SCENARIOS,
    capacity_step_tracking,
    handover_subflow_migration,
    link_flap_failover,
)
from repro.netsim import (
    DropTailQueue,
    DynamicsSpec,
    LinkDelayChange,
    LinkDown,
    LinkRateChange,
    LinkUp,
    LossBurst,
    Network,
    Schedule,
    Simulator,
)
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.topologies.generators import wifi_cellular
from repro.units import mbps

from tests import golden_pipeline


class RecordingNode:
    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.received = []

    def receive(self, packet, link=None):
        self.received.append((self.sim.now, packet.packet_id))


def make_link(sim, rate_mbps=10.0, delay=0.001, queue=None):
    src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
    link = Link(sim, src, dst, rate_bps=mbps(rate_mbps), delay=delay, queue=queue)
    return link, dst


class TestLinkDynamics:
    def test_rate_decrease_mid_serve_replans_delivery(self):
        sim = Simulator()
        link, dst = make_link(sim, 10.0, 0.001)
        link.send(Packet("a", "b", 1500))  # tx = 1.2 ms, deliver at 2.2 ms
        sim.schedule_at(0.0006, link.set_rate, mbps(5))
        sim.run()
        # 0.6 ms served at 10 Mbps; the remaining 0.6 ms of bits take 1.2 ms
        # at 5 Mbps: delivery at 0.6 + 1.2 + 1.0(delay) ms.
        assert dst.received[0][0] == pytest.approx(0.0028, abs=1e-12)

    def test_rate_increase_mid_serve_delivers_earlier(self):
        sim = Simulator()
        link, dst = make_link(sim, 10.0, 0.001)
        link.send(Packet("a", "b", 1500))
        sim.schedule_at(0.0006, link.set_rate, mbps(20))
        sim.run()
        assert dst.received[0][0] == pytest.approx(0.0019, abs=1e-12)

    def test_rate_change_reaches_queued_packets(self):
        sim = Simulator()
        link, dst = make_link(sim, 10.0, 0.0)
        link.send(Packet("a", "b", 1000))
        link.send(Packet("a", "b", 1000))  # queued behind the first
        sim.schedule_at(0.0004, link.set_rate, mbps(5))
        sim.run()
        times = [t for t, _ in dst.received]
        # First: 0.4 ms at 10 Mbps + 0.8 ms remaining at 5 Mbps = 1.2 ms;
        # second serialises fully at 5 Mbps (1.6 ms) after it.
        assert times == pytest.approx([0.0012, 0.0028], abs=1e-12)

    def test_rate_change_while_idle_and_noop_rate(self):
        sim = Simulator()
        link, dst = make_link(sim, 10.0, 0.0)
        link.set_rate(mbps(20))
        link.set_rate(mbps(20))  # same rate: no-op
        link.send(Packet("a", "b", 1000))
        sim.run()
        assert dst.received[0][0] == pytest.approx(1000 * 8 / mbps(20), abs=1e-15)

    def test_down_drops_offered_and_flushes_queue(self):
        sim = Simulator()
        link, dst = make_link(sim, 1.0, 0.0, queue=DropTailQueue(10))
        for _ in range(3):
            assert link.send(Packet("a", "b", 1000))
        sim.schedule_at(0.004, link.set_down)  # first packet (8 ms) mid-serve
        sim.run()
        # The serialising packet was committed to the wire; the two queued
        # ones were flushed.
        assert len(dst.received) == 1
        assert link.stats.packets_dropped == 2
        assert link.drops == 2
        assert not link.up
        assert link.send(Packet("a", "b", 1000)) is False
        assert link.stats.packets_dropped == 3

    def test_down_park_resumes_on_up(self):
        sim = Simulator()
        link, dst = make_link(sim, 1.0, 0.0, queue=DropTailQueue(10))
        for _ in range(3):
            link.send(Packet("a", "b", 1000))
        sim.schedule_at(0.004, lambda: link.set_down(flush="park"))
        sim.schedule_at(0.050, link.set_up)
        sim.run()
        times = [t for t, _ in dst.received]
        # Packet 1 completes at 8 ms; the parked two resume at 50 ms.
        assert times == pytest.approx([0.008, 0.058, 0.066], abs=1e-12)
        assert link.stats.packets_dropped == 0

    def test_set_down_rejects_unknown_flush(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ValueError):
            link.set_down(flush="teleport")

    def test_loss_burst_reseeds_per_burst(self):
        # Two bursts with the same seed must produce the same drop pattern
        # regardless of what the first burst consumed from the RNG.
        def pattern(link, sim, count):
            outcomes = []
            for _ in range(count):
                outcomes.append(link.send(Packet("a", "b", 100)))
                sim.run()
            return outcomes

        sim = Simulator()
        link, _ = make_link(sim, 100.0, 0.0)
        link.start_loss_burst(1.0, 0.5, seed=7)
        first = pattern(link, sim, 10)
        link.start_loss_burst(1.0, 0.5, seed=7)
        second = pattern(link, sim, 10)
        assert first == second

    def test_loss_burst_is_deterministic_and_expires(self):
        sim = Simulator()
        link, dst = make_link(sim, 100.0, 0.0)
        link.start_loss_burst(1.0, 0.5, seed=42)
        reference = random.Random(42)
        outcomes = []
        for _ in range(20):
            outcomes.append(link.send(Packet("a", "b", 100)))
            sim.run()  # drain so the transmitter is idle again
        expected = [reference.random() >= 0.5 for _ in range(20)]
        assert outcomes == expected
        # After the burst expires every packet goes through again.
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert link.send(Packet("a", "b", 100))
        assert not link._impaired

    def test_delay_change_applies_to_later_packets_without_reordering(self):
        sim = Simulator()
        link, dst = make_link(sim, 100.0, 0.010)
        first = Packet("a", "b", 1000)
        second = Packet("a", "b", 1000)
        link.send(first)  # deliver at 10.08 ms
        sim.schedule_at(0.001, lambda: link.set_delay(0.0))
        sim.schedule_at(0.002, lambda: link.send(second))
        sim.run()
        # The second packet's raw deadline (2.08 ms) would overtake the
        # first; a FIFO link never reorders, so it is clamped behind it.
        assert [pid for _, pid in dst.received] == [first.packet_id, second.packet_id]
        assert dst.received[0][0] == pytest.approx(0.01008, abs=1e-12)
        assert dst.received[1][0] == pytest.approx(0.01008, abs=1e-12)
        # A third packet sent later uses the new delay normally.
        third = Packet("a", "b", 1000)
        sim.schedule_at(0.020, lambda: link.send(third))
        sim.run()
        assert dst.received[2][0] == pytest.approx(0.02008, abs=1e-12)

    def test_utilization_stays_truthful_across_rate_change(self):
        from repro.netsim.topology import Topology

        topology = Topology("util")
        topology.add_host("a")
        topology.add_host("b")
        topology.add_link("a", "b", 10.0, 0.0, 10)
        network = Network(topology)
        link = network.link("a", "b")
        # 10 back-to-back packets, rate halved while the queue drains: the
        # link is busy the whole time it transmits, never longer.
        for _ in range(10):
            link.send(Packet("a", "b", 1250))  # 1 ms each at 10 Mbps
        network.sim.schedule_at(0.0025, link.set_rate, mbps(5))
        network.sim.run()
        busy = link.stats.busy_time
        assert busy == pytest.approx(network.sim.now, rel=1e-9)
        utilization = network.link_utilization("a", "b", network.sim.now * 2)
        assert utilization == pytest.approx(0.5, rel=1e-9)

    def test_static_link_never_goes_dynamic(self):
        sim = Simulator()
        link, dst = make_link(sim)
        for _ in range(5):
            link.send(Packet("a", "b", 1000))
        sim.run()
        assert not link._dynamic
        assert not link._deadlines


class TestSchedule:
    def test_empty_schedule_is_free(self):
        topology, paths = wifi_cellular()
        network = Network(topology)
        pending_before = network.sim.pending_events
        network.apply_schedule(Schedule())
        assert network.sim.pending_events == pending_before
        assert not Schedule()
        assert not DynamicsSpec()

    def test_at_and_every_build_entries(self):
        schedule = (
            Schedule()
            .at(1.0, LinkDown("a", "b"))
            .at(2.0, LinkUp("a", "b"))
            .every(0.5, LossBurst("a", "b", 0.1), start=3.0, count=3)
        )
        assert len(schedule) == 5
        assert schedule.event_times() == [1.0, 2.0, 3.0, 3.5, 4.0]

    def test_every_includes_boundary_occurrence(self):
        # (0.3 - 0.0) / 0.1 truncates to 2 under float division; the
        # occurrence landing exactly on `end` must not be lost.
        schedule = Schedule().every(0.1, LossBurst("a", "b", 0.05), start=0.0, end=0.3)
        assert len(schedule) == 4

    def test_every_requires_bound(self):
        with pytest.raises(ConfigurationError):
            Schedule().every(0.5, LinkDown("a", "b"))
        with pytest.raises(ConfigurationError):
            Schedule().at(-1.0, LinkDown("a", "b"))

    def test_events_fire_at_scheduled_times(self):
        topology, paths = wifi_cellular()
        network = Network(topology)
        schedule = (
            Schedule()
            .at(1.0, LinkDown("client", "wifi_ap"))
            .at(2.0, LinkUp("client", "wifi_ap"))
            .at(2.5, LinkRateChange("client", "lte_bs", 5.0))
            .at(2.5, LinkDelayChange("client", "lte_bs", 0.05))
        )
        network.apply_schedule(schedule)
        network.run(1.5)
        assert not network.link("client", "wifi_ap").up
        assert not network.link("wifi_ap", "client").up  # bidirectional default
        assert not network.path_is_up(["client", "wifi_ap", "server"])
        network.run(1.5)
        assert network.link("client", "wifi_ap").up
        assert network.path_is_up(["client", "wifi_ap", "server"])
        cellular = network.link("client", "lte_bs")
        assert cellular.rate_bps == mbps(5.0)
        assert cellular.delay == 0.05
        # Directed events leave the reverse direction alone.
        assert network.link("lte_bs", "client").rate_bps == mbps(20.0)

    def test_dynamics_spec_epochs_default_to_event_times(self):
        spec = DynamicsSpec(schedule=Schedule().at(1.0, LinkDown("a", "b")))
        assert spec.measurement_epochs() == [1.0]
        explicit = DynamicsSpec(
            schedule=Schedule().at(1.0, LinkDown("a", "b")), epochs=(2.0, 0.5)
        )
        assert explicit.measurement_epochs() == [0.5, 2.0]


class TestSubflowLifecycle:
    def _flapped_connection(self, total_bytes=None, cc="lia"):
        topology, paths = wifi_cellular()
        network = Network(topology)
        connection = MptcpConnection(
            network, "client", "server", paths,
            congestion_control=cc, total_bytes=total_bytes,
        )
        connection.start(0.0)
        return network, connection

    def test_connection_survives_default_path_flap(self):
        """Acceptance pin: data keeps flowing across a LinkDown/LinkUp cycle
        of the default path, via the surviving subflow."""
        network, connection = self._flapped_connection()
        capture = network.attach_capture("server", data_only=True)
        Schedule().at(1.0, LinkDown("client", "wifi_ap")).at(
            2.0, LinkUp("client", "wifi_ap")
        ).apply(network)
        network.run(1.1)
        assert connection.subflow_states() == {0: "down", 1: "active"}
        assert [sf.subflow_id for sf in connection.active_subflows] == [1]
        delivered_at_down = connection.bytes_delivered
        network.run(0.9)
        delivered_in_outage = connection.bytes_delivered - delivered_at_down
        assert delivered_in_outage > 50_000  # in-order delivery continued
        network.run(1.0)
        assert connection.subflow_states() == {0: "active", 1: "active"}
        assert connection.bytes_delivered > delivered_at_down + delivered_in_outage
        # Receiver-side: the surviving (cellular, tag 2) path carried data
        # through the outage window.
        from repro.measure.sampling import per_tag_timeseries

        per_tag = per_tag_timeseries(capture, 0.1, end=3.0, tags=[1, 2])
        assert per_tag[2].window(1.2, 2.0).mean() > 1.0
        assert per_tag[1].window(1.2, 2.0).mean() == 0.0  # dead path silent

    def test_bounded_transfer_completes_across_outage(self):
        total = 1_500_000
        network, connection = self._flapped_connection(total_bytes=total)
        Schedule().at(0.15, LinkDown("client", "wifi_ap")).apply(network)
        network.run(8.0)
        assert connection.bytes_delivered == total

    def test_reinjected_ranges_tolerate_duplicate_delivery(self):
        total = 1_500_000
        network, connection = self._flapped_connection(total_bytes=total)
        Schedule().at(0.15, LinkDown("client", "wifi_ap")).at(
            0.6, LinkUp("client", "wifi_ap")
        ).apply(network)
        network.run(8.0)
        # The healed path retransmits ranges that were already re-injected;
        # the reassembler must deliver each byte exactly once.
        assert connection.bytes_delivered == total
        assert connection.reassembler.duplicate_bytes > 0

    def test_half_restored_link_keeps_path_down(self):
        # Restoring only the forward direction must not reactivate the
        # subflow: the reverse (ACK) direction is still dead.
        network, connection = self._flapped_connection()
        Schedule().at(0.5, LinkDown("client", "wifi_ap")).at(
            1.0, LinkUp("client", "wifi_ap", bidirectional=False)
        ).apply(network)
        network.run(1.2)
        assert not network.path_is_up(["client", "wifi_ap", "server"])
        assert connection.subflow_states()[0] == "down"
        network.link("wifi_ap", "client").set_up()
        network._notify_dynamics("link_up", "wifi_ap", "client")
        network.run(0.5)
        assert connection.subflow_states()[0] == "active"

    def test_close_of_down_subflow_does_not_reinject_twice(self):
        network, connection = self._flapped_connection()
        Schedule().at(0.5, LinkDown("client", "wifi_ap")).apply(network)
        network.run(0.6)
        victim = connection.subflows[0]
        assert victim.state == "down"
        network.run(0.2)  # siblings drain the re-injected ranges
        queued_before = len(connection._reinject)
        connection.close_subflow(victim)
        # Closing the already-down subflow must not enqueue a second copy.
        assert len(connection._reinject) == queued_before
        assert victim.state == "closed"

    def test_down_subflow_leaves_coupling_group_and_rejoins(self):
        network, connection = self._flapped_connection()
        assert len(connection.coupling_group) == 2
        Schedule().at(0.5, LinkDown("client", "wifi_ap")).at(
            1.0, LinkUp("client", "wifi_ap")
        ).apply(network)
        network.run(0.6)
        assert len(connection.coupling_group) == 1
        network.run(0.6)
        assert len(connection.coupling_group) == 2

    def test_add_subflow_at_runtime(self):
        topology, paths = wifi_cellular()
        network = Network(topology)
        connection = MptcpConnection(
            network, "client", "server", [paths[0]], congestion_control="olia"
        )
        connection.start(0.0)
        network.run(0.5)
        assert len(connection.subflows) == 1
        before = connection.subflows[0].acked_bytes
        added = connection.add_subflow(paths[1])
        assert added.subflow_id == 1
        assert added.tag == paths[1].tag
        assert len(connection.coupling_group) == 2
        network.run(1.0)
        assert added.acked_bytes > 0  # the new subflow carries data
        assert connection.subflows[0].acked_bytes > before

    def test_close_subflow_unregisters_and_reinjects(self):
        total = 1_000_000
        topology, paths = wifi_cellular()
        network = Network(topology)
        connection = MptcpConnection(
            network, "client", "server", paths,
            congestion_control="lia", total_bytes=total,
        )
        connection.start(0.0)
        network.run(0.2)
        victim = connection.subflows[0]
        connection.close_subflow(victim)
        assert victim.state == "closed"
        assert victim.sender.closed
        assert len(connection.coupling_group) == 1
        # Closing twice is harmless.
        connection.close_subflow(victim)
        network.run(6.0)
        assert connection.bytes_delivered == total
        # The closed sender never transmits again.
        sent_after_close = victim.sender.stats.segments_sent
        network.run(0.5)
        assert victim.sender.stats.segments_sent == sent_after_close

    def test_idle_subflow_resumes_after_heal(self):
        # The secondary subflow joins (join_delay) while its path is already
        # down: it is idle (nothing outstanding) for the whole outage and
        # must be explicitly resumed when the path heals.
        topology, paths = wifi_cellular()
        network = Network(topology)
        connection = MptcpConnection(
            network, "client", "server", paths,
            congestion_control="lia", default_path_index=1, join_delay=0.5,
        )
        connection.start(0.0)
        # Wi-Fi (tag 1, subflow 0) is the delayed secondary here; fail it
        # before it joins and heal it later.
        Schedule().at(0.1, LinkDown("client", "wifi_ap")).at(
            1.0, LinkUp("client", "wifi_ap")
        ).apply(network)
        wifi = connection.subflows[1]
        assert wifi.tag == 1
        network.run(2.5)
        assert wifi.state == "active"
        assert wifi.acked_bytes > 0  # healed path actually carries data

    def test_failover_path_manager_opens_backup_at_runtime(self):
        topology, paths = wifi_cellular()
        network = Network(topology)
        manager = FailoverPathManager(list(paths))
        connection = MptcpConnection(
            network, "client", "server", path_manager=manager,
            congestion_control="lia",
        )
        connection.start(0.0)
        Schedule().at(1.0, LinkDown("client", "wifi_ap")).apply(network)
        network.run(0.9)
        assert len(connection.subflows) == 1
        delivered_before = connection.bytes_delivered
        network.run(1.1)
        assert len(connection.subflows) == 2
        assert connection.subflow_states() == {0: "down", 1: "active"}
        assert connection.bytes_delivered > delivered_before + 50_000

    def test_path_manager_build_subflows_alias(self):
        topology, paths = wifi_cellular()
        network = Network(topology)
        manager = TagPathManager(list(paths))
        subflows = manager.build_subflows(network, "client", "server")
        assert [sf.subflow_id for sf in subflows] == [0, 1]
        assert all(sf.state == "active" for sf in subflows)

    def test_legacy_path_manager_subclass_still_works(self):
        # A pre-lifecycle subclass that only overrides build_subflows must
        # remain instantiable and drive a connection via initial_subflows.
        from repro.core.path_manager import PathManager

        topology, paths = wifi_cellular()

        class LegacyManager(PathManager):
            def build_subflows(self, network, src, dst):
                tag = paths[0].tag
                network.install_path(paths[0].nodes, tag, as_default=True)
                from repro.core.subflow import Subflow

                return [Subflow(0, paths[0], tag, is_default=True)]

        network = Network(topology)
        connection = MptcpConnection(
            network, "client", "server", path_manager=LegacyManager()
        )
        assert len(connection.subflows) == 1

        class EmptyManager(PathManager):
            pass

        with pytest.raises(NotImplementedError):
            EmptyManager().initial_subflows(network, "client", "server")


class TestDynamicsScenarios:
    def test_link_flap_failover_reports_metrics(self):
        config = link_flap_failover(duration=3.0, congestion_control="cubic")
        result = run_experiment(config)
        assert result.dynamics is not None
        report = result.dynamics
        assert len(report.epochs) == 2
        assert report.worst_gap_s is not None and report.worst_gap_s > 0.0
        # Down at 0.9, up at 1.8: the cellular path keeps data flowing.
        assert result.per_path_series[2].window(1.1, 1.8).mean() > 1.0
        assert "dynamics" in result.summary()

    def test_capacity_step_tracking_follows_profile(self):
        config = capacity_step_tracking(duration=3.0, congestion_control="cubic")
        result = run_experiment(config)
        report = result.dynamics
        assert report.tracking_error is not None
        assert report.tracking_error < 0.25
        # During the reduced window throughput must hug the reduced rate.
        reduced = result.total_series.window(1.4, 1.8).mean()
        assert 10.0 < reduced < 25.0

    def test_handover_subflow_migration_migrates(self):
        config = handover_subflow_migration(duration=3.0, congestion_control="cubic")
        result = run_experiment(config)
        # Before the handover only the Wi-Fi tag carries data; afterwards
        # only the cellular tag does.
        wifi, cellular = result.per_path_series[1], result.per_path_series[2]
        assert wifi.window(0.2, 1.2).mean() > 1.0
        assert cellular.window(0.2, 1.1).mean() == 0.0
        assert cellular.window(1.6, 3.0).mean() > 1.0

    def test_spec_with_only_epochs_still_produces_report(self):
        # Epochs/profile may describe events driven outside the Schedule;
        # the report must not be gated on scheduled events alone.
        from repro.experiments.harness import paper_experiment

        config = paper_experiment("cubic", duration=1.0).with_overrides(
            dynamics=DynamicsSpec(
                epochs=(0.5,), capacity_profile=((0.0, 90.0),)
            )
        )
        result = run_experiment(config)
        assert result.dynamics is not None
        assert [e.epoch for e in result.dynamics.epochs] == [0.5]
        assert result.dynamics.tracking_error is not None
        # A fully empty spec still yields no report.
        empty = run_experiment(
            paper_experiment("cubic", duration=0.5).with_overrides(
                dynamics=DynamicsSpec()
            )
        )
        assert empty.dynamics is None

    def test_scenario_registry_is_complete(self):
        assert set(DYNAMICS_SCENARIOS) == {
            "link_flap_failover",
            "capacity_step_tracking",
            "handover_subflow_migration",
        }

    def test_scenarios_validate_event_times(self):
        with pytest.raises(ValueError):
            link_flap_failover(duration=1.0, down_at=0.8, up_at=0.5)
        with pytest.raises(ValueError):
            capacity_step_tracking(duration=1.0, step_down_at=2.0)
        with pytest.raises(ValueError):
            handover_subflow_migration(duration=1.0, handover_at=1.5)


class TestEmptyScheduleByteIdentical:
    """The dynamics machinery merged but inactive must cost nothing."""

    def test_single_flow_with_empty_spec_matches_golden(self):
        golden = golden_pipeline.load_golden()
        fresh = golden_pipeline.single_flow_case("cubic", dynamics=DynamicsSpec())
        assert fresh == golden["single/cubic"]
        assert fresh == golden["single/cubic-empty-dynamics"]

    def test_multi_flow_with_empty_spec_matches_golden(self):
        from repro.experiments.scenarios import two_mptcp_competition

        golden = golden_pipeline.load_golden()
        fresh = golden_pipeline.multi_flow_case(
            two_mptcp_competition(
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            ).with_overrides(dynamics=DynamicsSpec())
        )
        assert fresh == golden["multi/two_mptcp_competition"]
        assert fresh == golden["multi/two_mptcp_empty_dynamics"]


class TestDynamicsCli:
    def test_list_flags(self, capsys):
        from repro.cli import main

        assert main(["dynamics", "--list"]) == 0
        assert "link_flap_failover" in capsys.readouterr().out
        assert main(["fairness", "--list"]) == 0
        assert "two_mptcp_competition" in capsys.readouterr().out

    def test_unknown_scenarios_exit_nonzero_with_names(self, capsys):
        from repro.cli import main

        assert main(["dynamics", "no_such_scenario"]) == 2
        err = capsys.readouterr().err
        assert "no_such_scenario" in err and "link_flap_failover" in err
        assert main(["fairness", "no_such_scenario"]) == 2
        err = capsys.readouterr().err
        assert "mptcp_vs_tcp_shared_bottleneck" in err

    def test_missing_scenario_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["dynamics"]) == 2
        assert "required" in capsys.readouterr().err

    def test_dynamics_json_run(self, capsys):
        import json

        from repro.cli import main

        assert main(
            ["dynamics", "link_flap_failover", "--duration", "1.5", "--cc", "cubic", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "dynamics" in payload
        assert len(payload["dynamics"]["epochs"]) == 2
