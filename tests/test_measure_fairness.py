"""Fairness metrics: Jain's index, bottleneck shares, settle times."""

import pytest

from repro.measure.fairness import (
    analyze_fairness,
    bottleneck_share,
    jains_index,
    mptcp_vs_tcp_ratio,
    settle_time,
)
from repro.measure.sampling import TimeSeries


def make_series(values, interval=0.1):
    times = [(i + 1) * interval for i in range(len(values))]
    return TimeSeries(times=times, values=list(values), interval=interval)


class TestJainsIndex:
    def test_equal_rates_are_perfectly_fair(self):
        assert jains_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_single_hog_gives_one_over_n(self):
        assert jains_index([30.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_zero_vectors(self):
        assert jains_index([]) == 0.0
        assert jains_index([0.0, 0.0]) == 0.0

    def test_negative_rates_clamped(self):
        assert jains_index([10.0, -5.0]) == jains_index([10.0, 0.0])

    def test_known_two_flow_value(self):
        # (1+3)^2 / (2 * (1+9)) = 16/20
        assert jains_index([1.0, 3.0]) == pytest.approx(0.8)


class TestBottleneckShare:
    def test_shares_sum_to_one(self):
        shares = bottleneck_share({"a": 30.0, "b": 20.0})
        assert shares["a"] == pytest.approx(0.6)
        assert shares["b"] == pytest.approx(0.4)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_zero_aggregate(self):
        assert bottleneck_share({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}


class TestMptcpVsTcpRatio:
    def test_fair_split_is_one(self):
        rates = {"m": 25.0, "t": 25.0}
        kinds = {"m": "mptcp", "t": "tcp"}
        assert mptcp_vs_tcp_ratio(rates, kinds) == pytest.approx(1.0)

    def test_aggressive_mptcp(self):
        rates = {"m": 40.0, "t": 10.0}
        kinds = {"m": "mptcp", "t": "tcp"}
        assert mptcp_vs_tcp_ratio(rates, kinds) == pytest.approx(4.0)

    def test_means_over_populations(self):
        rates = {"m1": 30.0, "m2": 10.0, "t": 20.0}
        kinds = {"m1": "mptcp", "m2": "mptcp", "t": "tcp"}
        assert mptcp_vs_tcp_ratio(rates, kinds) == pytest.approx(1.0)

    def test_missing_population_returns_none(self):
        assert mptcp_vs_tcp_ratio({"m": 10.0}, {"m": "mptcp"}) is None
        assert mptcp_vs_tcp_ratio({"t": 10.0}, {"t": "tcp"}) is None
        assert (
            mptcp_vs_tcp_ratio({"m": 1.0, "t": 0.0}, {"m": "mptcp", "t": "tcp"}) is None
        )


class TestSettleTime:
    def test_converging_series_settles(self):
        series = make_series([1.0, 5.0, 9.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        settled = settle_time(series, band=0.1, hold=3)
        # Tail mean is 10; the run 9, 10, 10 (t=0.3, 0.4, 0.5) is the first
        # three-sample stretch inside the 10% band.
        assert settled == pytest.approx(0.5)

    def test_oscillating_series_never_settles(self):
        series = make_series([1.0, 20.0] * 10)
        assert settle_time(series, band=0.1, hold=3) is None

    def test_empty_or_zero_series(self):
        assert settle_time(TimeSeries()) is None
        assert settle_time(make_series([0.0] * 10)) is None


class TestAnalyzeFairness:
    def test_full_report(self):
        flows = {
            "mptcp": make_series([20.0] * 10),
            "tcp": make_series([30.0] * 10),
        }
        kinds = {"mptcp": "mptcp", "tcp": "tcp"}
        report = analyze_fairness(flows, kinds, bottleneck_capacity_mbps=50.0)
        assert report.per_flow_mbps["mptcp"] == pytest.approx(20.0)
        assert report.per_flow_mbps["tcp"] == pytest.approx(30.0)
        assert report.jain_index == pytest.approx(jains_index([20.0, 30.0]))
        assert report.shares["tcp"] == pytest.approx(0.6)
        assert report.mptcp_tcp_ratio == pytest.approx(20.0 / 30.0)
        assert report.aggregate_mbps == pytest.approx(50.0)
        assert report.bottleneck_utilization == pytest.approx(1.0)
        assert report.settle_times["mptcp"] == pytest.approx(0.3)

    def test_no_bottleneck_capacity(self):
        report = analyze_fairness(
            {"a": make_series([5.0] * 4)}, {"a": "mptcp"}
        )
        assert report.bottleneck_capacity_mbps is None
        assert report.bottleneck_utilization is None
        assert report.mptcp_tcp_ratio is None

    def test_as_dict_round_trips(self):
        report = analyze_fairness(
            {"a": make_series([5.0] * 4), "b": make_series([5.0] * 4)},
            {"a": "mptcp", "b": "tcp"},
            bottleneck_capacity_mbps=20.0,
        )
        payload = report.as_dict()
        assert payload["jain_index"] == pytest.approx(1.0)
        assert payload["mptcp_tcp_ratio"] == pytest.approx(1.0)
        assert payload["bottleneck_utilization"] == pytest.approx(0.5)
        assert set(payload["per_flow_mbps"]) == {"a", "b"}
