"""Compiled-kernel facade, equivalence and stress tests.

Three layers of guarantees:

* the ``repro.kernel`` facade honours ``REPRO_KERNEL`` / ``override`` and
  fails loudly when a hard-pinned compiled kernel is unavailable;
* ``KernelSim`` is a drop-in :class:`~repro.netsim.engine.Simulator`
  (scheduling, cancellation, until-bounded runs, event accounting);
* the whole-window native bypass (:mod:`repro.kernel.pipeline`) leaves the
  network in *exactly* the state the Python event loop would have produced
  -- checked field by field, including the engine free list, the packet
  pool interplay across compiled/fallback window boundaries, and
  double-release safety of packets rebuilt by the write-back.

Compiled-only tests skip (never silently pass on the fallback) when the
extension cannot be built.
"""

from __future__ import annotations

import pytest

from repro import kernel
from repro.netsim import packet as packet_mod
from repro.netsim.engine import Simulator, make_simulator
from repro.netsim.network import Network
from repro.netsim.topology import Topology
from repro.tcp.connection import TcpConnection

compiled_ok, compiled_reason = kernel.compiled_available()
needs_compiled = pytest.mark.skipif(
    not compiled_ok, reason=f"compiled kernel unavailable: {compiled_reason}"
)


def micro_network(sim=None) -> Network:
    """The bench micro-scenario: s -- r -- d, 100 Mbps, 1 ms, qcap 100."""
    topology = Topology("micro")
    topology.add_host("s")
    topology.add_host("d")
    topology.add_router("r")
    topology.add_link("s", "r", 100.0, 0.001, 100)
    topology.add_link("r", "d", 100.0, 0.001, 100)
    network = Network(topology, sim=sim)
    network.install_path(["s", "r", "d"], tag=1, as_default=True)
    return network


def run_micro(mode: str, *, cc: str = "cubic", duration: float = 1.0,
              windows: int = 1, pin_sim: bool = True) -> dict:
    """Run the micro-scenario under ``mode`` and capture full state.

    ``pin_sim`` forces a Python :class:`Simulator` even in compiled mode so
    every observable (including the engine free list) is comparable; the
    compiled bypass accepts it.  With ``windows > 1`` only the first window
    starts quiescent -- later windows exercise the mid-flight Python
    fallback against state written back by the compiled kernel.
    """
    with kernel.override(mode):
        network = micro_network(sim=Simulator() if pin_sim else None)
        capture = network.attach_capture("d", data_only=False)
        # Pin flow_id: it is drawn from a process-global counter, so two
        # runs in one process would differ on an id that is not kernel state.
        connection = TcpConnection(network, "s", "d", cc=cc, tag=1, flow_id=7)
        connection.start(0.0)
        for _ in range(windows):
            network.run(duration / windows)
    return snapshot(network, connection, capture)


def packet_fields(p) -> list:
    # packet_id is deliberately excluded: absolute ids depend on how many
    # packets earlier tests acquired from the process-global counter.
    return [p.src, p.dst, p.size, p.tag, p.flow_id, p.subflow_id, p.seq,
            p.payload_len, p.is_ack, p.ack, p.dsn, p.dack,
            p.is_retransmission, list(map(list, p.sack_blocks)), p.ts_echo,
            p.created_at, p.enqueued_at, p.hops]


def snapshot(network: Network, connection: TcpConnection, capture) -> dict:
    """Every observable of the micro-scenario, pool and heap included."""
    sim = network.sim
    snd, rcv = connection.sender, connection.receiver
    state = {
        "sim": {
            "now": sim.now,
            "seq": sim._seq,
            "processed": sim.events_processed,
            "pending": sim.pending_events,
            "free_list": sim.free_list_size,
        },
        "sender": {
            "snd_una": snd.snd_una, "snd_nxt": snd.snd_nxt,
            "segments": [[g.seq, g.length, g.dsn, g.sent_at, g.retransmitted,
                          g.sacked, g.lost, g.lost_pending, g.retx_in_recovery]
                         for g in snd._seg_queue],
            "sacked": snd._sacked_bytes, "lostp": snd._lost_pending_bytes,
            "dupacks": snd._dupacks, "in_rec": snd._in_fast_recovery,
            "recover": snd._recover, "backoff": snd._rto_backoff,
            "rto_deadline": snd._rto_deadline, "rto_fire_at": snd._rto_fire_at,
            "rto_event": None if snd._rto_event is None else "live",
            "stats": [snd.stats.segments_sent, snd.stats.bytes_sent,
                      snd.stats.bytes_acked, snd.stats.retransmissions,
                      snd.stats.fast_retransmits, snd.stats.timeouts,
                      snd.stats.dupacks],
            "rtt": [snd.rtt.srtt, snd.rtt.rttvar, snd.rtt.min_rtt,
                    snd.rtt.latest_rtt, snd.rtt.samples, snd.rtt._rto],
            "cc": [snd.cc.cwnd, repr(snd.cc.ssthresh), snd.cc.srtt,
                   snd.cc.losses, snd.cc.timeouts, snd.cc.acked_bytes_total],
            "cubic": ([snd.cc._w_max, snd.cc._k, snd.cc._epoch_start,
                       snd.cc._w_est, snd.cc._acks_in_epoch, snd.cc._min_rtt]
                      if hasattr(snd.cc, "_w_max") else None),
            "prov": [snd.data_provider.offset, snd.data_provider.acked_bytes,
                     snd.data_provider.last_ack_time],
        },
        "receiver": {
            "rcv_nxt": rcv.rcv_nxt, "last_dack": rcv._last_dack,
            "ooo": sorted([k, v[0], v[1]] for k, v in rcv._out_of_order.items()),
            "stats": [rcv.stats.segments_received, rcv.stats.bytes_received,
                      rcv.stats.duplicates, rcv.stats.out_of_order,
                      rcv.stats.acks_sent],
        },
        "links": {
            f"{a}->{b}": {
                "busy_until": link._busy_until, "serving": link._serving,
                "serve_at": link._serve_at,
                "stats": [link.stats.packets_sent, link.stats.bytes_sent,
                          link.stats.packets_dropped, link.stats.busy_time],
                "qstats": link.queue.stats.as_dict(),
                "qbytes": link.queue._bytes,
                "queue": [packet_fields(p) for p in link.queue._queue],
                "in_flight": [packet_fields(p) for p in link._in_flight],
            }
            for (a, b), link in network.links.items()
        },
        "nodes": {
            name: {
                "stats": [node.stats.received, node.stats.forwarded,
                          node.stats.delivered, node.stats.routing_drops],
                "hop_cache": sorted(
                    [str(k), v.name] for k, v in (node._hop_cache or {}).items()
                ),
                "hop_version": node._hop_version,
            }
            for name, node in network.nodes.items()
        },
        "capture": [
            [r.time, r.size, r.payload_len, r.tag, r.flow_id, r.subflow_id,
             r.is_ack, r.is_retransmission, r.seq, r.dsn]
            for r in capture.records
        ],
    }
    entries = (sim._export_entries() if hasattr(sim, "_export_entries")
               else sim._heap)
    state["heap"] = sorted(
        [t, s, getattr(cb, "__qualname__", None),
         getattr(getattr(cb, "__self__", None), "name", None)]
        for t, s, cb, _args in entries
    )
    return state


class TestKernelFacade:
    def test_override_python_forces_python(self):
        with kernel.override("python"):
            assert kernel.active_kernel() == "python"
            assert kernel.compiled_module() is None
            assert isinstance(make_simulator(), Simulator)

    def test_override_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            with kernel.override("fast"):
                pass  # pragma: no cover

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(kernel.KERNEL_ENV, "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            kernel.kernel_info()

    def test_kernel_info_shape(self):
        info = kernel.kernel_info()
        assert set(info) == {"mode", "kernel", "compiled_reason", "extension"}
        assert info["kernel"] in ("compiled", "python")

    def test_python_mode_reports_disabled(self):
        with kernel.override("python"):
            info = kernel.kernel_info()
        assert info["kernel"] == "python"
        assert info["extension"] is None

    @needs_compiled
    def test_auto_and_compiled_use_the_extension(self):
        with kernel.override("compiled"):
            assert kernel.active_kernel() == "compiled"
            sim = make_simulator()
        assert type(sim).__name__ == "KernelSim"


class TestKernelSimSemantics:
    """KernelSim must behave exactly like the Python Simulator."""

    pytestmark = needs_compiled

    def make(self):
        with kernel.override("compiled"):
            return make_simulator()

    def test_ordering_and_accounting_match_python(self):
        order_c, order_p = [], []
        for sim, order in ((self.make(), order_c), (Simulator(), order_p)):
            sim.schedule_fast(0.002, order.append, ("late", sim.now))
            sim.schedule(0.001, lambda o=order, s=sim: o.append(("timer", s.now)))
            sim.schedule_fast(0.001, lambda o=order, s=sim: o.append(("fast", s.now)))
            handle = sim.schedule(0.0015, order.append, ("cancelled",))
            handle.cancel()
            sim.run()
            assert sim.pending_events == 0
        assert order_c == order_p
        # Cancelled entries are drained, not fired, but still pass through
        # the loop -- both kernels count processed events identically.

    def test_until_bounded_run_advances_to_horizon(self):
        sim = self.make()
        fired = []
        sim.schedule_fast(0.5, fired.append, 1)
        assert sim.run(until=0.25) == 0.25
        assert sim.now == 0.25 and fired == []
        assert sim.run(until=1.0) == 1.0
        assert fired == [1] and sim.now == 1.0

    def test_events_processed_counts_fired_events(self):
        sim = self.make()
        for i in range(100):
            sim.schedule_fast(i * 0.001, (lambda: None))
        sim.run()
        assert sim.events_processed == 100

    def test_cancel_is_idempotent_and_stops_delivery(self):
        sim = self.make()
        fired = []
        handle = sim.schedule(0.01, fired.append, 1)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert fired == []

    def test_free_list_stress_many_cancelled_chains(self):
        """Thousands of schedule/cancel cycles: nothing leaks or corrupts."""
        sim = self.make()
        fired = []
        handles = [sim.schedule(0.001 * i, fired.append, i) for i in range(5000)]
        for handle in handles[::2]:
            handle.cancel()
        sim.run()
        assert fired == list(range(1, 5000, 2))
        assert sim.pending_events == 0
        # KernelSim recycles storage natively; the Python-visible free list
        # is defined to be empty.
        assert sim.free_list_size == 0


@needs_compiled
class TestCompiledBypassEquivalence:
    """The native whole-window bypass must be byte-identical to Python.

    Every case pins a Python ``Simulator`` so the write-back path (heap,
    event free list, packet pool) is fully observable and comparable.
    """

    @pytest.mark.parametrize("cc", ["cubic", "reno"])
    def test_full_state_identical_after_one_window(self, cc):
        assert run_micro("compiled", cc=cc) == run_micro("python", cc=cc)

    def test_multi_window_compiled_plus_fallback_identical(self):
        # Window 1 runs natively; windows 2..4 start mid-flight and fall
        # back to the Python loop over written-back state -- the free list
        # and packet pool must survive the round trip exactly.
        compiled = run_micro("compiled", windows=4)
        python = run_micro("python", windows=4)
        assert compiled == python
        assert compiled["sim"]["free_list"] == python["sim"]["free_list"]

    def test_kernel_sim_window_matches_python(self):
        # Unpinned: the compiled run drives a KernelSim end to end.  The
        # engine free list is the one defined observable difference.
        compiled = run_micro("compiled", pin_sim=False)
        python = run_micro("python", pin_sim=False)
        compiled["sim"]["free_list"] = python["sim"]["free_list"] = None
        assert compiled == python

    def test_bypass_refuses_mid_flight_windows(self):
        from repro.kernel import maybe_run_network

        with kernel.override("compiled"):
            network = micro_network(sim=Simulator())
            connection = TcpConnection(network, "s", "d", cc="cubic", tag=1)
            connection.start(0.0)
            network.run(0.5)
            # Mid-flight state (segments in flight, pending deliveries) is
            # not expressible as a quiescent Scene: the bypass must decline.
            assert maybe_run_network(network, 1.0) is None


@needs_compiled
class TestPacketPoolUnderCompiledKernel:
    """Packet-pool invariants across the compiled write-back."""

    def run_window(self, duration=0.2):
        with kernel.override("compiled"):
            network = micro_network(sim=Simulator())
            connection = TcpConnection(network, "s", "d", cc="cubic", tag=1)
            connection.start(0.0)
            network.run(duration)
        return network

    def in_flight_packets(self, network):
        packets = []
        for link in network.links.values():
            packets.extend(link._in_flight)
            packets.extend(link.queue._queue)
        return packets

    def test_written_back_packets_double_release_harmless(self):
        network = self.run_window()
        packets = self.in_flight_packets(network)
        assert packets, "mid-transfer window must leave packets in flight"
        before = len(packet_mod._pool)
        for packet in packets:
            assert not packet._poolable  # rebuilt packets never enter the pool
            packet.release()
            packet.release()
        assert len(packet_mod._pool) == before
        assert not any(p in packets for p in packet_mod._pool)

    def test_pool_acquired_double_release_single_entry(self):
        with kernel.override("compiled"):
            packet = packet_mod.acquire_data(
                src="s", dst="d", size=1500, tag=1, flow_id=1, subflow_id=0,
                seq=0, payload_len=1440, dsn=0, is_retransmission=False,
                created_at=0.0,
            )
            packet.release()
            first = len(packet_mod._pool)
            packet.release()
        assert len(packet_mod._pool) == first

    def test_packet_counter_advances_past_written_back_ids(self):
        # New ids after a compiled window must never collide with the ids
        # assigned to written-back in-flight packets.
        network = self.run_window()
        existing = {p.packet_id for p in self.in_flight_packets(network)}
        fresh = packet_mod.Packet(src="s", dst="d", size=40, tag=1)
        assert fresh.packet_id not in existing
        assert fresh.packet_id > max(existing)
