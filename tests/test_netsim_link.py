"""Link model: serialisation delay, propagation, queueing and drops."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.units import mbps, transmission_time


class RecordingNode:
    """Minimal node double that records deliveries."""

    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.received = []

    def receive(self, packet, link=None):
        self.received.append((self.sim.now, packet))


@pytest.fixture
def link_setup():
    sim = Simulator()
    src = RecordingNode("a", sim)
    dst = RecordingNode("b", sim)
    link = Link(sim, src, dst, rate_bps=mbps(10), delay=0.005, queue=DropTailQueue(4))
    return sim, src, dst, link


class TestLinkDelivery:
    def test_delivery_time_is_serialisation_plus_propagation(self, link_setup):
        sim, _, dst, link = link_setup
        packet = Packet("a", "b", 1500)
        link.send(packet)
        sim.run()
        expected = transmission_time(1500, mbps(10)) + 0.005
        assert dst.received[0][0] == pytest.approx(expected)

    def test_hop_count_incremented(self, link_setup):
        sim, _, dst, link = link_setup
        packet = Packet("a", "b", 1500)
        link.send(packet)
        sim.run()
        assert dst.received[0][1].hops == 1

    def test_back_to_back_packets_are_serialised(self, link_setup):
        sim, _, dst, link = link_setup
        link.send(Packet("a", "b", 1500))
        link.send(Packet("a", "b", 1500))
        sim.run()
        tx = transmission_time(1500, mbps(10))
        assert dst.received[0][0] == pytest.approx(tx + 0.005)
        assert dst.received[1][0] == pytest.approx(2 * tx + 0.005)

    def test_all_queued_packets_eventually_delivered(self, link_setup):
        sim, _, dst, link = link_setup
        for _ in range(5):  # 1 transmitting + 4 queued = capacity
            link.send(Packet("a", "b", 1500))
        sim.run()
        assert len(dst.received) == 5

    def test_zero_delay_link(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(10), delay=0.0)
        link.send(Packet("a", "b", 1000))
        sim.run()
        assert dst.received[0][0] == pytest.approx(transmission_time(1000, mbps(10)))


class TestLinkDrops:
    def test_drops_once_queue_full(self, link_setup):
        sim, _, dst, link = link_setup
        # 1 in service + 4 queued fit; the rest are dropped.
        results = [link.send(Packet("a", "b", 1500)) for _ in range(8)]
        assert results.count(False) == 3
        assert link.drops == 3
        sim.run()
        assert len(dst.received) == 5

    def test_stats_track_sent_bytes(self, link_setup):
        sim, _, _, link = link_setup
        link.send(Packet("a", "b", 1500))
        link.send(Packet("a", "b", 500))
        sim.run()
        assert link.stats.packets_sent == 2
        assert link.stats.bytes_sent == 2000


class TestLinkUtilization:
    def test_utilization_of_saturated_link(self):
        sim = Simulator()
        src, dst = RecordingNode("a", sim), RecordingNode("b", sim)
        link = Link(sim, src, dst, rate_bps=mbps(10), delay=0.0, queue=DropTailQueue(1000))
        # Offer exactly 1 second worth of traffic.
        packet_count = int(mbps(10) / (1500 * 8))
        for _ in range(packet_count):
            link.send(Packet("a", "b", 1500))
        sim.run()
        assert link.stats.utilization(link.rate_bps, 1.0) == pytest.approx(
            packet_count * 1500 * 8 / mbps(10), rel=1e-6
        )

    def test_utilization_clamped_to_one(self, link_setup):
        _, _, _, link = link_setup
        # 10 seconds worth of bytes offered against a 1 second duration.
        link.stats.bytes_sent = int(link.rate_bps * 10 / 8)
        assert link.stats.utilization(link.rate_bps, 1.0) == 1.0

    def test_zero_duration_utilization(self, link_setup):
        _, _, _, link = link_setup
        assert link.stats.utilization(link.rate_bps, 0.0) == 0.0


class TestLinkValidation:
    def test_rate_must_be_positive(self):
        sim = Simulator()
        a, b = RecordingNode("a", sim), RecordingNode("b", sim)
        with pytest.raises(ValueError):
            Link(sim, a, b, rate_bps=0, delay=0.001)

    def test_delay_cannot_be_negative(self):
        sim = Simulator()
        a, b = RecordingNode("a", sim), RecordingNode("b", sim)
        with pytest.raises(ValueError):
            Link(sim, a, b, rate_bps=mbps(1), delay=-0.001)

    def test_default_name(self):
        sim = Simulator()
        a, b = RecordingNode("a", sim), RecordingNode("b", sim)
        assert Link(sim, a, b, rate_bps=mbps(1), delay=0.0).name == "a->b"
