"""Convergence metrics, flow statistics and report formatting."""

import pytest

from repro.measure.convergence import (
    analyze_convergence,
    stability_coefficient,
    sustained_time_to_fraction,
    time_to_fraction,
)
from repro.measure.report import comparison_row, format_comparison, format_table
from repro.measure.sampling import TimeSeries


def ramp_series(values, interval=0.1):
    return TimeSeries(
        times=[interval * (i + 1) for i in range(len(values))],
        values=list(values),
        interval=interval,
    )


class TestTimeToFraction:
    def test_simple_threshold_crossing(self):
        series = ramp_series([10, 40, 70, 88, 89, 90])
        assert time_to_fraction(series, optimum=90, fraction=0.95) == pytest.approx(0.4)

    def test_never_reaching_returns_none(self):
        series = ramp_series([10, 20, 30])
        assert time_to_fraction(series, optimum=90) is None

    def test_zero_optimum_returns_none(self):
        assert time_to_fraction(ramp_series([1, 2]), optimum=0) is None

    def test_sustained_requires_hold(self):
        # A single spike above the threshold must not count as convergence.
        series = ramp_series([10, 90, 10, 10, 88, 89, 90, 90])
        spike_time = time_to_fraction(series, 90, 0.95)
        sustained = sustained_time_to_fraction(series, 90, 0.95, hold=3)
        assert spike_time == pytest.approx(0.2)
        assert sustained == pytest.approx(0.7)

    def test_sustained_none_when_never_held(self):
        series = ramp_series([90, 10, 90, 10, 90, 10])
        assert sustained_time_to_fraction(series, 90, 0.95, hold=3) is None


class TestStability:
    def test_constant_tail_has_zero_cv(self):
        series = ramp_series([10, 50, 90, 90, 90, 90])
        assert stability_coefficient(series, tail_fraction=0.5) == pytest.approx(0.0)

    def test_oscillating_tail_has_positive_cv(self):
        series = ramp_series([90, 90, 90, 60, 90, 60])
        assert stability_coefficient(series, tail_fraction=0.5) > 0.1

    def test_empty_series(self):
        assert stability_coefficient(TimeSeries()) == 0.0


class TestAnalyzeConvergence:
    def test_converged_run(self):
        series = ramp_series([20, 60, 86, 88, 90, 89, 90, 90])
        report = analyze_convergence(series, optimum=90.0, fraction=0.95)
        assert report.reached_optimum
        assert report.time_to_optimum is not None
        assert report.utilization_of_optimum > 0.95
        assert report.achieved_peak == 90.0

    def test_non_converged_run(self):
        series = ramp_series([20, 40, 60, 62, 61, 60])
        report = analyze_convergence(series, optimum=90.0)
        assert not report.reached_optimum
        assert report.time_to_optimum is None
        assert report.utilization_of_optimum < 0.8

    def test_as_dict_round_trips(self):
        series = ramp_series([50, 90, 90, 90])
        data = analyze_convergence(series, optimum=90.0).as_dict()
        assert data["reached_optimum"] is True
        assert data["optimum_mbps"] == 90.0


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["cubic", 90.0], ["lia", 82.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "cubic" in lines[2]
        assert "82.25" in lines[3] or "82.2" in lines[3]

    def test_format_table_handles_none(self):
        text = format_table(["a"], [[None]])
        assert "-" in text

    def test_comparison_rows(self):
        rows = [
            comparison_row("FIG1-LP", "optimal total (Mbps)", 90, 90.0),
            comparison_row("RES-CC", "LIA reaches optimum", "no", "no", note="matches"),
        ]
        text = format_comparison(rows)
        assert "FIG1-LP" in text
        assert "matches" in text
