"""Unit conversions and protocol constants."""

import pytest

from repro import units


class TestRateConversions:
    def test_mbps_to_bps(self):
        assert units.mbps(100) == 100_000_000.0

    def test_to_mbps_roundtrip(self):
        assert units.to_mbps(units.mbps(42.5)) == pytest.approx(42.5)

    def test_kbps(self):
        assert units.kbps(500) == 500_000.0

    def test_gbps(self):
        assert units.gbps(1) == 1_000_000_000.0


class TestTimeConversions:
    def test_milliseconds(self):
        assert units.milliseconds(100) == pytest.approx(0.1)

    def test_microseconds(self):
        assert units.microseconds(250) == pytest.approx(0.00025)

    def test_to_milliseconds_roundtrip(self):
        assert units.to_milliseconds(units.milliseconds(7.5)) == pytest.approx(7.5)


class TestDataConversions:
    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(1) == 8

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(units.bytes_to_bits(1500)) == pytest.approx(1500)


class TestTransmissionTime:
    def test_transmission_time_of_a_packet(self):
        # 1500 bytes on a 100 Mbps link take 120 microseconds.
        assert units.transmission_time(1500, units.mbps(100)) == pytest.approx(120e-6)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time(1500, 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time(1500, -1)


class TestThroughput:
    def test_throughput_mbps(self):
        # 12.5 MB in one second is 100 Mbps.
        assert units.throughput_mbps(12_500_000, 1.0) == pytest.approx(100.0)

    def test_zero_duration_is_zero(self):
        assert units.throughput_mbps(1000, 0.0) == 0.0

    def test_negative_duration_is_zero(self):
        assert units.throughput_mbps(1000, -1.0) == 0.0


class TestBandwidthDelayProduct:
    def test_bdp(self):
        # 100 Mbps * 10 ms = 125000 bytes.
        assert units.bandwidth_delay_product(units.mbps(100), 0.01) == 125_000

    def test_bdp_zero_rtt(self):
        assert units.bandwidth_delay_product(units.mbps(100), 0.0) == 0


class TestConstants:
    def test_mss_smaller_than_typical_mtu(self):
        assert 0 < units.DEFAULT_MSS <= 1460

    def test_header_and_ack_sizes_positive(self):
        assert units.HEADER_SIZE > 0
        assert units.ACK_SIZE > 0

    def test_default_capacity_matches_paper(self):
        # "the capacities are ... the default 100"
        assert units.DEFAULT_CAPACITY_MBPS == 100.0
