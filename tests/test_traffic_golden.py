"""Golden-equivalence tests for the traffic-source move under ``repro.workload``.

The iperf / UDP / on-off sources migrated from ``repro.traffic`` to
``repro.workload.sources`` (the old modules are re-export shims), and the
TCP/MPTCP transports grew transfer-queue hooks for the workload driver.
``tests/data/golden_pipeline.json`` pinned the observable output of three
traffic-heavy scenarios *before* that refactor; these tests require the
refactored tree to reproduce it bit-identically.
"""

import pytest

from repro.traffic import IperfClient, OnOffSource, UdpConstantBitRate, UdpSink
from repro.workload import sources

from tests import golden_pipeline


class TestTrafficShims:
    """The legacy ``repro.traffic`` names must stay importable and identical."""

    def test_traffic_names_are_the_workload_sources(self):
        assert IperfClient is sources.IperfClient
        assert UdpConstantBitRate is sources.UdpConstantBitRate
        assert UdpSink is sources.UdpSink
        assert OnOffSource is sources.OnOffSource

    def test_submodule_shims_reexport(self):
        from repro.traffic import iperf, onoff, udp

        assert iperf.IperfClient is sources.IperfClient
        assert iperf.IperfReport is sources.IperfReport
        assert udp.UdpConstantBitRate is sources.UdpConstantBitRate
        assert onoff.OnOffSource is sources.OnOffSource


@pytest.mark.usefixtures("each_kernel")
class TestTrafficGoldenEquivalence:
    """Every pinned traffic scenario must reproduce its pre-refactor output.

    Parametrized over both kernels (``each_kernel``) so the compiled event
    loop is pinned to the same golden bytes as the pure-Python reference.
    """

    @classmethod
    def setup_class(cls):
        cls.golden = golden_pipeline.load_golden()

    def test_iperf_paper_byte_identical(self):
        fresh = golden_pipeline.iperf_case()
        assert fresh == self.golden["single/iperf_paper"]

    def test_cross_traffic_perturbation_byte_identical(self):
        from repro.experiments.scenarios import cross_traffic_perturbation

        fresh = golden_pipeline.multi_flow_case(
            cross_traffic_perturbation(
                duration=golden_pipeline.MULTI_FLOW_DURATION,
                sampling_interval=golden_pipeline.SAMPLING_INTERVAL,
            )
        )
        assert fresh == self.golden["multi/cross_traffic_perturbation"]

    def test_udp_cbr_mix_byte_identical(self):
        fresh = golden_pipeline.multi_flow_case(golden_pipeline.udp_cbr_mix_config())
        assert fresh == self.golden["multi/udp_cbr_mix"]
