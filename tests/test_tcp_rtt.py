"""RTT estimation and RTO computation (RFC 6298)."""

import pytest

from repro.tcp.rtt import RttEstimator


class TestFirstSample:
    def test_srtt_equals_first_sample(self):
        est = RttEstimator()
        est.update(0.02)
        assert est.srtt == pytest.approx(0.02)
        assert est.rttvar == pytest.approx(0.01)

    def test_rto_before_any_sample_is_initial(self):
        est = RttEstimator(initial_rto=0.3)
        assert est.rto == 0.3

    def test_smoothed_default_before_sample(self):
        est = RttEstimator()
        assert est.smoothed(default=0.123) == 0.123


class TestSmoothing:
    def test_constant_samples_converge_to_sample(self):
        est = RttEstimator()
        for _ in range(50):
            est.update(0.01)
        assert est.srtt == pytest.approx(0.01)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_srtt_moves_towards_new_value(self):
        est = RttEstimator()
        est.update(0.01)
        est.update(0.02)
        assert 0.01 < est.srtt < 0.02

    def test_min_rtt_tracks_minimum(self):
        est = RttEstimator()
        for sample in (0.03, 0.01, 0.02):
            est.update(sample)
        assert est.min_rtt == pytest.approx(0.01)

    def test_latest_rtt(self):
        est = RttEstimator()
        est.update(0.05)
        est.update(0.02)
        assert est.latest_rtt == pytest.approx(0.02)

    def test_sample_count(self):
        est = RttEstimator()
        for _ in range(7):
            est.update(0.01)
        assert est.samples == 7


class TestRto:
    def test_rto_is_srtt_plus_four_rttvar(self):
        est = RttEstimator(min_rto=0.0)
        est.update(0.1)
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_rto_clamped_to_minimum(self):
        est = RttEstimator(min_rto=0.05)
        for _ in range(100):
            est.update(0.001)
        assert est.rto == 0.05

    def test_rto_clamped_to_maximum(self):
        est = RttEstimator(max_rto=1.0)
        est.update(10.0)
        assert est.rto == 1.0

    def test_rto_grows_with_variance(self):
        stable = RttEstimator(min_rto=0.0)
        jittery = RttEstimator(min_rto=0.0)
        for i in range(20):
            stable.update(0.02)
            jittery.update(0.02 if i % 2 == 0 else 0.06)
        assert jittery.rto > stable.rto


class TestValidation:
    def test_zero_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(0.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-0.01)
