"""Fluid models of uncoupled / LIA / OLIA congestion control."""

import pytest

from repro.errors import ModelError
from repro.model.bottleneck import build_constraints
from repro.model.fluid import FluidModel, compare_equilibria
from repro.topologies.generators import disjoint_paths
from repro.topologies.paper import build_paper_topology, paper_paths


@pytest.fixture
def paper_system():
    return build_constraints(build_paper_topology(), paper_paths(), include_private_links=False)


class TestMeanRatesWindow:
    def test_zero_last_fraction_degrades_to_final_row(self, paper_system):
        import warnings

        result = FluidModel(paper_system).run("uncoupled", duration=2.0)
        with warnings.catch_warnings():
            # Regression: the window used to be empty ("Mean of empty slice"
            # under -W error, NaN otherwise); it must clamp to the last row.
            warnings.simplefilter("error")
            rates = result.mean_rates(0.0)
            total = result.mean_total(0.0)
        assert rates == pytest.approx(result.final_rates)
        assert total == pytest.approx(result.final_total)

    def test_tiny_last_fraction_never_yields_nan(self, paper_system):
        import math
        import warnings

        result = FluidModel(paper_system).run("lia", duration=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for fraction in (0.0, 1e-9, 0.001, 0.25, 1.0):
                for rate in result.mean_rates(fraction):
                    assert math.isfinite(rate)

    def test_full_fraction_is_whole_trajectory_mean(self, paper_system):
        import numpy as np

        result = FluidModel(paper_system).run("uncoupled", duration=2.0)
        expected = np.asarray(result.rates_mbps).mean(axis=0)
        assert result.mean_rates(1.0) == pytest.approx(list(expected))


class TestFluidModel:
    def test_rates_stay_feasible_up_to_transients(self, paper_system):
        model = FluidModel(paper_system)
        result = model.run("uncoupled", duration=10.0)
        # The loss signal only kicks in above capacity, so allow a small excursion.
        for rates in result.rates_mbps[-20:]:
            assert sum(rates) <= 95.0

    def test_uncoupled_approaches_high_utilization(self, paper_system):
        result = FluidModel(paper_system).run("uncoupled", duration=20.0)
        assert result.mean_total() > 70.0

    def test_olia_equilibrium_closest_to_optimum(self, paper_system):
        # OLIA was designed to be Pareto-optimal in the fluid limit; its
        # equilibrium should dominate plain per-path AIMD on this topology.
        results = compare_equilibria(paper_system, ("uncoupled", "olia"), duration=20.0)
        assert results["olia"].mean_total() >= results["uncoupled"].mean_total() - 1.0
        assert results["olia"].mean_total() <= 91.0

    def test_olia_runs_and_produces_positive_rates(self, paper_system):
        result = FluidModel(paper_system).run("olia", duration=10.0)
        assert all(rate >= 0 for rate in result.final_rates)
        assert result.final_total > 10.0

    def test_disjoint_paths_fill_their_capacity(self):
        topology, paths = disjoint_paths((30.0, 50.0))
        system = build_constraints(topology, paths)
        result = FluidModel(system).run("uncoupled", duration=20.0)
        assert result.mean_total() > 0.75 * 80.0

    def test_unknown_algorithm_rejected(self, paper_system):
        with pytest.raises(ModelError):
            FluidModel(paper_system).run("bbr")

    def test_rtt_length_validated(self, paper_system):
        with pytest.raises(ModelError):
            FluidModel(paper_system, rtts=[0.01])

    def test_trajectory_is_recorded(self, paper_system):
        result = FluidModel(paper_system).run("lia", duration=5.0)
        assert len(result.times) == len(result.rates_mbps)
        assert len(result.times) > 10

    def test_mean_rates_shape(self, paper_system):
        result = FluidModel(paper_system).run("lia", duration=5.0)
        assert len(result.mean_rates()) == 3

    def test_compare_equilibria_keys(self, paper_system):
        results = compare_equilibria(paper_system, ("uncoupled", "lia", "olia"), duration=5.0)
        assert set(results) == {"uncoupled", "lia", "olia"}
