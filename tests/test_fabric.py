"""Fault-tolerant fabric: atomic appends, leases, retry/quarantine, merge."""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError, FabricError, LeaseError
from repro.experiments.campaign import (
    CampaignSpec,
    ResultStore,
    run_campaign,
)
from repro.experiments.chaos import ChaosSpec
from repro.experiments.fabric import (
    FabricConfig,
    LeaseManager,
    backoff_delay,
    merge_stores,
    run_campaign_fabric,
)
from repro.experiments.harness import run_scenarios_guarded


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="test",
        kind="single",
        scenarios=("paper",),
        congestion_controls=("cubic",),
        rate_scales=(1.0,),
        duration=0.3,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class FakeClock:
    """Injectable monotonic clock for deterministic lease tests."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------- atomic append
def _append_burst(path, worker, count):
    store = ResultStore(path)
    for i in range(count):
        store.append(
            {"key": f"{worker}-{i}", "status": "ok", "payload": "x" * 512}
        )


class TestAtomicAppend:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        """Regression: pre-fabric appends buffered through a text handle, so
        two processes appending at once could interleave partial lines."""
        path = tmp_path / "store.jsonl"
        workers, per_worker = 4, 25
        procs = []
        try:
            for w in range(workers):
                proc = multiprocessing.get_context().Process(
                    target=_append_burst, args=(str(path), f"w{w}", per_worker)
                )
                proc.start()
                procs.append(proc)
        except (PermissionError, OSError):
            # Restricted sandbox: threads still race on the same descriptor
            # pattern (one os.write per record on O_APPEND).
            procs = [
                threading.Thread(
                    target=_append_burst, args=(str(path), f"w{w}", per_worker)
                )
                for w in range(workers)
            ]
            for thread in procs:
                thread.start()
        for proc in procs:
            proc.join()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == workers * per_worker
        records = [json.loads(line) for line in lines]  # every line parses
        assert len({r["key"] for r in records}) == workers * per_worker
        assert path.read_bytes().endswith(b"\n")

    def test_append_heals_a_torn_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "abc", "status": "ok"})
        with path.open("ab") as handle:
            handle.write(b'{"key": "def", "status"')  # crash mid-append
        store.append({"key": "ghi", "status": "ok"})
        assert set(store.load()) == {"abc", "ghi"}
        # The fragment was isolated on its own line, not fused with the
        # healthy record that followed it.
        assert len(path.read_text(encoding="utf-8").splitlines()) == 3

    def test_ok_record_is_never_shadowed_by_a_later_failure(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "abc", "status": "ok", "summary": {}})
        store.append({"key": "abc", "status": "error", "error": "late racer"})
        assert store.load()["abc"]["status"] == "ok"

    def test_load_skips_lease_records(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"record_type": "lease", "key": "abc", "worker": "w1",
                      "op": "claim", "deadline": 123.0})
        store.append({"key": "abc", "status": "ok"})
        assert store.load()["abc"]["status"] == "ok"
        assert store.load_leases()["abc"]["worker"] == "w1"

    def test_load_leases_keeps_the_last_record_per_key(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        for op, worker in (("claim", "w1"), ("claim", "w2")):
            store.append({"record_type": "lease", "key": "abc",
                          "worker": worker, "op": op, "deadline": 1.0})
        assert store.load_leases()["abc"]["worker"] == "w2"


class TestStoreFormatCompatibility:
    def test_fault_free_run_keeps_the_prefabric_record_format(self, tmp_path):
        """Acceptance: fault-free stores stay byte-identical to the old
        format -- no attempts counters, worker ids or record types leak in."""
        path = tmp_path / "store.jsonl"
        run_campaign(small_spec(), path, max_workers=1)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["status"] == "ok"
        for fabric_field in ("attempts", "worker", "record_type"):
            assert fabric_field not in record
        assert lines[0] == json.dumps(record, sort_keys=True)

    def test_fault_free_fabric_result_records_use_the_same_format(self, tmp_path):
        path = tmp_path / "store.jsonl"
        run_campaign_fabric(
            small_spec(),
            path,
            fabric=FabricConfig(worker_id="w1", lease_ttl=60.0),
            max_workers=1,
        )
        lines = path.read_text(encoding="utf-8").splitlines()
        results = [
            json.loads(line)
            for line in lines
            if json.loads(line).get("record_type") != "lease"
        ]
        assert len(results) == 1
        assert results[0]["status"] == "ok"
        for fabric_field in ("attempts", "worker", "record_type"):
            assert fabric_field not in results[0]


# ---------------------------------------------------------------------- leases
class TestLeaseManager:
    def manager(self, tmp_path, worker="w1", ttl=30.0, clock=None):
        store = ResultStore(tmp_path / "store.jsonl")
        return LeaseManager(store, worker, ttl, clock=clock or FakeClock())

    def test_claim_wins_unleased_keys(self, tmp_path):
        leases = self.manager(tmp_path)
        assert leases.claim(["a", "b"]) == ["a", "b"]
        assert leases.held == {"a", "b"}
        assert set(leases.live_leases()) == {"a", "b"}

    def test_live_foreign_lease_blocks_claim(self, tmp_path):
        clock = FakeClock()
        first = self.manager(tmp_path, worker="w1", clock=clock)
        second = LeaseManager(first.store, "w2", 30.0, clock=clock)
        first.claim(["a"])
        assert second.claim(["a"]) == []
        assert second.held == set()

    def test_stale_lease_is_reclaimable(self, tmp_path):
        clock = FakeClock()
        first = self.manager(tmp_path, worker="w1", ttl=10.0, clock=clock)
        second = LeaseManager(first.store, "w2", 10.0, clock=clock)
        first.claim(["a"])
        clock.advance(11.0)  # w1 missed its renewals; the lease expired
        assert second.claim(["a"]) == ["a"]
        assert second.live_leases()["a"]["worker"] == "w2"

    def test_release_frees_the_key_immediately(self, tmp_path):
        clock = FakeClock()
        first = self.manager(tmp_path, worker="w1", clock=clock)
        second = LeaseManager(first.store, "w2", 30.0, clock=clock)
        first.claim(["a"])
        first.release(["a"])
        assert first.held == set()
        assert second.claim(["a"]) == ["a"]

    def test_renew_extends_the_deadline(self, tmp_path):
        clock = FakeClock()
        leases = self.manager(tmp_path, ttl=10.0, clock=clock)
        leases.claim(["a"])
        clock.advance(8.0)
        assert leases.renew(["a"]) == ["a"]
        clock.advance(8.0)  # 16s since claim, 8s since renewal: still live
        assert set(leases.live_leases()) == {"a"}

    def test_renewing_a_lost_lease_raises_when_strict(self, tmp_path):
        clock = FakeClock()
        first = self.manager(tmp_path, worker="w1", ttl=10.0, clock=clock)
        second = LeaseManager(first.store, "w2", 10.0, clock=clock)
        first.claim(["a"])
        clock.advance(11.0)
        second.claim(["a"])  # reclaims the stale lease
        with pytest.raises(LeaseError, match="lost the lease"):
            first.renew(["a"])
        assert first.renew(["a"], strict=False) == []
        assert "a" not in first.held

    def test_invalid_construction_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        with pytest.raises(LeaseError):
            LeaseManager(store, "w1", 0.0)
        with pytest.raises(LeaseError):
            LeaseManager(store, "", 30.0)


# --------------------------------------------------------------------- backoff
class TestBackoffDelay:
    def test_no_delay_without_base_or_attempts(self):
        assert backoff_delay(0, base=0.5, cap=30.0, jitter=0.5) == 0.0
        assert backoff_delay(3, base=0.0, cap=30.0, jitter=0.5) == 0.0

    def test_doubles_per_attempt_up_to_the_cap(self):
        delays = [
            backoff_delay(n, base=0.5, cap=4.0, jitter=0.0) for n in (1, 2, 3, 4, 5)
        ]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_bounded_and_deterministic(self):
        kwargs = dict(base=1.0, cap=30.0, jitter=0.5, seed=7, key="abc")
        first = backoff_delay(2, **kwargs)
        assert first == backoff_delay(2, **kwargs)
        assert 2.0 <= first <= 3.0  # un-jittered 2.0 stretched by at most 50%
        assert first != backoff_delay(2, base=1.0, cap=30.0, jitter=0.5,
                                      seed=7, key="other")


# -------------------------------------------------------------- retry/quarantine
def _always_fails(point):
    return {
        "key": point.key,
        "params": point.params,
        "status": "error",
        "error": "boom",
    }


class TestRetryAndQuarantine:
    def patch_executor(self, monkeypatch):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setattr(campaign_module, "_execute_point", _always_fails)

    def test_failures_quarantine_after_max_attempts(self, tmp_path, monkeypatch):
        """Regression: error records used to re-run on every invocation,
        forever; they now carry an attempts counter and quarantine."""
        self.patch_executor(monkeypatch)
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        for expected_attempts, expected_status in (
            (1, "error"),
            (2, "error"),
            (3, "quarantined"),
        ):
            result = run_campaign(spec, store, max_workers=1, max_attempts=3)
            assert result.executed == 1
            record = result.records[0]
            assert record["status"] == expected_status
            assert record["attempts"] == expected_attempts
        # Terminal: the fourth invocation runs nothing at all.
        final = run_campaign(spec, store, max_workers=1, max_attempts=3)
        assert (final.executed, final.skipped) == (0, 1)
        assert final.summary()["quarantined"] == 1
        assert final.quarantined_records and not final.error_records

    def test_quarantine_on_first_failure_when_max_attempts_is_one(
        self, tmp_path, monkeypatch
    ):
        self.patch_executor(monkeypatch)
        result = run_campaign(
            small_spec(), tmp_path / "s.jsonl", max_workers=1, max_attempts=1
        )
        assert result.records[0]["status"] == "quarantined"

    def test_attempts_exhausted_at_load_time_quarantines_in_the_store(
        self, tmp_path
    ):
        spec = small_spec()
        point = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(
            {"key": point.key, "params": point.params, "status": "error",
             "error": "boom", "attempts": 5}
        )
        result = run_campaign(spec, store.path, max_workers=1, max_attempts=3)
        assert result.executed == 0
        assert result.records[0]["status"] == "quarantined"
        assert store.load()[point.key]["status"] == "quarantined"

    def test_prefabric_error_records_count_as_one_attempt(self, tmp_path):
        spec = small_spec()
        point = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(  # no attempts field: written before the fabric existed
            {"key": point.key, "params": point.params, "status": "error",
             "error": "boom"}
        )
        result = run_campaign(spec, store.path, max_workers=1)
        assert result.executed == 1
        assert result.records[0]["status"] == "ok"

    def test_invalid_max_attempts_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec(), tmp_path / "s.jsonl", max_attempts=0)


# -------------------------------------------------------------------- watchdog
def _sleep_runner(seconds):
    time.sleep(seconds)
    return seconds


def _crash_runner(code):
    os._exit(code)


def _raise_runner(config):
    raise ValueError(f"bad config {config}")


class TestRunScenariosGuarded:
    def test_results_come_back_in_config_order(self):
        results = run_scenarios_guarded([0.2, 0.0, 0.1], runner=_sleep_runner)
        assert results == [0.2, 0.0, 0.1]

    def test_hung_point_is_killed_and_reported_via_on_timeout(self):
        started = time.monotonic()
        results = run_scenarios_guarded(
            [0.0, 30.0],
            runner=_sleep_runner,
            timeout=0.5,
            on_timeout=lambda config: ("timeout", config),
        )
        assert results == [0.0, ("timeout", 30.0)]
        assert time.monotonic() - started < 10.0  # nowhere near the 30s hang

    def test_crashed_worker_is_reported_via_on_crash(self):
        results = run_scenarios_guarded(
            [23],
            runner=_crash_runner,
            on_crash=lambda config, reason: ("crash", config, reason),
        )
        assert results[0][:2] == ("crash", 23)
        assert "exit code" in results[0][2]

    def test_raised_exception_routes_to_on_crash(self):
        results = run_scenarios_guarded(
            ["x"],
            runner=_raise_runner,
            on_crash=lambda config, reason: reason,
        )
        assert "bad config x" in results[0]

    def test_raised_exception_without_handler_raises(self):
        with pytest.raises(RuntimeError, match="bad config"):
            run_scenarios_guarded(["x"], runner=_raise_runner)

    def test_unpicklable_configs_fall_back_to_the_serial_runner(self):
        configs = [lambda: 1, lambda: 2]  # lambdas cannot cross processes
        results = run_scenarios_guarded(
            configs, runner=_sleep_runner, serial_runner=lambda config: config()
        )
        assert results == [1, 2]

    def test_serial_fallback_still_reports_over_budget_points(self):
        results = run_scenarios_guarded(
            [lambda: time.sleep(0.2) or "slow"],
            runner=_sleep_runner,
            serial_runner=lambda config: config(),
            timeout=0.05,
            on_timeout=lambda config: "timed-out",
        )
        assert results == ["timed-out"]

    def test_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            run_scenarios_guarded([1], runner=_sleep_runner, timeout=0.0,
                                  on_timeout=lambda c: None)
        with pytest.raises(ConfigurationError):
            run_scenarios_guarded([1], runner=_sleep_runner, timeout=1.0)

    def test_empty_configs(self):
        assert run_scenarios_guarded([], runner=_sleep_runner) == []


# ---------------------------------------------------------------------- fabric
class TestRunCampaignFabric:
    def test_fault_free_run_completes_and_resumes(self, tmp_path):
        spec = small_spec(congestion_controls=("cubic", "lia"))
        store = tmp_path / "store.jsonl"
        fabric = FabricConfig(worker_id="w1", lease_ttl=60.0)
        first = run_campaign_fabric(spec, store, fabric=fabric, max_workers=1)
        assert (first.executed, first.skipped, first.deferred) == (2, 0, 0)
        assert [r["status"] for r in first.records] == ["ok", "ok"]
        second = run_campaign_fabric(spec, store, fabric=fabric, max_workers=1)
        assert (second.executed, second.skipped) == (0, 2)

    def test_all_leases_released_after_a_clean_run(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        run_campaign_fabric(
            small_spec(),
            store,
            fabric=FabricConfig(worker_id="w1", lease_ttl=60.0),
            max_workers=1,
        )
        leases = LeaseManager(store, "probe", 60.0)
        assert leases.live_leases() == {}

    def test_single_pass_surfaces_the_failure_and_defers_the_retry(self, tmp_path):
        spec = small_spec(congestion_controls=("cubic", "lia"))
        store = tmp_path / "store.jsonl"
        chaos = ChaosSpec(error_points=(0,))
        fabric = FabricConfig(
            worker_id="w1", lease_ttl=60.0, max_rounds=1, backoff_base=0.0
        )
        first = run_campaign_fabric(
            spec, store, fabric=fabric, chaos=chaos, max_workers=1
        )
        assert first.deferred == 1
        assert len(first.error_records) == 1
        assert first.error_records[0]["attempts"] == 1
        assert first.summary()["deferred"] == 1
        # The next invocation picks the failed point back up (the fault fired
        # its one allotted attempt) and converges.
        second = run_campaign_fabric(
            spec, store, fabric=fabric, chaos=chaos, max_workers=1
        )
        assert second.deferred == 0
        assert [r["status"] for r in second.records] == ["ok", "ok"]

    def test_foreign_live_lease_defers_the_point(self, tmp_path):
        spec = small_spec(congestion_controls=("cubic", "lia"))
        store = ResultStore(tmp_path / "store.jsonl")
        points = spec.expand()
        foreign = LeaseManager(store, "other-worker", 300.0)
        assert foreign.claim([points[0].key]) == [points[0].key]
        result = run_campaign_fabric(
            spec,
            store,
            fabric=FabricConfig(worker_id="w1", lease_ttl=60.0, max_rounds=1),
            max_workers=1,
        )
        assert result.executed == 1
        assert result.deferred == 1
        done_keys = {r["key"] for r in result.records}
        assert points[0].key not in done_keys
        assert points[1].key in done_keys

    def test_invalid_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign_fabric(small_spec(), tmp_path / "s.jsonl", chunk_size=0)

    def test_fabric_config_validation(self):
        with pytest.raises(LeaseError):
            FabricConfig(lease_ttl=0.0)
        with pytest.raises(FabricError):
            FabricConfig(max_attempts=0)
        with pytest.raises(FabricError):
            FabricConfig(point_timeout=-1.0)
        with pytest.raises(FabricError):
            FabricConfig(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(FabricError):
            FabricConfig(max_rounds=0)


# ----------------------------------------------------------------------- merge
class TestMergeStores:
    def fill(self, path, records):
        store = ResultStore(path)
        for record in records:
            store.append(record)
        return path

    def test_completed_beats_quarantined_beats_retryable(self, tmp_path):
        one = self.fill(tmp_path / "one.jsonl", [
            {"key": "a", "status": "error", "error": "boom"},
            {"key": "b", "status": "quarantined", "attempts": 3},
            {"key": "c", "status": "timeout", "error": "slow"},
        ])
        two = self.fill(tmp_path / "two.jsonl", [
            {"key": "a", "status": "ok", "summary": {}},
            {"key": "b", "status": "error", "error": "boom"},
        ])
        dest = tmp_path / "merged.jsonl"
        report = merge_stores([one, two], dest)
        merged = ResultStore(dest).load()
        assert merged["a"]["status"] == "ok"
        assert merged["b"]["status"] == "quarantined"
        assert merged["c"]["status"] == "timeout"
        assert (report.keys, report.completed, report.quarantined,
                report.retryable) == (3, 1, 1, 1)

    def test_no_duplicate_keys_and_leases_dropped(self, tmp_path):
        one = self.fill(tmp_path / "one.jsonl", [
            {"record_type": "lease", "key": "a", "worker": "w1",
             "op": "claim", "deadline": 9.0},
            {"key": "a", "status": "ok", "summary": {"n": 1}},
        ])
        two = self.fill(tmp_path / "two.jsonl", [
            {"key": "a", "status": "ok", "summary": {"n": 2}},
        ])
        dest = tmp_path / "merged.jsonl"
        report = merge_stores([one, two], dest)
        lines = [json.loads(line) for line in dest.read_text().splitlines()]
        assert len(lines) == 1  # exactly one record per key survives
        assert lines[0]["summary"] == {"n": 2}  # equal rank: last writer wins
        assert report.dropped_leases == 1

    def test_merge_is_idempotent_and_compacts_in_place(self, tmp_path):
        source = self.fill(tmp_path / "one.jsonl", [
            {"key": "a", "status": "error", "error": "boom"},
            {"key": "a", "status": "ok", "summary": {}},
            {"record_type": "lease", "key": "a", "worker": "w1",
             "op": "release", "deadline": 0.0},
        ])
        merge_stores([source], source)  # dest may be one of the sources
        first_pass = source.read_bytes()
        merge_stores([source], source)
        assert source.read_bytes() == first_pass
        assert len(first_pass.decode().splitlines()) == 1

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(FabricError, match="missing store"):
            merge_stores([tmp_path / "nope.jsonl"], tmp_path / "out.jsonl")
        with pytest.raises(FabricError, match="at least one source"):
            merge_stores([], tmp_path / "out.jsonl")


# ------------------------------------------------------------------------- CLI
class TestFabricCli:
    def test_campaign_merge_subcommand(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "shard1.jsonl")
        store.append({"key": "a", "status": "ok", "summary": {}})
        dest = tmp_path / "merged.jsonl"
        code = cli_main(
            ["campaign", "merge", str(store.path), "--into", str(dest)]
        )
        assert code == 0
        assert "1 keys (1 completed" in capsys.readouterr().out
        assert dest.exists()

    def test_campaign_merge_json_output(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "shard1.jsonl")
        store.append({"key": "a", "status": "ok", "summary": {}})
        code = cli_main(
            ["campaign", "merge", str(store.path), "--into",
             str(tmp_path / "m.jsonl"), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["keys"] == 1 and payload["completed"] == 1

    def test_campaign_merge_without_sources_errors(self, tmp_path, capsys):
        assert cli_main(
            ["campaign", "merge", "--into", str(tmp_path / "m.jsonl")]
        ) == 2
        assert "at least one source" in capsys.readouterr().err

    def test_campaign_merge_missing_store_errors(self, tmp_path, capsys):
        assert cli_main(
            ["campaign", "merge", str(tmp_path / "nope.jsonl"),
             "--into", str(tmp_path / "m.jsonl")]
        ) == 2
        assert "missing store" in capsys.readouterr().err

    def test_worker_id_flag_routes_through_the_fabric(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setitem(
            campaign_module.CAMPAIGN_GRIDS, "paper_cc_rate",
            lambda **kw: small_spec(**kw),
        )
        store = tmp_path / "store.jsonl"
        code = cli_main(
            ["campaign", "paper_cc_rate", "--store", str(store),
             "--worker-id", "w1", "--no-plot"]
        )
        assert code == 0
        leases = ResultStore(store).load_leases()
        assert leases and all(
            lease["worker"] == "w1" for lease in leases.values()
        )

    def test_bad_chaos_entry_exits_2(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setitem(
            campaign_module.CAMPAIGN_GRIDS, "paper_cc_rate",
            lambda **kw: small_spec(**kw),
        )
        code = cli_main(
            ["campaign", "paper_cc_rate", "--store",
             str(tmp_path / "s.jsonl"), "--chaos", "explode=0", "--no-plot"]
        )
        assert code == 2
        assert "bad chaos entry" in capsys.readouterr().err
