"""Campaign subsystem: grid expansion, result store, resume and the CLI."""

import json
import pickle

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    CAMPAIGN_GRIDS,
    CampaignSpec,
    ResultStore,
    _execute_point,
    ecn_aqm_fairness_campaign,
    multiflow_fairness_campaign,
    paper_cc_rate_campaign,
    point_key,
    run_campaign,
)
from repro.experiments.multiflow import MultiFlowConfig


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="test",
        kind="single",
        scenarios=("paper",),
        congestion_controls=("cubic",),
        rate_scales=(1.0,),
        duration=0.5,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_expand_produces_full_product(self):
        spec = small_spec(
            congestion_controls=("cubic", "lia"), rate_scales=(0.5, 1.0, 2.0)
        )
        points = spec.expand()
        assert len(points) == spec.size == 6
        assert len({p.key for p in points}) == 6

    def test_points_are_picklable(self):
        for point in small_spec(path_managers=("default", "failover")).expand():
            pickle.dumps(point)

    def test_point_key_is_stable_and_parameter_sensitive(self):
        params = {"scenario": "paper", "rate_scale": 1.0}
        assert point_key(params) == point_key(dict(params))
        assert point_key(params) != point_key({**params, "rate_scale": 2.0})

    def test_same_grid_re_expands_to_same_keys(self):
        keys_a = [p.key for p in small_spec(congestion_controls=("cubic", "lia")).expand()]
        keys_b = [p.key for p in small_spec(congestion_controls=("cubic", "lia")).expand()]
        assert keys_a == keys_b

    def test_multiflow_kind_builds_multiflow_configs(self):
        spec = small_spec(
            kind="multiflow", scenarios=("mptcp_vs_tcp_shared_bottleneck",)
        )
        points = spec.expand()
        assert all(isinstance(p.config, MultiFlowConfig) for p in points)

    def test_rate_scale_scales_the_constraint_capacities(self):
        point = small_spec(rate_scales=(2.0,)).expand()[0]
        topology, _ = point.config.build_scenario()
        assert topology.capacity_of("s", "v1") == pytest.approx(80.0)

    def test_unknown_congestion_control_rejected_at_construction(self):
        # A typo'd controller must fail fast, not burn the whole grid's
        # runtime producing error records that defeat the resume property.
        with pytest.raises(ConfigurationError, match="unknown congestion control"):
            small_spec(congestion_controls=("cubicc",))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown single campaign scenario"):
            small_spec(scenarios=("nonsense",))

    def test_unknown_queue_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown queue discipline"):
            small_spec(queue_kinds=("pie",))

    def test_default_signal_axes_leave_keys_unchanged(self):
        # queue_kind/ecn only enter the content hash when non-None, so every
        # point key recorded by a pre-AQM campaign store stays addressable.
        base = [p.key for p in small_spec().expand()]
        explicit = [
            p.key
            for p in small_spec(queue_kinds=(None,), ecn_modes=(None,)).expand()
        ]
        assert base == explicit
        for point in small_spec().expand():
            assert "queue_kind" not in point.params
            assert "ecn" not in point.params

    def test_signal_axes_enter_key_and_config(self):
        spec = small_spec(queue_kinds=("red", "codel"), ecn_modes=(True, False))
        points = spec.expand()
        assert len(points) == spec.size == 4
        assert len({p.key for p in points}) == 4
        for point in points:
            assert point.config.queue_kind == point.params["queue_kind"]
            assert point.config.ecn == point.params["ecn"]

    def test_signal_axes_override_scenario_defaults(self):
        # The ecn_mptcp_fairness scenario defaults to RED+ECN; a literal axis
        # value must win so the sweep actually covers the other disciplines.
        spec = small_spec(
            kind="multiflow",
            scenarios=("ecn_mptcp_fairness",),
            queue_kinds=("droptail",),
            ecn_modes=(False,),
        )
        point = spec.expand()[0]
        assert point.config.queue_kind == "droptail"
        assert point.config.ecn is False

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            small_spec(congestion_controls=())

    def test_failover_manager_rejected_for_multiflow(self):
        with pytest.raises(ConfigurationError, match="single-connection"):
            small_spec(
                kind="multiflow",
                scenarios=("mptcp_vs_tcp_shared_bottleneck",),
                path_managers=("failover",),
            )

    def test_degenerate_grid_fails_with_point_params(self, monkeypatch):
        from repro.experiments import campaign as campaign_module
        from repro.model.bottleneck import ConstraintSystem

        def degenerate_constraints(topology, paths, **kwargs):
            return ConstraintSystem(list(paths), [])

        monkeypatch.setattr(campaign_module, "build_constraints", degenerate_constraints)
        with pytest.raises(ConfigurationError) as excinfo:
            small_spec(rate_scales=(1.5,)).expand()
        message = str(excinfo.value)
        assert "degenerate campaign grid point" in message
        assert '"rate_scale": 1.5' in message
        assert "model_status" not in message


class TestResultStore:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").load() == {}

    def test_append_and_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "abc", "status": "ok"})
        store.append({"key": "def", "status": "error"})
        records = store.load()
        assert set(records) == {"abc", "def"}
        assert len(store) == 2

    def test_last_record_per_key_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "abc", "status": "error"})
        store.append({"key": "abc", "status": "ok"})
        assert store.load()["abc"]["status"] == "ok"

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "abc", "status": "ok"})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "def", "status"')  # crash mid-append
        assert set(store.load()) == {"abc"}

    def test_append_sanitizes_non_finite_metrics(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "abc", "metric": float("nan")})
        line = (tmp_path / "store.jsonl").read_text().strip()
        assert json.loads(line)["metric"] is None
        assert "NaN" not in line


class TestRunCampaign:
    def test_second_invocation_executes_zero_points(self, tmp_path):
        spec = small_spec(congestion_controls=("cubic", "lia"))
        store = tmp_path / "store.jsonl"
        first = run_campaign(spec, store, max_workers=1)
        assert (first.executed, first.skipped) == (2, 0)
        second = run_campaign(spec, store, max_workers=1)
        assert (second.executed, second.skipped) == (0, 2)
        assert [r["key"] for r in second.records] == [p.key for p in second.points]

    def test_grid_extension_runs_only_new_points(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign(small_spec(), store, max_workers=1)
        extended = run_campaign(
            small_spec(congestion_controls=("cubic", "lia")), store, max_workers=1
        )
        assert (extended.executed, extended.skipped) == (1, 1)

    def test_resume_disabled_re_runs_everything(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign(small_spec(), store, max_workers=1)
        fresh = run_campaign(small_spec(), store, max_workers=1, resume=False)
        assert fresh.executed == 1

    def test_progress_reports_chunk_completion(self, tmp_path):
        calls = []
        spec = small_spec(congestion_controls=("cubic", "lia", "olia"))
        run_campaign(
            spec,
            tmp_path / "store.jsonl",
            chunk_size=2,
            max_workers=1,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(0, 3), (2, 3), (3, 3)]

    def test_error_points_are_recorded_and_retried(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        point = spec.expand()[0]
        broken = ResultStore(store)
        broken.append({"key": point.key, "params": point.params, "status": "error", "error": "boom"})
        result = run_campaign(spec, store, max_workers=1)
        assert result.executed == 1
        assert result.records[0]["status"] == "ok"

    def test_records_contain_validation(self, tmp_path):
        result = run_campaign(small_spec(), tmp_path / "store.jsonl", max_workers=1)
        record = result.records[0]
        assert record["status"] == "ok"
        assert record["validation"]["predictions"]["lp"]["total"] == pytest.approx(90.0)
        report = result.validation_report()
        assert report.points == 1
        assert report.models["lp"].count == 1

    def test_execute_point_turns_failures_into_error_records(self):
        point = small_spec().expand()[0]
        point.config = point.config.with_overrides(congestion_control="nonsense")
        record = _execute_point(point)
        assert record["status"] == "error"
        assert "nonsense" in record["error"]

    def test_invalid_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec(), tmp_path / "s.jsonl", chunk_size=0)


class TestNamedGrids:
    def test_registry_names(self):
        assert set(CAMPAIGN_GRIDS) == {
            "paper_cc_rate",
            "multiflow_fairness",
            "workload_fct",
            "ecn_aqm_fairness",
        }

    def test_paper_grid_shape(self):
        spec = paper_cc_rate_campaign(duration=1.0)
        assert spec.kind == "single"
        assert spec.size == 9
        assert spec.duration == 1.0

    def test_fairness_grid_is_multiflow(self):
        spec = multiflow_fairness_campaign()
        assert spec.kind == "multiflow"
        assert spec.size == 8

    def test_ecn_aqm_grid_shape(self):
        spec = ecn_aqm_fairness_campaign()
        assert spec.kind == "multiflow"
        assert spec.scenarios == ("ecn_mptcp_fairness",)
        # queue discipline x controller, signal-driven families included
        assert set(spec.queue_kinds) == {"droptail", "red", "codel"}
        assert {"sfc", "telehaptic"} <= set(spec.congestion_controls)
        assert spec.size == 12
        flowlevel = ecn_aqm_fairness_campaign(backend="flowlevel")
        packet_keys = {p.key for p in spec.expand()}
        assert packet_keys.isdisjoint({p.key for p in flowlevel.expand()})


class TestCampaignCli:
    def test_list_grids(self, capsys):
        assert cli_main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == sorted(CAMPAIGN_GRIDS)

    def test_unknown_grid_errors(self, capsys):
        assert cli_main(["campaign", "nonsense"]) == 2
        assert "choose from" in capsys.readouterr().err

    def test_missing_grid_errors(self, capsys):
        assert cli_main(["campaign"]) == 2
        assert "required" in capsys.readouterr().err

    def test_run_and_resume_via_cli(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setitem(
            campaign_module.CAMPAIGN_GRIDS, "paper_cc_rate", lambda **kw: small_spec(**kw)
        )
        store = str(tmp_path / "store.jsonl")
        assert cli_main(["campaign", "paper_cc_rate", "--store", store, "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 resumed" in out
        assert "model-vs-simulation error summary" in out

        assert (
            cli_main(["campaign", "paper_cc_rate", "--store", store, "--json"]) == 0
        )
        payload = json.loads(
            capsys.readouterr().out,
            parse_constant=lambda token: pytest.fail(f"non-finite JSON token {token}"),
        )
        assert payload["campaign"]["executed"] == 0
        assert payload["campaign"]["skipped"] == 1
        assert payload["points"][0]["status"] == "ok"

    def test_error_points_yield_nonzero_exit(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setitem(
            campaign_module.CAMPAIGN_GRIDS, "paper_cc_rate", lambda **kw: small_spec(**kw)
        )

        def always_fails(point):
            return {"key": point.key, "params": point.params, "status": "error", "error": "boom"}

        monkeypatch.setattr(campaign_module, "_execute_point", always_fails)
        store = str(tmp_path / "store.jsonl")
        assert cli_main(["campaign", "paper_cc_rate", "--store", store, "--no-plot"]) == 1
        assert "boom" in capsys.readouterr().err
