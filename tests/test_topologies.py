"""Topology builders: the paper network and the generic generators."""

import pytest

from repro.errors import ConfigurationError
from repro.model.bottleneck import build_constraints
from repro.model.lp import max_total_throughput
from repro.topologies.generators import (
    disjoint_paths,
    pairwise_overlap,
    parking_lot,
    shared_bottleneck,
    two_bottleneck_diamond,
    wifi_cellular,
)
from repro.topologies.paper import (
    PAPER_DEFAULT_PATH_INDEX,
    PAPER_OPTIMAL_RATES,
    PAPER_OPTIMAL_TOTAL,
    build_paper_topology,
    paper_paths,
    paper_scenario,
    paper_shared_link,
    paper_variants,
)


class TestPaperTopology:
    def test_six_nodes(self):
        topology = build_paper_topology()
        assert len(topology.nodes) == 6
        assert sorted(topology.hosts) == ["d", "s"]

    def test_paths_are_valid(self):
        topology, paths = paper_scenario()
        for path in paths:
            topology.validate_path(path.nodes)

    def test_default_path_index_is_path_2(self):
        assert PAPER_DEFAULT_PATH_INDEX == 1
        assert paper_paths()[PAPER_DEFAULT_PATH_INDEX].name == "Path 2"

    def test_as_stated_capacities(self):
        topology = build_paper_topology("as_stated")
        assert topology.capacity_of(*paper_shared_link((1, 2))) == 40.0
        assert topology.capacity_of(*paper_shared_link((2, 3))) == 60.0
        assert topology.capacity_of(*paper_shared_link((1, 3))) == 80.0

    def test_as_solution_capacities(self):
        topology = build_paper_topology("as_solution")
        assert topology.capacity_of(*paper_shared_link((1, 2))) == 40.0
        assert topology.capacity_of(*paper_shared_link((2, 3))) == 80.0
        assert topology.capacity_of(*paper_shared_link((1, 3))) == 60.0

    def test_both_variants_have_optimum_90(self):
        for variant in paper_variants():
            topology = build_paper_topology(variant)
            system = build_constraints(topology, paper_paths())
            result = max_total_throughput(system)
            assert result.total == pytest.approx(PAPER_OPTIMAL_TOTAL)
            assert result.rates == pytest.approx(list(PAPER_OPTIMAL_RATES[variant]), abs=1e-4)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            build_paper_topology("mislabelled")

    def test_unshared_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_shared_link((1, 1))

    def test_non_shared_links_default_to_100(self):
        topology = build_paper_topology()
        assert topology.capacity_of("s", "v2") == 100.0
        assert topology.capacity_of("v1", "v4") == 100.0

    def test_path2_has_lowest_delay(self):
        topology, paths = paper_scenario()
        delays = [p.propagation_delay(topology) for p in paths]
        assert delays.index(min(delays)) == PAPER_DEFAULT_PATH_INDEX

    def test_queue_size_configurable(self):
        topology = build_paper_topology(queue_packets=25)
        assert topology.link("s", "v1").queue_packets == 25


class TestGenerators:
    def test_shared_bottleneck_constraint(self):
        topology, paths = shared_bottleneck(n_paths=3, bottleneck_mbps=45.0)
        system = build_constraints(topology, paths)
        assert max_total_throughput(system).total == pytest.approx(45.0)
        assert len(paths) == 3

    def test_disjoint_paths_are_disjoint(self):
        _, paths = disjoint_paths((30.0, 50.0, 10.0))
        assert paths.is_disjoint()
        assert len(paths) == 3

    def test_disjoint_paths_validation(self):
        with pytest.raises(ConfigurationError):
            disjoint_paths(())
        with pytest.raises(ConfigurationError):
            disjoint_paths((10.0,), delays=(0.1, 0.2))

    def test_wifi_cellular_shape(self):
        topology, paths = wifi_cellular(wifi_mbps=50.0, cellular_mbps=20.0)
        assert paths.is_disjoint()
        system = build_constraints(topology, paths)
        assert max_total_throughput(system).total == pytest.approx(70.0)
        assert paths[0].propagation_delay(topology) < paths[1].propagation_delay(topology)

    def test_parking_lot_long_path_overlaps_all(self):
        topology, paths = parking_lot(segments=3, segment_mbps=40.0)
        long_path = paths[0]
        for short in list(paths)[1:]:
            assert long_path.shares_link_with(short)
        for path in paths:
            topology.validate_path(path.nodes)

    def test_parking_lot_short_paths_cross_exactly_their_own_segment(self):
        # Regression: short paths used to traverse every downstream segment
        # (chain[index:]) instead of only their own, contradicting the
        # classic parking-lot construction promised by the docstring.
        segments = 4
        topology, paths = parking_lot(segments=segments, segment_mbps=40.0)
        long_path = paths[0]
        chain = [f"c{i}" for i in range(segments + 1)]
        for index, short in enumerate(list(paths)[1:], start=1):
            shared = short.shared_links(long_path)
            assert shared == [(chain[index], chain[index + 1])]
        # Short paths are pairwise link-disjoint: each one has a private
        # detour and only its own chain segment.
        shorts = list(paths)[1:]
        for i in range(len(shorts)):
            for j in range(i + 1, len(shorts)):
                assert not shorts[i].shares_link_with(shorts[j])

    def test_parking_lot_optimum_fills_every_segment(self):
        topology, paths = parking_lot(segments=3, segment_mbps=40.0)
        system = build_constraints(topology, paths)
        # The short paths can saturate their segments while the long path
        # stays off the chain: the optimum is one segment capacity per
        # short path.
        assert max_total_throughput(system).total == pytest.approx(80.0)

    def test_parking_lot_validation(self):
        with pytest.raises(ConfigurationError):
            parking_lot(segments=1)

    def test_pairwise_overlap_reproduces_paper_structure(self):
        topology, paths = pairwise_overlap(3, capacities=(40.0, 60.0, 80.0))
        system = build_constraints(topology, paths, include_private_links=False)
        shared = {c.path_indices: c.capacity for c in system.shared_constraints()}
        assert shared[(0, 1)] == 40.0
        assert shared[(0, 2)] == 60.0
        assert shared[(1, 2)] == 80.0
        assert max_total_throughput(system).total == pytest.approx(90.0)

    def test_pairwise_overlap_larger_instance(self):
        topology, paths = pairwise_overlap(4, seed=3)
        assert len(paths) == 4
        system = build_constraints(topology, paths)
        assert len(system.shared_constraints()) >= 6
        for path in paths:
            topology.validate_path(path.nodes)

    def test_pairwise_overlap_validation(self):
        with pytest.raises(ConfigurationError):
            pairwise_overlap(1)
        with pytest.raises(ConfigurationError):
            pairwise_overlap(3, capacities=(40.0,))

    def test_diamond_constraints(self):
        topology, paths = two_bottleneck_diamond(top_mbps=30.0, bottom_mbps=60.0, shared_mbps=80.0)
        system = build_constraints(topology, paths, include_private_links=False)
        result = max_total_throughput(system)
        # Shared first hop caps the total at 80; the split is 30 + 50.
        assert result.total == pytest.approx(80.0)
