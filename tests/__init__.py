"""Test suite package.

The package marker lets test modules import shared helpers with
``from .conftest import ...`` under plain ``python -m pytest``.
"""
