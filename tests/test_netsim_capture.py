"""Packet capture (the tshark substitute): filtering and accounting."""

import pytest

from repro.netsim.capture import PacketCapture
from repro.netsim.packet import Packet


def data_packet(tag, subflow_id=0, size=1460, payload=1400, time=0.0, dsn=0, retx=False):
    return Packet(
        "s",
        "d",
        size,
        tag=tag,
        flow_id=1,
        subflow_id=subflow_id,
        payload_len=payload,
        dsn=dsn,
        is_retransmission=retx,
    ), time


def ack_packet(tag, time=0.0):
    return Packet("d", "s", 60, tag=tag, flow_id=1, is_ack=True), time


@pytest.fixture
def capture():
    cap = PacketCapture()
    for i in range(5):
        packet, t = data_packet(tag=1, subflow_id=0, time=0.1 * i)
        cap.on_packet(packet, t)
    for i in range(3):
        packet, t = data_packet(tag=2, subflow_id=1, time=0.1 * i)
        cap.on_packet(packet, t)
    packet, t = ack_packet(tag=1, time=0.25)
    cap.on_packet(packet, t)
    return cap


class TestCaptureFiltering:
    def test_total_record_count(self, capture):
        assert len(capture) == 9

    def test_filter_by_tag(self, capture):
        assert len(capture.filter(tag=1)) == 5
        assert len(capture.filter(tag=2)) == 3

    def test_filter_excludes_acks_by_default(self, capture):
        assert all(not r.is_ack for r in capture.filter(tag=1))

    def test_filter_can_include_acks(self, capture):
        assert len(capture.filter(tag=1, data_only=False)) == 6

    def test_filter_by_subflow(self, capture):
        assert len(capture.filter(subflow_id=1)) == 3

    def test_filter_by_flow(self, capture):
        assert len(capture.filter(flow_id=1)) == 8
        assert capture.filter(flow_id=2) == []

    def test_filter_with_predicate(self, capture):
        late = capture.filter(predicate=lambda r: r.time > 0.15)
        assert all(r.time > 0.15 for r in late)

    def test_tags_listing(self, capture):
        assert capture.tags() == [1, 2]

    def test_subflow_ids_listing(self, capture):
        assert capture.subflow_ids() == [0, 1]


class TestCaptureAccounting:
    def test_bytes_captured_data_only(self, capture):
        assert capture.bytes_captured() == 8 * 1460

    def test_bytes_captured_with_acks(self, capture):
        assert capture.bytes_captured(data_only=False) == 8 * 1460 + 60

    def test_payload_bytes(self, capture):
        assert capture.payload_bytes(capture.filter(tag=2)) == 3 * 1400

    def test_first_and_last_time(self, capture):
        assert capture.first_time() == pytest.approx(0.0)
        assert capture.last_time() == pytest.approx(0.25)

    def test_clear(self, capture):
        capture.clear()
        assert len(capture) == 0
        assert capture.first_time() == 0.0


class TestDataOnlyCapture:
    def test_data_only_capture_ignores_acks(self):
        cap = PacketCapture(data_only=True)
        packet, t = data_packet(tag=1)
        cap.on_packet(packet, t)
        ack, t = ack_packet(tag=1)
        cap.on_packet(ack, t)
        assert len(cap) == 1
        assert not cap.records[0].is_ack

    def test_retransmission_flag_preserved(self):
        cap = PacketCapture()
        packet, t = data_packet(tag=1, retx=True)
        cap.on_packet(packet, t)
        assert cap.records[0].is_retransmission
