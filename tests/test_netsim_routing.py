"""Routing tables: static shortest path, tag pinning, ECMP hashing."""

import networkx as nx
import pytest

from repro.errors import RoutingError
from repro.netsim.packet import Packet
from repro.netsim.routing import (
    EcmpRoutingTable,
    StaticRoutingTable,
    TagRoutingTable,
    paths_edges,
)


def diamond_graph():
    g = nx.Graph()
    g.add_edges_from([("s", "a"), ("s", "b"), ("a", "d"), ("b", "d")])
    return g


class TestStaticRouting:
    def test_forwards_towards_destination(self):
        table = StaticRoutingTable(diamond_graph())
        packet = Packet("s", "d", 100)
        hop = table.next_hop("s", packet)
        assert hop in ("a", "b")

    def test_last_hop_reaches_destination(self):
        table = StaticRoutingTable(diamond_graph())
        packet = Packet("s", "d", 100)
        assert table.next_hop("a", packet) == "d"
        assert table.next_hop("b", packet) == "d"

    def test_unknown_destination_returns_none(self):
        table = StaticRoutingTable(diamond_graph())
        packet = Packet("s", "nowhere", 100)
        assert table.next_hop("s", packet) is None


class TestTagRouting:
    def test_forward_path_follows_tag(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1)
        table.install_path(["s", "b", "d"], tag=2)
        assert table.next_hop("s", Packet("s", "d", 100, tag=1)) == "a"
        assert table.next_hop("s", Packet("s", "d", 100, tag=2)) == "b"

    def test_reverse_path_installed_for_acks(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1)
        ack = Packet("d", "s", 60, tag=1, is_ack=True)
        assert table.next_hop("d", ack) == "a"
        assert table.next_hop("a", ack) == "s"

    def test_default_route_used_for_unknown_tag(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1, as_default=True)
        assert table.next_hop("s", Packet("s", "d", 100, tag=99)) == "a"
        assert table.next_hop("s", Packet("s", "d", 100, tag=None)) == "a"

    def test_no_route_returns_none(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1)
        assert table.next_hop("s", Packet("s", "d", 100, tag=2)) is None

    def test_fallback_table_consulted(self):
        fallback = StaticRoutingTable(diamond_graph())
        table = TagRoutingTable(fallback=fallback)
        assert table.next_hop("s", Packet("s", "d", 100, tag=5)) in ("a", "b")

    def test_installed_path_retrievable(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1)
        assert table.installed_path("s", "d", 1) == ["s", "a", "d"]
        assert table.installed_path("d", "s", 1) == ["d", "a", "s"]

    def test_short_path_rejected(self):
        with pytest.raises(RoutingError):
            TagRoutingTable().install_path(["s"], tag=1)

    def test_looping_path_rejected(self):
        with pytest.raises(RoutingError):
            TagRoutingTable().install_path(["s", "a", "s"], tag=1)

    def test_different_tags_may_share_a_prefix(self):
        table = TagRoutingTable()
        table.install_path(["s", "a", "d"], tag=1)
        table.install_path(["s", "a", "b", "d"], tag=2)
        assert table.next_hop("a", Packet("s", "d", 100, tag=1)) == "d"
        assert table.next_hop("a", Packet("s", "d", 100, tag=2)) == "b"


class TestEcmpRouting:
    def test_next_hop_is_on_a_shortest_path(self):
        table = EcmpRoutingTable(diamond_graph())
        packet = Packet("s", "d", 100, flow_id=1, subflow_id=0)
        assert table.next_hop("s", packet) in ("a", "b")

    def test_same_flow_always_hashes_to_same_hop(self):
        table = EcmpRoutingTable(diamond_graph())
        packet = Packet("s", "d", 100, flow_id=12, subflow_id=3)
        hops = {table.next_hop("s", Packet("s", "d", 100, flow_id=12, subflow_id=3)) for _ in range(5)}
        assert len(hops) == 1

    def test_different_subflows_can_take_different_paths(self):
        table = EcmpRoutingTable(diamond_graph())
        hops = {
            table.next_hop("s", Packet("s", "d", 100, flow_id=1, subflow_id=i)) for i in range(32)
        }
        assert hops == {"a", "b"}

    def test_unknown_destination_returns_none(self):
        table = EcmpRoutingTable(diamond_graph())
        assert table.next_hop("s", Packet("s", "zzz", 100)) is None


class TestPathEdges:
    def test_edges_of_node_list(self):
        assert paths_edges(["s", "a", "d"]) == [("s", "a"), ("a", "d")]

    def test_empty_for_single_node(self):
        assert paths_edges(["s"]) == []
