"""Model-vs-simulation cross-validation metrics and their aggregation."""

import json
import math

import pytest

from repro.errors import ModelError
from repro.experiments.harness import paper_experiment, run_experiment
from repro.experiments.multiflow import run_multiflow
from repro.experiments.scenarios import mptcp_vs_tcp_shared_bottleneck
from repro.measure.validation import (
    PointValidation,
    ValidationReport,
    rank_agreement,
    relative_error,
    validate_against_models,
    validate_experiment,
    validate_multiflow,
)
from repro.model.bottleneck import build_constraints
from repro.topologies.paper import build_paper_topology, paper_paths


@pytest.fixture(scope="module")
def paper_system():
    return build_constraints(build_paper_topology(), paper_paths(), include_private_links=False)


class TestRelativeError:
    def test_exact_match_is_zero(self):
        assert relative_error(90.0, 90.0) == 0.0

    def test_scaled_by_prediction(self):
        assert relative_error(45.0, 90.0) == pytest.approx(0.5)

    def test_nan_and_inf_yield_none(self):
        assert relative_error(float("nan"), 90.0) is None
        assert relative_error(90.0, float("inf")) is None

    def test_zero_prediction_yields_none(self):
        assert relative_error(10.0, 0.0) is None


class TestRankAgreement:
    def test_identical_ordering_is_one(self):
        assert rank_agreement([30.0, 10.0, 50.0], [3.0, 1.0, 5.0]) == 1.0

    def test_reversed_ordering_is_zero(self):
        assert rank_agreement([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) == 0.0

    def test_partial_agreement(self):
        # Pairs: (0,1) agree, (0,2) agree, (1,2) disagree.
        assert rank_agreement([1.0, 2.0, 3.0], [1.0, 3.0, 2.0]) == pytest.approx(2 / 3)

    def test_ties_agree_with_ties(self):
        assert rank_agreement([5.0, 5.0], [7.0, 7.0]) == 1.0

    def test_single_path_is_none(self):
        assert rank_agreement([5.0], [7.0]) is None

    def test_non_finite_rates_are_none(self):
        assert rank_agreement([float("nan"), 1.0], [1.0, 2.0]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ModelError):
            rank_agreement([1.0], [1.0, 2.0])


class TestValidateAgainstModels:
    def test_perfect_measurement_has_zero_lp_error(self, paper_system):
        validation = validate_against_models(
            paper_system, [30.0, 10.0, 50.0], algorithm="cubic"
        )
        lp = validation.predictions["lp"]
        assert lp.rel_error == pytest.approx(0.0, abs=1e-9)
        assert lp.rank_agreement == 1.0
        assert validation.measured_total == pytest.approx(90.0)

    def test_all_reference_models_present(self, paper_system):
        validation = validate_against_models(paper_system, [30.0, 10.0, 50.0])
        assert {"lp", "max_min", "fluid"} <= set(validation.predictions)

    def test_nan_measurements_are_sanitized(self, paper_system):
        validation = validate_against_models(
            paper_system, [float("nan"), 10.0, 50.0], algorithm="lia"
        )
        assert validation.measured_rates[0] == 0.0
        payload = json.dumps(validation.as_dict(), allow_nan=False)
        assert "NaN" not in payload

    def test_rate_count_mismatch_raises(self, paper_system):
        with pytest.raises(ModelError):
            validate_against_models(paper_system, [1.0, 2.0])

    def test_unknown_algorithm_falls_back_to_uncoupled(self, paper_system):
        validation = validate_against_models(
            paper_system, [30.0, 10.0, 50.0], algorithm="balia"
        )
        assert validation.predictions["fluid"].total > 0.0


class TestValidateRuns:
    def test_validate_experiment_paper_run(self):
        result = run_experiment(paper_experiment("cubic", duration=0.8))
        validation = validate_experiment(result)
        assert len(validation.measured_rates) == 3
        assert validation.algorithm == "cubic"
        lp = validation.predictions["lp"]
        assert lp.total == pytest.approx(90.0)
        assert lp.rel_error is not None and lp.rel_error < 0.5

    def test_validate_multiflow_uses_base_paths(self):
        config = mptcp_vs_tcp_shared_bottleneck(duration=0.8)
        result = run_multiflow(config)
        validation = validate_multiflow(result)
        # 2 MPTCP subflow paths + 1 TCP path on the shared bottleneck.
        assert len(validation.measured_rates) == 3
        assert validation.measured_total > 0.0
        assert validation.algorithm == "lia"


class TestValidationReport:
    @staticmethod
    def _point(lp_error, rank=1.0):
        return {
            "predictions": {
                "lp": {"rel_error": lp_error, "rank_agreement": rank},
                "max_min": {"rel_error": None, "rank_agreement": None},
            }
        }

    def test_aggregates_error_distribution(self):
        report = ValidationReport.from_validations(
            [self._point(0.1), self._point(0.2), self._point(0.3, rank=0.5)]
        )
        lp = report.models["lp"]
        assert report.points == 3
        assert lp.count == 3
        assert lp.mean_rel_error == pytest.approx(0.2)
        assert lp.median_rel_error == pytest.approx(0.2)
        assert lp.max_rel_error == pytest.approx(0.3)
        assert lp.mean_rank_agreement == pytest.approx((1.0 + 1.0 + 0.5) / 3)

    def test_model_with_no_errors_reports_none(self):
        report = ValidationReport.from_validations([self._point(0.1)])
        assert report.models["max_min"].count == 0
        assert report.models["max_min"].mean_rel_error is None

    def test_accepts_point_validation_objects(self):
        validation = PointValidation(
            measured_rates=[1.0], measured_total=1.0, algorithm="cubic"
        )
        report = ValidationReport.from_validations([validation, {"predictions": {}}])
        assert report.points == 2

    def test_as_dict_is_json_safe(self):
        report = ValidationReport.from_validations(
            [self._point(0.25), self._point(float("nan"))]
        )
        payload = json.dumps(report.as_dict(), allow_nan=False)
        assert math.isfinite(json.loads(payload)["models"]["lp"]["mean_rel_error"])
