"""Integration tests for the paper's headline claims (shortened runs).

These keep the full pipeline honest: packet simulation -> capture -> sampling
-> comparison with the analytical optimum.  The benchmarks reproduce the
figures at full length; here the durations are shortened so the test suite
stays fast while the qualitative claims remain checkable.
"""

import pytest

from repro.core.connection import MptcpConnection
from repro.experiments.harness import paper_experiment, run_experiment
from repro.netsim.network import Network
from repro.topologies.generators import shared_bottleneck, wifi_cellular
from repro.topologies.paper import PAPER_OPTIMAL_TOTAL


@pytest.fixture(scope="module")
def cubic_result():
    return run_experiment(paper_experiment("cubic", duration=2.5))


@pytest.fixture(scope="module")
def lia_result():
    return run_experiment(paper_experiment("lia", duration=2.5))


class TestFig1Claims:
    def test_lp_optimum_is_90_mbps(self, cubic_result):
        assert cubic_result.optimum.total == pytest.approx(PAPER_OPTIMAL_TOTAL)

    def test_greedy_from_default_path_is_suboptimal(self, cubic_result):
        from repro.model.greedy import greedy_fill

        greedy = greedy_fill(cubic_result.constraint_system, order=[1, 0, 2])
        assert greedy.total < cubic_result.optimum.total - 10.0


class TestFig2Claims:
    def test_cubic_approaches_the_optimum(self, cubic_result):
        # Paper: "the default (CUBIC) congestion control algorithm always
        # reached the optimum".
        assert cubic_result.achieved_total_mbps > 0.9 * PAPER_OPTIMAL_TOTAL

    def test_cubic_default_path_limited_by_40_link(self, cubic_result):
        # Path 2 shares the 40 Mbps link; near the optimum it carries the
        # smallest share (10 Mbps in the LP solution).
        tail = {
            tag: series.mean_over(1.5, 2.5)
            for tag, series in cubic_result.per_path_series.items()
        }
        assert tail[2] < tail[1] < tail[3]

    def test_lia_stays_below_cubic(self, cubic_result, lia_result):
        # Paper: "the more stable LIA never could reach the optimum".
        assert lia_result.achieved_total_mbps < cubic_result.achieved_total_mbps

    def test_lia_does_not_reach_the_optimum(self, lia_result):
        assert lia_result.achieved_total_mbps < 0.95 * PAPER_OPTIMAL_TOTAL
        assert not lia_result.convergence.reached_optimum

    def test_all_three_paths_carry_traffic(self, cubic_result):
        for series in cubic_result.per_path_series.values():
            assert series.mean_over(1.0, 2.5) > 1.0

    def test_total_never_exceeds_the_optimum_meaningfully(self, cubic_result):
        # Wire-level throughput can exceed goodput slightly (headers,
        # retransmissions) but must stay close to the capacity bound.
        assert cubic_result.total_series.max() <= PAPER_OPTIMAL_TOTAL * 1.1


class TestOtherScenarios:
    def test_disjoint_wifi_cellular_uses_both_paths(self):
        from repro.measure.sampling import total_timeseries

        topology, paths = wifi_cellular(wifi_mbps=40.0, cellular_mbps=15.0)
        network = Network(topology)
        capture = network.attach_capture("server", data_only=True)
        connection = MptcpConnection(
            network, "client", "server", paths, congestion_control="lia"
        )
        connection.start(0.0)
        network.run(2.0)
        per_path = connection.subflow_throughputs_mbps(2.0)
        assert per_path[0] > 10.0   # Wi-Fi path carries the bulk
        assert per_path[1] > 2.0    # cellular path contributes
        # Receiver-side wire throughput (what tshark would measure) uses a
        # large share of the 55 Mbps aggregate over the second half of the run.
        wire = total_timeseries(capture, interval=0.1, end=2.0)
        assert wire.mean_over(1.0, 2.0) > 30.0
        assert len(capture) > 0

    def test_coupled_cc_on_shared_bottleneck_is_not_worse_than_half(self):
        # Two subflows over one 30 Mbps bottleneck: coupling must not collapse
        # the aggregate below what a single flow would get.
        topology, paths = shared_bottleneck(n_paths=2, bottleneck_mbps=30.0)
        network = Network(topology)
        connection = MptcpConnection(network, "s", "d", paths, congestion_control="lia")
        connection.start(0.0)
        network.run(2.0)
        assert connection.total_throughput_mbps(2.0) > 15.0

    def test_analytical_and_simulated_agree_on_who_wins(self):
        # The fluid/LP hierarchy (uncoupled >= LIA on aggregate) shows up in
        # the packet simulation as well.
        cubic = run_experiment(paper_experiment("cubic", duration=1.5))
        lia = run_experiment(paper_experiment("lia", duration=1.5))
        assert cubic.achieved_total_mbps >= lia.achieved_total_mbps - 2.0
