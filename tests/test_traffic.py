"""Traffic generation: UDP CBR, on-off sources and the iperf wrapper."""

import pytest

from repro.core.connection import MptcpConnection
from repro.errors import ConfigurationError
from repro.netsim.network import Network
from repro.tcp.connection import TcpConnection
from repro.traffic.iperf import IperfClient
from repro.traffic.onoff import OnOffSource
from repro.traffic.udp import UdpConstantBitRate
from repro.topologies.paper import paper_scenario

from .conftest import make_chain_topology


@pytest.fixture
def chain():
    network = Network(make_chain_topology(capacity_mbps=50.0))
    network.install_path(["s", "r1", "d"], tag=1, as_default=True)
    return network


class TestUdpCbr:
    def test_rate_is_respected(self, chain):
        source = UdpConstantBitRate(chain, "s", "d", rate_mbps=10.0, tag=1)
        source.start(at=0.0, stop_at=1.0)
        chain.run(1.1)
        assert source.sink.throughput_mbps() == pytest.approx(10.0, rel=0.05)

    def test_no_loss_below_capacity(self, chain):
        source = UdpConstantBitRate(chain, "s", "d", rate_mbps=20.0, tag=1)
        source.start(0.0, stop_at=0.5)
        chain.run(0.6)
        assert source.delivery_ratio == pytest.approx(1.0)

    def test_losses_above_capacity(self, chain):
        source = UdpConstantBitRate(chain, "s", "d", rate_mbps=80.0, tag=1)
        source.start(0.0, stop_at=0.5)
        chain.run(0.6)
        assert source.delivery_ratio < 0.8
        assert chain.total_drops() > 0

    def test_stop_time_honoured(self, chain):
        source = UdpConstantBitRate(chain, "s", "d", rate_mbps=10.0, tag=1)
        source.start(0.0, stop_at=0.2)
        chain.run(1.0)
        sent_after = source.packets_sent
        chain.run(0.5)
        assert source.packets_sent == sent_after

    def test_invalid_rate_rejected(self, chain):
        with pytest.raises(ConfigurationError):
            UdpConstantBitRate(chain, "s", "d", rate_mbps=0.0)

    def test_delivery_ratio_zero_before_start(self, chain):
        source = UdpConstantBitRate(chain, "s", "d", rate_mbps=10.0, tag=1)
        assert source.delivery_ratio == 0.0


class TestOnOff:
    def test_duty_cycle_halves_throughput(self, chain):
        source = OnOffSource(
            chain, "s", "d", rate_mbps=10.0, on_duration=0.1, off_duration=0.1, tag=1
        )
        source.start(0.0, stop_at=1.0)
        chain.run(1.2)
        delivered_mbps = source.sink.bytes_received * 8 / 1e6 / 1.0
        assert delivered_mbps == pytest.approx(5.0, rel=0.25)

    def test_invalid_durations_rejected(self, chain):
        with pytest.raises(ConfigurationError):
            OnOffSource(chain, "s", "d", 10.0, on_duration=0.0, off_duration=0.1)


class TestIperf:
    def test_single_path_report(self, chain):
        capture = chain.attach_capture("d", data_only=True)
        connection = TcpConnection(chain, "s", "d", cc="cubic", tag=1)
        client = IperfClient(connection, capture=capture, report_interval=0.25)
        client.start(0.0)
        chain.run(1.0)
        report = client.report(1.0)
        assert report.mean_throughput_mbps > 0.6 * 50.0
        assert report.bytes_transferred > 0
        assert len(report.interval_series) == 4

    def test_mptcp_report(self):
        topology, paths = paper_scenario()
        network = Network(topology)
        capture = network.attach_capture("d", data_only=True)
        connection = MptcpConnection(network, "s", "d", paths, congestion_control="cubic")
        client = IperfClient(connection, capture=capture)
        client.start(0.0)
        network.run(0.5)
        report = client.report(0.5)
        assert report.mean_throughput_mbps > 10.0
        assert report.retransmissions >= 0
        assert report.as_dict()["duration_s"] == 0.5

    def test_report_without_capture_has_empty_series(self, chain):
        connection = TcpConnection(chain, "s", "d", cc="cubic", tag=1)
        client = IperfClient(connection)
        client.start(0.0)
        chain.run(0.2)
        report = client.report(0.2)
        assert len(report.interval_series) == 0
        assert report.bytes_transferred > 0
