"""Constraint extraction (Fig. 1c) and the max-throughput LP."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.bottleneck import build_constraints, shared_bottleneck_summary
from repro.model.lp import max_total_throughput, proportional_fair_rates
from repro.topologies.paper import (
    PAPER_OPTIMAL_RATES,
    PAPER_OPTIMAL_TOTAL,
    build_paper_topology,
    paper_paths,
)
from repro.topologies.generators import disjoint_paths, shared_bottleneck


@pytest.fixture
def paper_system():
    return build_constraints(build_paper_topology(), paper_paths(), include_private_links=False)


@pytest.fixture
def paper_system_full():
    return build_constraints(build_paper_topology(), paper_paths())


class TestConstraintExtraction:
    def test_paper_shared_constraints_match_fig1c(self, paper_system):
        shared = {c.path_indices: c.capacity for c in paper_system.shared_constraints()}
        assert shared == {(0, 1): 40.0, (1, 2): 60.0, (0, 2): 80.0}

    def test_private_links_included_by_default(self, paper_system_full):
        assert len(paper_system_full.constraints) > len(paper_system_full.shared_constraints())

    def test_matrix_shape(self, paper_system):
        assert paper_system.matrix().shape == (3, 3)
        assert paper_system.rhs().tolist() == [40.0, 60.0, 80.0]

    def test_matrix_rows_are_indicator_vectors(self, paper_system_full):
        a = paper_system_full.matrix()
        assert set(np.unique(a)) <= {0.0, 1.0}

    def test_feasibility_check(self, paper_system):
        assert paper_system.is_feasible([10, 20, 30])
        assert not paper_system.is_feasible([30, 30, 30])  # x1+x2 = 60 > 40
        assert not paper_system.is_feasible([-1, 0, 0])

    def test_feasibility_requires_matching_length(self, paper_system):
        with pytest.raises(ModelError):
            paper_system.is_feasible([1, 2])

    def test_tight_constraints(self, paper_system):
        tight = paper_system.tight_constraints([30, 10, 50])
        assert len(tight) == 3

    def test_max_rate_for_path(self, paper_system):
        # With x2 = 40 the shared 40-link blocks path 1 entirely.
        assert paper_system.max_rate_for_path(0, [0, 40, 0]) == pytest.approx(0.0)
        # With everything idle path 3 is limited by the 60-link.
        assert paper_system.max_rate_for_path(2, [0, 0, 0]) == pytest.approx(60.0)

    def test_pretty_lists_all_constraints(self, paper_system):
        text = paper_system.pretty()
        assert "x1 + x2 <= 40" in text
        assert "x_i >= 0" in text

    def test_shared_bottleneck_summary(self, paper_system):
        summary = shared_bottleneck_summary(paper_system)
        assert len(summary) == 3
        capacities = sorted(capacity for _, capacity, _ in summary)
        assert capacities == [40.0, 60.0, 80.0]

    def test_empty_paths_rejected(self):
        with pytest.raises(ModelError):
            build_constraints(build_paper_topology(), [])


class TestMaxThroughputLp:
    def test_paper_optimum_is_90(self, paper_system):
        result = max_total_throughput(paper_system)
        assert result.total == pytest.approx(PAPER_OPTIMAL_TOTAL)

    def test_paper_optimal_rates(self, paper_system):
        result = max_total_throughput(paper_system)
        assert result.rates == pytest.approx(list(PAPER_OPTIMAL_RATES["as_stated"]), abs=1e-4)

    def test_all_three_shared_links_tight_at_optimum(self, paper_system):
        result = max_total_throughput(paper_system)
        assert len([c for c in result.tight_links if len(c.path_indices) >= 2]) == 3

    def test_full_system_gives_same_optimum(self, paper_system_full):
        assert max_total_throughput(paper_system_full).total == pytest.approx(90.0)

    def test_vertex_solver_agrees_with_highs(self, paper_system):
        highs = max_total_throughput(paper_system, solver="highs")
        vertex = max_total_throughput(paper_system, solver="vertex")
        assert vertex.total == pytest.approx(highs.total)

    def test_weighted_objective(self, paper_system):
        # Heavily weighting path 2 shifts the optimum towards filling it.
        result = max_total_throughput(paper_system, weights=[1.0, 10.0, 1.0])
        assert result.rates[1] == pytest.approx(40.0)

    def test_weights_length_validated(self, paper_system):
        with pytest.raises(ModelError):
            max_total_throughput(paper_system, weights=[1.0])

    def test_disjoint_paths_optimum_is_sum_of_capacities(self):
        topology, paths = disjoint_paths((30.0, 50.0))
        system = build_constraints(topology, paths)
        assert max_total_throughput(system).total == pytest.approx(80.0)

    def test_shared_bottleneck_optimum_is_bottleneck(self):
        topology, paths = shared_bottleneck(n_paths=3, bottleneck_mbps=45.0)
        system = build_constraints(topology, paths)
        assert max_total_throughput(system).total == pytest.approx(45.0)

    def test_result_as_dict(self, paper_system):
        data = max_total_throughput(paper_system).as_dict()
        assert data["total"] == pytest.approx(90.0)
        assert len(data["rates"]) == 3


class TestProportionalFairness:
    def test_rates_are_feasible(self, paper_system):
        result = proportional_fair_rates(paper_system)
        assert paper_system.is_feasible(result.rates, tol=1e-3)

    def test_total_at_most_optimum(self, paper_system):
        fair = proportional_fair_rates(paper_system)
        assert fair.total <= 90.0 + 1e-3

    def test_no_path_starved(self, paper_system):
        fair = proportional_fair_rates(paper_system)
        assert all(rate > 1.0 for rate in fair.rates)

    def test_disjoint_paths_fill_completely(self):
        topology, paths = disjoint_paths((30.0, 50.0))
        system = build_constraints(topology, paths)
        fair = proportional_fair_rates(system)
        assert fair.total == pytest.approx(80.0, rel=1e-2)


class TestConstraintSystemValidate:
    """A path crossing no capacity constraint must fail with a named error."""

    @staticmethod
    def _degenerate_system():
        from repro.model.bottleneck import Constraint, ConstraintSystem
        from repro.model.paths import Path

        paths = [
            Path(["s", "a", "d"], tag=1, name="Bounded"),
            Path(["s", "b", "d"], tag=2, name="Unbounded"),
        ]
        constraints = [Constraint(link=("s", "a"), capacity=10.0, path_indices=(0,))]
        return ConstraintSystem(paths, constraints)

    def test_validate_passes_on_well_formed_systems(self, paper_system, paper_system_full):
        paper_system.validate()
        paper_system_full.validate()

    def test_validate_names_the_unconstrained_path(self):
        system = self._degenerate_system()
        with pytest.raises(ModelError, match=r"Unbounded \(index 1\)"):
            system.validate()

    def test_validate_rejects_empty_path_list(self):
        from repro.model.bottleneck import ConstraintSystem

        with pytest.raises(ModelError, match="no paths"):
            ConstraintSystem([], []).validate()

    def test_lp_reports_unconstrained_path_not_solver_trace(self):
        system = self._degenerate_system()
        with pytest.raises(ModelError) as excinfo:
            max_total_throughput(system)
        message = str(excinfo.value)
        assert "Unbounded (index 1)" in message
        assert "model_status" not in message

    def test_max_min_reports_unconstrained_path(self):
        from repro.model.maxmin import max_min_fair_rates

        with pytest.raises(ModelError, match="capacity constraint"):
            max_min_fair_rates(self._degenerate_system())

    def test_proportional_fair_reports_unconstrained_path(self):
        with pytest.raises(ModelError, match="capacity constraint"):
            proportional_fair_rates(self._degenerate_system())
