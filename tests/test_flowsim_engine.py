"""Flow-level simulation engine: rate allocator, event loop, workload
synthesis and the segment -> TimeSeries bridge.

The engine's promise is exactness between rate-change events: every
assertion here is against closed-form fluid arithmetic (progressive
filling, size / rate completion times), not loose statistical bands.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.flowsim import (
    ALLOCATORS,
    FlowLevelSim,
    MaxMinAllocator,
    heavy_tailed_workload,
    pareto_size_sampler,
)
from repro.flowsim.allocator import ClassDemand, make_allocator
from repro.flowsim.engine import FlowDescriptor, segments_to_timeseries
from repro.netsim.topology import Topology
from repro.topologies.paper import paper_scenario

MBPS_TO_BYTES = 1e6 / 8.0


def one_link_topology(capacity_mbps: float = 50.0) -> Topology:
    topology = Topology(name="one-link")
    topology.add_host("a")
    topology.add_host("b")
    topology.add_link("a", "b", capacity_mbps=capacity_mbps, delay=0.001)
    return topology


def greedy(name: str, **overrides) -> FlowDescriptor:
    params = {"name": name, "routes": (("a", "b"),)}
    params.update(overrides)
    return FlowDescriptor(**params)


class TestMaxMinAllocator:
    def setup_method(self):
        self.alloc = MaxMinAllocator()

    def test_equal_split_single_link(self):
        demands = [ClassDemand(links=(0,), count=1) for _ in range(3)]
        rates = self.alloc.solve(demands, [50.0])
        assert rates == pytest.approx([50.0 / 3] * 3)

    def test_weighted_split(self):
        demands = [
            ClassDemand(links=(0,), count=1, weight=1.0),
            ClassDemand(links=(0,), count=1, weight=2.0),
        ]
        rates = self.alloc.solve(demands, [30.0])
        assert rates == pytest.approx([10.0, 20.0])

    def test_cap_releases_share_to_others(self):
        demands = [
            ClassDemand(links=(0,), count=1, cap=5.0),
            ClassDemand(links=(0,), count=1),
        ]
        rates = self.alloc.solve(demands, [50.0])
        assert rates == pytest.approx([5.0, 45.0])

    def test_two_bottleneck_textbook_case(self):
        # A on link0 with B; B continues over link1 with C.  Link0 (10) is
        # B's bottleneck -> A=B=5; C soaks up the rest of link1 (100).
        demands = [
            ClassDemand(links=(0,), count=1),
            ClassDemand(links=(0, 1), count=1),
            ClassDemand(links=(1,), count=1),
        ]
        rates = self.alloc.solve(demands, [10.0, 100.0])
        assert rates == pytest.approx([5.0, 5.0, 95.0])

    def test_non_responsive_allocated_first(self):
        demands = [
            ClassDemand(links=(0,), count=1, cap=3.0, responsive=False),
            ClassDemand(links=(0,), count=1),
        ]
        rates = self.alloc.solve(demands, [8.0])
        assert rates == pytest.approx([3.0, 5.0])

    def test_count_aggregates_members(self):
        # Rates are per member: a class of 2 and a class of 1 split the
        # link three ways.
        demands = [
            ClassDemand(links=(0,), count=2),
            ClassDemand(links=(0,), count=1),
        ]
        rates = self.alloc.solve(demands, [30.0])
        assert rates == pytest.approx([10.0, 10.0])

    def test_down_link_gives_zero(self):
        demands = [ClassDemand(links=(0,), count=1)]
        assert self.alloc.solve(demands, [0.0]) == pytest.approx([0.0])


class TestAllocatorFactory:
    def test_registry_names(self):
        assert set(ALLOCATORS) >= {"maxmin", "proportional_fair", "fluid"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_allocator("waterfilling")

    def test_instance_passthrough(self):
        alloc = MaxMinAllocator()
        assert make_allocator(alloc) is alloc

    def test_proportional_fair_equal_split(self):
        pytest.importorskip("scipy")
        alloc = make_allocator("proportional_fair")
        demands = [ClassDemand(links=(0,), count=1) for _ in range(2)]
        rates = alloc.solve(demands, [40.0])
        assert rates == pytest.approx([20.0, 20.0], rel=1e-3)


class TestFlowDescriptorValidation:
    def test_needs_routes(self):
        with pytest.raises(ConfigurationError):
            FlowDescriptor(name="f", routes=())

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            greedy("f", size_bytes=0)

    def test_start_must_be_finite_nonnegative(self):
        with pytest.raises(ConfigurationError):
            greedy("f", start=-1.0)


class TestEngineExactness:
    def test_three_greedy_flows_split_evenly(self):
        sim = FlowLevelSim(one_link_topology(50.0))
        sim.add_flows([greedy(f"f{i}") for i in range(3)])
        result = sim.run(6.0)
        for flow in result.flows.values():
            assert flow.bytes_delivered == pytest.approx(
                (50.0 / 3) * MBPS_TO_BYTES * 6.0
            )
        assert result.max_concurrent == 3

    def test_sized_flows_processor_sharing_completion_times(self):
        # 1 MB and 2 MB on 8 Mbps (= 1 MB/s): shared until the small flow
        # finishes at t=2 (each got 1 MB/2), then the big one runs alone
        # and finishes its remaining 1 MB at t=3.
        sim = FlowLevelSim(one_link_topology(8.0))
        sim.add_flows(
            [
                greedy("small", size_bytes=1_000_000),
                greedy("big", size_bytes=2_000_000),
            ]
        )
        result = sim.run(10.0)
        finish = {c.name: c.finish for c in result.completions}
        assert finish["small"] == pytest.approx(2.0)
        assert finish["big"] == pytest.approx(3.0)
        assert result.transitions == 4  # two arrivals + two departures

    def test_duplicate_flow_name_rejected(self):
        sim = FlowLevelSim(one_link_topology())
        sim.add_flow(greedy("f"))
        with pytest.raises(ConfigurationError):
            sim.add_flow(greedy("f"))

    def test_stop_time_bounds_greedy_flow(self):
        sim = FlowLevelSim(one_link_topology(10.0))
        sim.add_flow(greedy("f", stop=2.0))
        result = sim.run(10.0)
        assert result.flows["f"].bytes_delivered == pytest.approx(
            10.0 * MBPS_TO_BYTES * 2.0
        )

    def test_paper_topology_maxmin_rates(self):
        # One greedy flow pinned to each paper path: the weighted max-min
        # allocation over the overlapping links is the paper's (20, 20, 40).
        topology, paths = paper_scenario()
        sim = FlowLevelSim(topology)
        for index, path in enumerate(paths):
            sim.add_flow(
                FlowDescriptor(name=f"p{index + 1}", routes=(tuple(path.nodes),))
            )
        result = sim.run(5.0)
        rates = {
            name: flow.bytes_delivered / MBPS_TO_BYTES / 5.0
            for name, flow in result.flows.items()
        }
        assert rates["p1"] == pytest.approx(20.0)
        assert rates["p2"] == pytest.approx(20.0)
        assert rates["p3"] == pytest.approx(40.0)

    def test_cbr_leaves_remainder_to_responsive(self):
        sim = FlowLevelSim(one_link_topology(8.0))
        sim.add_flow(greedy("cbr", cap_mbps=3.0, responsive=False, kind="udp"))
        sim.add_flow(greedy("tcp"))
        result = sim.run(4.0)
        assert result.flows["cbr"].bytes_delivered == pytest.approx(
            3.0 * MBPS_TO_BYTES * 4.0
        )
        assert result.flows["tcp"].bytes_delivered == pytest.approx(
            5.0 * MBPS_TO_BYTES * 4.0
        )

    def test_dynamics_schedule_exact_segments(self):
        # 10 Mbps for 2 s, 4 Mbps for 2 s, down for 2 s, 4 Mbps for 2 s,
        # 2 Mbps for 2 s: exactly 5 MB delivered.
        sim = FlowLevelSim(one_link_topology(10.0), record_timeseries=True)
        sim.add_flow(greedy("f"))
        sim.schedule(2.0, sim.set_link_rate, "a", "b", 4.0)
        sim.schedule(4.0, sim.set_link_down, "a", "b")
        sim.schedule(6.0, sim.set_link_up, "a", "b")
        sim.schedule(6.0, sim.set_link_rate, "a", "b", 4.0)
        sim.schedule(8.0, sim.set_link_rate, "a", "b", 2.0)
        result = sim.run(10.0)
        assert result.flows["f"].bytes_delivered == pytest.approx(5_000_000.0)
        series = result.flows["f"].series(interval=1.0, start=0.0, end=10.0)
        assert list(series.values) == pytest.approx(
            [10.0, 10.0, 4.0, 4.0, 0.0, 0.0, 4.0, 4.0, 2.0, 2.0]
        )

    def test_scale_link_mid_run(self):
        sim = FlowLevelSim(one_link_topology(10.0))
        sim.add_flow(greedy("f"))
        sim.schedule(5.0, sim.scale_link, "a", "b", 0.5)
        result = sim.run(10.0)
        assert result.flows["f"].bytes_delivered == pytest.approx(
            (10.0 * 5.0 + 5.0 * 5.0) * MBPS_TO_BYTES
        )

    def test_unknown_link_rejected(self):
        sim = FlowLevelSim(one_link_topology())
        with pytest.raises(ConfigurationError):
            sim.set_link_rate("a", "nowhere", 1.0)

    def test_summary_reports_percentiles(self):
        sim = FlowLevelSim(one_link_topology(8.0))
        sim.add_flows(
            [greedy(f"f{i}", size_bytes=1_000_000) for i in range(4)]
        )
        summary = sim.run(100.0).summary()
        assert summary["completed"] == 4
        assert summary["fct_p50_s"] <= summary["fct_p99_s"]

    def test_negative_duration_rejected(self):
        sim = FlowLevelSim(one_link_topology())
        with pytest.raises(ConfigurationError):
            sim.run(0.0)


class TestSegmentsToTimeseries:
    def test_bins_match_throughput_convention(self):
        series = segments_to_timeseries(
            [(0.0, 1.0, 8.0), (1.0, 2.0, 4.0)], 0.5, start=0.0, end=2.0
        )
        assert list(series.times) == pytest.approx([0.5, 1.0, 1.5, 2.0])
        assert list(series.values) == pytest.approx([8.0, 8.0, 4.0, 4.0])

    def test_partial_overlap_averages_within_bin(self):
        series = segments_to_timeseries(
            [(0.0, 0.5, 8.0)], 1.0, start=0.0, end=1.0
        )
        assert list(series.values) == pytest.approx([4.0])

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            segments_to_timeseries([], 0.0, start=0.0, end=1.0)


class TestWorkload:
    def test_deterministic_for_seed(self):
        _, paths = paper_scenario()
        first = heavy_tailed_workload(paths, flows=50, seed=11)
        second = heavy_tailed_workload(paths, flows=50, seed=11)
        assert first == second
        assert len(first) == 50

    def test_arrivals_sorted_and_sizes_positive(self):
        _, paths = paper_scenario()
        flows = heavy_tailed_workload(paths, flows=100, seed=5)
        starts = [flow.start for flow in flows]
        assert starts == sorted(starts)
        assert all(flow.size_bytes >= 1 for flow in flows)
        assert flows[0].name == "flow-00000"

    def test_pareto_sampler_respects_floor_and_mean(self):
        sampler = pareto_size_sampler(1_000_000, min_bytes=1000)
        rng = random.Random(1)
        samples = [sampler(rng) for _ in range(5000)]
        assert min(samples) >= 1000
        # alpha=1.5 has infinite variance; the sample mean is only loosely
        # pinned, so just check the order of magnitude.
        mean = sum(samples) / len(samples)
        assert 200_000 < mean < 5_000_000

    def test_invalid_parameters_rejected(self):
        _, paths = paper_scenario()
        with pytest.raises(ConfigurationError):
            heavy_tailed_workload(paths, flows=0, seed=1)
        with pytest.raises(ConfigurationError):
            heavy_tailed_workload([], flows=5, seed=1)
        with pytest.raises(ConfigurationError):
            pareto_size_sampler(1000, alpha=1.0)
