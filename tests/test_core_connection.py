"""MptcpConnection: construction, data striping, statistics."""

import pytest

from repro.core.connection import MptcpConnection
from repro.errors import ConfigurationError
from repro.netsim.network import Network
from repro.topologies.paper import paper_scenario

from .conftest import make_two_path_scenario


def build_paper_connection(cc="cubic", **kwargs):
    topology, paths = paper_scenario()
    network = Network(topology)
    connection = MptcpConnection(
        network, "s", "d", paths, congestion_control=cc, default_path_index=1, **kwargs
    )
    return network, connection


class TestConstruction:
    def test_three_subflows_with_tags(self):
        _, connection = build_paper_connection()
        assert len(connection.subflows) == 3
        assert sorted(sf.tag for sf in connection.subflows) == [1, 2, 3]

    def test_default_path_is_path_2(self):
        _, connection = build_paper_connection()
        assert connection.default_subflow.path.name == "Path 2"

    def test_agents_registered_on_both_hosts(self):
        network, connection = build_paper_connection()
        src, dst = network.host("s"), network.host("d")
        for subflow in connection.subflows:
            assert (connection.flow_id, subflow.subflow_id) in src._agents
            assert (connection.flow_id, subflow.subflow_id) in dst._agents

    def test_coupled_cc_shares_one_group(self):
        _, connection = build_paper_connection(cc="lia")
        groups = {id(sf.cc.group) for sf in connection.subflows}
        assert len(groups) == 1
        assert len(connection.coupling_group) == 3

    def test_raw_node_lists_accepted(self):
        topology, paths = make_two_path_scenario()
        network = Network(topology)
        connection = MptcpConnection(
            network, "s", "d", [list(p.nodes) for p in paths], congestion_control="lia"
        )
        assert len(connection.subflows) == 2

    def test_subflow_lookup_by_tag(self):
        _, connection = build_paper_connection()
        assert connection.subflow_by_tag(2).path.name == "Path 2"
        with pytest.raises(ConfigurationError):
            connection.subflow_by_tag(9)

    def test_same_endpoints_rejected(self):
        topology, paths = paper_scenario()
        network = Network(topology)
        with pytest.raises(ConfigurationError):
            MptcpConnection(network, "s", "s", paths)

    def test_paths_or_path_manager_required(self):
        topology, _ = paper_scenario()
        network = Network(topology)
        with pytest.raises(ConfigurationError):
            MptcpConnection(network, "s", "d", None)

    def test_unique_flow_ids(self):
        topology, paths = make_two_path_scenario()
        network = Network(topology)
        a = MptcpConnection(network, "s", "d", paths)
        b = MptcpConnection(network, "d", "s", [list(reversed(p.nodes)) for p in paths])
        assert a.flow_id != b.flow_id


class TestDataStriping:
    def test_request_data_assigns_increasing_dsn(self):
        _, connection = build_paper_connection()
        sender = connection.subflows[0].sender
        first = connection.request_data(sender, 1400)
        second = connection.request_data(sender, 1400)
        assert first == (0, 1400)
        assert second == (1400, 1400)

    def test_on_data_acked_updates_subflow_and_allocator(self):
        _, connection = build_paper_connection()
        subflow = connection.subflows[0]
        connection.request_data(subflow.sender, 1400)
        connection.on_data_acked(subflow.sender, 0, 1400, now=0.1)
        assert subflow.acked_bytes == 1400
        assert connection.bytes_acked == 1400

    def test_receiver_side_reassembly(self):
        _, connection = build_paper_connection()
        assert connection.on_subflow_data(0, 1400, 1400, now=0.1) == 0
        assert connection.on_subflow_data(1, 0, 1400, now=0.2) == 2800
        assert connection.bytes_delivered == 2800


class TestRunningConnection:
    def test_short_run_delivers_data_on_all_subflows(self):
        network, connection = build_paper_connection()
        connection.start(0.0)
        network.run(0.4)
        assert connection.bytes_delivered > 0
        assert all(sf.acked_bytes > 0 for sf in connection.subflows)

    def test_join_delay_staggers_subflow_start(self):
        network, connection = build_paper_connection(join_delay=0.1)
        connection.start(0.0)
        network.run(0.05)
        started = [sf for sf in connection.subflows if sf.sender.stats.segments_sent > 0]
        assert len(started) == 1
        assert started[0].is_default

    def test_total_throughput_positive_and_bounded(self):
        network, connection = build_paper_connection()
        connection.start(0.0)
        network.run(0.5)
        total = connection.total_throughput_mbps(0.5)
        assert 0 < total < 101.0  # cannot exceed the sum of access capacities

    def test_finite_transfer_stops(self):
        network, connection = build_paper_connection(total_bytes=300_000)
        connection.start(0.0)
        network.run(1.0)
        assert connection.bytes_acked == 300_000
        assert connection.reassembler.data_ack == 300_000

    def test_summary_structure(self):
        network, connection = build_paper_connection()
        connection.start(0.0)
        network.run(0.2)
        summary = connection.summary()
        assert summary["subflows"] == 3
        assert summary["congestion_control"] == "cubic"
        assert set(summary["per_subflow_mbps"]) == {"Path 1", "Path 2", "Path 3"}

    def test_subflow_throughputs_keyed_by_id(self):
        network, connection = build_paper_connection()
        connection.start(0.0)
        network.run(0.3)
        per_subflow = connection.subflow_throughputs_mbps(0.3)
        assert set(per_subflow) == {0, 1, 2}
        assert all(v >= 0 for v in per_subflow.values())

    def test_send_buffer_limits_outstanding_data(self):
        network, connection = build_paper_connection(send_buffer_bytes=64_000)
        connection.start(0.0)
        network.run(0.3)
        assert connection.allocator.outstanding_bytes <= 64_000
        assert connection.bytes_delivered > 0
