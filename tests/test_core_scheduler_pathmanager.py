"""MPTCP schedulers and path managers."""

import pytest

from repro.core.connection import MptcpConnection
from repro.core.path_manager import (
    FullMeshPathManager,
    NdiffportsPathManager,
    TagPathManager,
)
from repro.core.scheduler import (
    MinRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.errors import ConfigurationError
from repro.model.paths import Path
from repro.netsim.network import Network
from repro.topologies.paper import paper_paths

from .conftest import make_two_path_scenario


class TestSchedulerFactory:
    def test_known_names(self):
        assert isinstance(make_scheduler("minrtt"), MinRttScheduler)
        assert isinstance(make_scheduler("default"), MinRttScheduler)
        assert isinstance(make_scheduler("roundrobin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("redundant"), RedundantScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("blest")


def build_connection(scheduler="minrtt", send_buffer_bytes=None, cc="cubic", started=True):
    topology, paths = make_two_path_scenario()
    network = Network(topology)
    connection = MptcpConnection(
        network,
        "s",
        "d",
        paths,
        congestion_control=cc,
        scheduler=scheduler,
        send_buffer_bytes=send_buffer_bytes,
    )
    if started:
        # Mark the senders established without transmitting anything (a real
        # run calls sender.start(), which would immediately pull data through
        # the scheduler and perturb these allocation unit tests).
        for subflow in connection.subflows:
            subflow.sender._started = True
    return network, connection


class TestSchedulerAllocation:
    def test_minrtt_grants_freely_with_unbounded_buffer(self):
        _, connection = build_connection("minrtt")
        subflow = connection.subflows[0]
        grant = connection.scheduler.allocate(connection, subflow, 1400)
        assert grant == (0, 1400)

    def test_minrtt_prefers_lowest_rtt_when_buffer_scarce(self):
        _, connection = build_connection("minrtt", send_buffer_bytes=1400)
        fast, slow = connection.subflows
        fast.sender.rtt.update(0.005)
        slow.sender.rtt.update(0.050)
        # The slow subflow asks first but must be refused; the fast one is served.
        assert connection.scheduler.allocate(connection, slow, 1400) is None
        assert connection.scheduler.allocate(connection, fast, 1400) is not None

    def test_roundrobin_rotates_when_buffer_scarce(self):
        _, connection = build_connection("roundrobin", send_buffer_bytes=1400)
        first, second = connection.subflows
        grant = connection.scheduler.allocate(connection, first, 700)
        assert grant is not None
        connection.allocator.on_acked(700)
        # After the first grant the pointer moved to the second subflow.
        assert connection.scheduler.allocate(connection, first, 700) is None
        assert connection.scheduler.allocate(connection, second, 700) is not None

    def test_roundrobin_skips_window_limited_subflow(self):
        # Regression: a window-limited subflow at the head of the rotation
        # used to refuse every other subflow until it recovered, stalling
        # the whole connection (head-of-line blocking).
        _, connection = build_connection("roundrobin", send_buffer_bytes=4200)
        first, second = connection.subflows
        # Fill the first subflow's congestion window: it cannot send.
        first.sender.snd_nxt = first.sender.snd_una + int(first.sender.effective_window)
        assert first.sender.flight_size + first.sender.mss > first.sender.effective_window
        # The second subflow is served even though the pointer is on the first.
        assert connection.scheduler.allocate(connection, second, 700) is not None
        # Repeatedly: the stalled subflow never starves the connection.
        connection.allocator.on_acked(700)
        assert connection.scheduler.allocate(connection, second, 700) is not None

    def test_roundrobin_stalled_subflow_regains_turn(self):
        _, connection = build_connection("roundrobin", send_buffer_bytes=4200)
        first, second = connection.subflows
        first.sender.snd_nxt = first.sender.snd_una + int(first.sender.effective_window)
        assert connection.scheduler.allocate(connection, second, 700) is not None
        # Window opens again: the rotation comes back to the first subflow.
        first.sender.snd_nxt = first.sender.snd_una
        connection.allocator.on_acked(700)
        assert connection.scheduler.allocate(connection, second, 700) is None
        assert connection.scheduler.allocate(connection, first, 700) is not None

    def test_roundrobin_skips_not_yet_established_subflow(self):
        # A subflow that has not joined yet (join_delay) must not hold the
        # rotation: it has no window limit but cannot send either.
        _, connection = build_connection("roundrobin", send_buffer_bytes=4200)
        first, second = connection.subflows
        second.sender._started = False
        assert connection.scheduler.allocate(connection, first, 700) is not None
        connection.allocator.on_acked(700)
        # The pointer moved to the unjoined subflow; the established one is
        # still served instead of the connection stalling.
        assert connection.scheduler.allocate(connection, first, 700) is not None

    def test_roundrobin_join_delay_does_not_stall_transfer(self):
        # End-to-end regression: with a bounded send buffer and a late
        # MP_JOIN, the round-robin rotation used to park on the unjoined
        # subflow and deliver nothing until it came up.
        topology, paths = make_two_path_scenario()
        network = Network(topology)
        connection = MptcpConnection(
            network,
            "s",
            "d",
            paths,
            congestion_control="cubic",
            scheduler="roundrobin",
            send_buffer_bytes=64_000,
            join_delay=1.0,
        )
        connection.start(at=0.0)
        network.run(1.0)
        # Well before the second subflow joins, the first one is moving data.
        assert connection.bytes_delivered > 100_000

    def test_redundant_duplicates_the_stream(self):
        _, connection = build_connection("redundant")
        a, b = connection.subflows
        scheduler = connection.scheduler
        first = scheduler.allocate(connection, a, 1400)
        duplicate = scheduler.allocate(connection, b, 1400)
        assert first == (0, 1400)
        assert duplicate == (0, 1400)
        # The next request on subflow a continues past the duplicated range.
        assert scheduler.allocate(connection, a, 1400) == (1400, 1400)


class TestTagPathManager:
    def test_builds_one_subflow_per_path(self, paper_network):
        network, paths = paper_network
        manager = TagPathManager(paths, default_index=1)
        subflows = manager.build_subflows(network, "s", "d")
        assert len(subflows) == 3
        assert {sf.tag for sf in subflows} == {1, 2, 3}

    def test_default_subflow_listed_first(self, paper_network):
        network, paths = paper_network
        manager = TagPathManager(paths, default_index=1)
        subflows = manager.build_subflows(network, "s", "d")
        assert subflows[0].is_default
        assert subflows[0].path.name == "Path 2"

    def test_routes_installed_for_each_tag(self, paper_network):
        network, paths = paper_network
        TagPathManager(paths, default_index=0).build_subflows(network, "s", "d")
        for path in paths:
            installed = network.routing.installed_path("s", "d", path.tag)
            assert installed == list(path.nodes)

    def test_rejects_paths_with_wrong_endpoints(self, paper_network):
        network, _ = paper_network
        bad = [Path(["v1", "v4", "d"], tag=1)]
        with pytest.raises(ConfigurationError):
            TagPathManager(bad).build_subflows(network, "s", "d")

    def test_rejects_empty_path_list(self):
        with pytest.raises(ConfigurationError):
            TagPathManager([])

    def test_rejects_bad_default_index(self):
        with pytest.raises(ConfigurationError):
            TagPathManager(paper_paths(), default_index=5)


class TestNdiffportsPathManager:
    def test_all_subflows_share_the_default_route(self, paper_network):
        network, _ = paper_network
        manager = NdiffportsPathManager(subflow_count=3)
        subflows = manager.build_subflows(network, "s", "d")
        assert len(subflows) == 3
        assert len({sf.path.nodes for sf in subflows}) == 1

    def test_subflow_count_validated(self):
        with pytest.raises(ConfigurationError):
            NdiffportsPathManager(subflow_count=0)


class TestFullMeshPathManager:
    def test_discovers_distinct_paths(self, paper_network):
        network, _ = paper_network
        manager = FullMeshPathManager(max_subflows=3)
        subflows = manager.build_subflows(network, "s", "d")
        assert len(subflows) == 3
        assert len({sf.path.nodes for sf in subflows}) == 3

    def test_respects_max_subflows(self, paper_network):
        network, _ = paper_network
        subflows = FullMeshPathManager(max_subflows=2).build_subflows(network, "s", "d")
        assert len(subflows) == 2

    def test_max_subflows_validated(self):
        with pytest.raises(ConfigurationError):
            FullMeshPathManager(max_subflows=0)
