"""Dynamics metrics, and the convergence.py edge cases dynamics exposes.

The failover-gap / re-convergence / capacity-tracking metrics are exercised
on hand-built series with known answers; the convergence helpers are pinned
on the edge cases the dynamics pipeline now feeds them (empty series, a flow
that never re-settles after an event, settle time measured from a mid-run
epoch).
"""

import json

import pytest

from repro.measure.convergence import (
    analyze_convergence,
    stability_coefficient,
    sustained_time_to_fraction,
    time_to_fraction,
)
from repro.measure.dynamics import (
    analyze_dynamics,
    capacity_at,
    capacity_tracking_error,
    failover_gap,
    reconvergence_time,
)
from repro.measure.sampling import TimeSeries
from repro.netsim.dynamics import DynamicsSpec, LinkDown, Schedule


def series(values, interval=0.1, start=0.0):
    times = [start + (i + 1) * interval for i in range(len(values))]
    return TimeSeries(times=times, values=list(values), interval=interval)


def flap_series():
    """Baseline 10 until t=2.0, outage near zero until 2.5, recovery to 9."""
    return series([10.0] * 20 + [0.5] * 5 + [9.0] * 15)


class TestFailoverGap:
    def test_gap_measured_from_event_to_recovery(self):
        s = flap_series()
        gap = failover_gap(s, 2.0)
        # First sample >= 0.8 * baseline(10) is at t=2.6 -> gap 0.6 s.
        assert gap == pytest.approx(0.6)

    def test_no_dip_means_zero_gap(self):
        s = series([10.0] * 30)
        assert failover_gap(s, 1.5) == 0.0

    def test_never_recovers_returns_none(self):
        s = series([10.0] * 20 + [0.5] * 20)
        assert failover_gap(s, 2.0) is None

    def test_no_baseline_returns_none(self):
        assert failover_gap(series([]), 1.0) is None
        assert failover_gap(series([0.0] * 20), 1.0) is None

    def test_event_after_series_end_returns_none(self):
        s = series([10.0] * 10)
        assert failover_gap(s, 5.0) is None

    def test_reference_caps_recovery_level_for_lower_capacity_failover(self):
        # Wi-Fi at 50 dies; cellular (20) takes over and fills its capacity.
        # Against the pre-event baseline alone this reads as "never
        # recovered"; with the post-event capacity as reference the
        # handover is recognised as complete.
        s = series([50.0] * 20 + [2.0] * 5 + [19.5] * 15)
        assert failover_gap(s, 2.0) is None
        assert failover_gap(s, 2.0, reference=20.0) == pytest.approx(0.6)
        # A reference above the baseline never *raises* the bar.
        assert failover_gap(s, 2.0, reference=100.0) is None


class TestReconvergence:
    def test_settle_time_from_mid_run_epoch(self):
        s = flap_series()
        # Post-event reference 9.0: samples >= 0.85*9 start at t=2.6; the
        # hold of 3 completes at t=2.8 -> 0.8 s after the epoch.
        assert reconvergence_time(s, 2.0, 9.0) == pytest.approx(0.8)

    def test_self_reference_uses_post_event_steady_state(self):
        s = flap_series()
        value = reconvergence_time(s, 2.0)
        assert value == pytest.approx(0.8)

    def test_never_resettles_returns_none(self):
        s = series([10.0] * 20 + [0.5] * 20)
        assert reconvergence_time(s, 2.0, 9.0) is None

    def test_empty_and_out_of_range_epochs(self):
        assert reconvergence_time(series([]), 1.0) is None
        assert reconvergence_time(series([1.0] * 5), 2.0) is None


class TestCapacityTracking:
    def test_capacity_at_steps(self):
        profile = [(0.0, 50.0), (1.5, 20.0), (3.0, 50.0)]
        assert capacity_at(profile, 0.0) == 50.0
        assert capacity_at(profile, 1.49) == 50.0
        assert capacity_at(profile, 1.5) == 20.0
        assert capacity_at(profile, 10.0) == 50.0

    def test_perfect_tracking_has_zero_error(self):
        profile = [(0.0, 10.0), (2.0, 5.0)]
        s = series([10.0] * 20 + [5.0] * 20)
        assert capacity_tracking_error(s, profile, settle=0.0) == pytest.approx(0.0)

    def test_error_excludes_settle_window(self):
        profile = [(0.0, 10.0), (2.0, 5.0)]
        # One horrible sample right after the step, inside the settle window.
        values = [10.0] * 20 + [0.0] * 3 + [5.0] * 17
        s = series(values)
        assert capacity_tracking_error(s, profile, settle=0.35) == pytest.approx(0.0)
        assert capacity_tracking_error(s, profile, settle=0.0) > 0.0

    def test_empty_inputs_return_none(self):
        assert capacity_tracking_error(series([]), [(0.0, 10.0)]) is None
        assert capacity_tracking_error(series([1.0]), []) is None


class TestAnalyzeDynamics:
    def test_report_round_trips_to_json(self):
        spec = DynamicsSpec(
            schedule=Schedule().at(2.0, LinkDown("a", "b")),
            capacity_profile=((0.0, 10.0), (2.0, 9.0)),
        )
        report = analyze_dynamics(flap_series(), spec)
        assert [e.epoch for e in report.epochs] == [2.0]
        assert report.epochs[0].failover_gap_s == pytest.approx(0.6)
        assert report.worst_gap_s == pytest.approx(0.6)
        assert report.tracking_error is not None
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["epochs"][0]["epoch_s"] == 2.0

    def test_epochs_default_to_schedule_times(self):
        spec = DynamicsSpec(schedule=Schedule().at(1.0, LinkDown("a", "b")))
        report = analyze_dynamics(series([5.0] * 30), spec)
        assert [e.epoch for e in report.epochs] == [1.0]
        assert report.tracking_error is None


class TestConvergenceEdgeCases:
    """convergence.py paths the dynamics pipeline now exercises."""

    def test_empty_series(self):
        empty = series([])
        assert sustained_time_to_fraction(empty, 10.0) is None
        assert time_to_fraction(empty, 10.0) is None
        assert stability_coefficient(empty) == 0.0
        report = analyze_convergence(empty, 10.0)
        assert report.achieved_mean == 0.0
        assert not report.reached_optimum
        assert report.utilization_of_optimum == 0.0

    def test_never_settles_after_event(self):
        # A flow that collapses mid-run and never returns: the sustained
        # threshold is reached before the event but never afterwards.
        s = series([10.0] * 10 + [1.0] * 30)
        post_event = s.window(1.0, s.times[-1])
        assert sustained_time_to_fraction(post_event, 10.0, 0.95, hold=3) is None

    def test_settle_time_from_mid_run_epoch_window(self):
        s = flap_series()
        post_event = s.window(2.0, s.times[-1])
        settled_at = sustained_time_to_fraction(post_event, 9.0, 0.95, hold=3)
        assert settled_at == pytest.approx(2.8)  # absolute time of 3rd sample

    def test_nonpositive_optimum(self):
        s = series([1.0] * 10)
        assert sustained_time_to_fraction(s, 0.0) is None
        assert time_to_fraction(s, -1.0) is None
        report = analyze_convergence(s, 0.0)
        assert report.utilization_of_optimum == 0.0

    def test_hold_resets_on_dip(self):
        s = series([10.0, 10.0, 1.0, 10.0, 10.0, 10.0])
        assert sustained_time_to_fraction(s, 10.0, 0.95, hold=3) == pytest.approx(0.6)
