"""Packet-level TCP sender/receiver over a simulated link.

These are integration tests of the transport substrate: the sender and
receiver run on hosts of a built network and must deliver a byte stream
reliably, recover from queue drops via fast retransmit / RTO and keep the
congestion window consistent.
"""

import pytest

from repro.netsim.network import Network
from repro.tcp.connection import BulkDataAdapter, TcpConnection

from .conftest import make_chain_topology


def run_single_tcp(capacity_mbps=50.0, duration=0.5, cc="cubic", total_bytes=None, hops=1):
    topology = make_chain_topology(capacity_mbps=capacity_mbps, hops=hops)
    network = Network(topology)
    path = ["s"] + [f"r{i + 1}" for i in range(hops)] + ["d"]
    network.install_path(path, tag=1, as_default=True)
    connection = TcpConnection(network, "s", "d", cc=cc, tag=1, total_bytes=total_bytes)
    connection.start(0.0)
    network.run(duration)
    return network, connection


class TestBulkTransferDelivery:
    def test_receiver_gets_contiguous_stream(self):
        _, connection = run_single_tcp(duration=0.3)
        receiver = connection.receiver
        assert receiver.rcv_nxt > 0
        assert receiver.stats.bytes_received == receiver.rcv_nxt

    def test_bytes_acked_never_exceed_bytes_sent(self):
        _, connection = run_single_tcp(duration=0.3)
        assert connection.bytes_acked <= connection.sender.stats.bytes_sent

    def test_throughput_approaches_link_capacity(self):
        _, connection = run_single_tcp(capacity_mbps=20.0, duration=1.0)
        achieved = connection.throughput_mbps(1.0)
        assert achieved > 0.7 * 20.0
        assert achieved <= 20.0 + 1.0

    def test_finite_transfer_completes_and_stops(self):
        total = 200 * 1000
        _, connection = run_single_tcp(capacity_mbps=50.0, duration=1.0, total_bytes=total)
        assert connection.bytes_acked == total
        assert connection.sender.flight_size == 0

    def test_multi_hop_path_works(self):
        _, connection = run_single_tcp(capacity_mbps=30.0, duration=0.5, hops=3)
        assert connection.throughput_mbps(0.5) > 0.5 * 30.0

    def test_reno_also_fills_the_link(self):
        _, connection = run_single_tcp(capacity_mbps=20.0, duration=1.0, cc="reno")
        assert connection.throughput_mbps(1.0) > 0.7 * 20.0


class TestLossRecovery:
    # Reno has no HyStart, so its slow-start overshoot reliably overflows the
    # bottleneck queue and exercises the loss-recovery machinery.
    def test_queue_drops_trigger_fast_retransmit(self):
        network, connection = run_single_tcp(capacity_mbps=10.0, duration=1.0, cc="reno")
        assert network.total_drops() > 0
        assert connection.sender.stats.fast_retransmits > 0

    def test_stream_stays_contiguous_despite_losses(self):
        network, connection = run_single_tcp(capacity_mbps=10.0, duration=1.0, cc="reno")
        assert network.total_drops() > 0
        receiver = connection.receiver
        # Cumulative ACK equals delivered bytes: no holes were skipped.
        assert receiver.stats.bytes_received == receiver.rcv_nxt

    def test_retransmissions_do_not_exceed_drops_by_much(self):
        network, connection = run_single_tcp(capacity_mbps=10.0, duration=1.0, cc="reno")
        stats = connection.sender.stats
        # Every drop needs a retransmission; spurious retransmissions should
        # stay within a small factor of the real losses.
        assert stats.retransmissions >= 1
        assert stats.retransmissions <= 3 * network.total_drops() + 10

    def test_retransmission_counter_consistent(self):
        _, connection = run_single_tcp(capacity_mbps=10.0, duration=1.0, cc="reno")
        stats = connection.sender.stats
        assert stats.retransmissions >= stats.fast_retransmits

    def test_rtt_estimator_collected_samples(self):
        _, connection = run_single_tcp(duration=0.3)
        assert connection.sender.rtt.samples > 10
        assert connection.sender.rtt.srtt > 0.002  # at least the propagation delay


class TestSenderWindowing:
    def test_flight_bounded_by_window_in_lossless_run(self):
        # With a queue far larger than any window reached in 0.3 s there are no
        # losses, so the flight size must track the congestion window exactly.
        topology = make_chain_topology(capacity_mbps=50.0, queue_packets=5000)
        network = Network(topology)
        network.install_path(["s", "r1", "d"], tag=1, as_default=True)
        connection = TcpConnection(network, "s", "d", cc="cubic", tag=1)
        connection.start(0.0)

        violations = []

        def check():
            sender = connection.sender
            if sender.flight_size > sender.cc.cwnd_bytes + sender.mss:
                violations.append(network.sim.now)
            if network.sim.now < 0.3:
                network.sim.schedule(0.0005, check)

        network.sim.schedule(0.0005, check)
        network.run(0.35)
        assert network.total_drops() == 0
        assert violations == []

    def test_pipe_never_exceeds_flight(self):
        _, connection = run_single_tcp(capacity_mbps=20.0, duration=0.5, cc="reno")
        sender = connection.sender
        assert 0 <= sender.pipe <= sender.flight_size

    def test_sender_ignores_data_packets(self, chain_network):
        from repro.netsim.packet import Packet

        connection = TcpConnection(chain_network, "s", "d", tag=1)
        data = Packet("d", "s", 1460, payload_len=1400, flow_id=connection.flow_id)
        connection.sender.handle_packet(data)  # must not raise
        assert connection.sender.snd_una == 0

    def test_receiver_ignores_ack_packets(self, chain_network):
        from repro.netsim.packet import Packet

        connection = TcpConnection(chain_network, "s", "d", tag=1)
        ack = Packet("s", "d", 60, is_ack=True, ack=100, flow_id=connection.flow_id)
        connection.receiver.handle_packet(ack)  # must not raise
        assert connection.receiver.rcv_nxt == 0


class TestBulkDataAdapter:
    def test_unbounded_adapter_always_grants(self):
        adapter = BulkDataAdapter()
        dsn, length = adapter.request_data(None, 1400)
        assert (dsn, length) == (0, 1400)
        dsn, length = adapter.request_data(None, 1400)
        assert dsn == 1400

    def test_bounded_adapter_stops_at_total(self):
        adapter = BulkDataAdapter(total_bytes=2000)
        assert adapter.request_data(None, 1400) == (0, 1400)
        assert adapter.request_data(None, 1400) == (1400, 600)
        assert adapter.request_data(None, 1400) is None

    def test_acked_bytes_recorded(self):
        adapter = BulkDataAdapter()
        adapter.on_data_acked(None, 0, 1400, now=0.1)
        assert adapter.acked_bytes == 1400
        assert adapter.last_ack_time == 0.1


class TestTcpConnectionApi:
    def test_same_endpoints_rejected(self, chain_network):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TcpConnection(chain_network, "s", "s")

    def test_flow_ids_unique(self, chain_network):
        a = TcpConnection(chain_network, "s", "d", tag=1)
        b = TcpConnection(chain_network, "d", "s", tag=1)
        assert a.flow_id != b.flow_id

    def test_throughput_zero_before_start(self, chain_network):
        connection = TcpConnection(chain_network, "s", "d", tag=1)
        assert connection.throughput_mbps(1.0) == 0.0
