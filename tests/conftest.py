"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model.paths import Path, PathSet
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.topology import Topology
from repro.topologies.paper import paper_scenario


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture(params=["python", "compiled"])
def each_kernel(request) -> str:
    """Run the test once per kernel (``repro.kernel.override``).

    Golden-equivalence suites use this to pin both the pure-Python and the
    compiled kernel against the same golden files.  The ``compiled`` leg
    skips (rather than silently passing on the Python fallback) when the
    extension cannot be built, so a green run genuinely covered both.
    """
    from repro import kernel

    mode = request.param
    if mode == "compiled":
        available, reason = kernel.compiled_available()
        if not available:
            pytest.skip(f"compiled kernel unavailable: {reason}")
    with kernel.override(mode):
        yield mode


def make_chain_topology(
    capacity_mbps: float = 100.0,
    delay: float = 0.001,
    queue_packets: int = 50,
    hops: int = 1,
) -> Topology:
    """s -- r1 -- ... -- rN -- d chain with uniform links."""
    topology = Topology("chain")
    topology.add_host("s")
    topology.add_host("d")
    previous = "s"
    for index in range(hops):
        router = f"r{index + 1}"
        topology.add_router(router)
        topology.add_link(previous, router, capacity_mbps, delay, queue_packets)
        previous = router
    topology.add_link(previous, "d", capacity_mbps, delay, queue_packets)
    return topology


def chain_path(hops: int = 1, tag: int | None = 1) -> Path:
    nodes = ["s"] + [f"r{i + 1}" for i in range(hops)] + ["d"]
    return Path(nodes, tag=tag, name="chain")


@pytest.fixture
def chain_network() -> Network:
    """A built s--r1--d network with a 100 Mbps path installed under tag 1."""
    network = Network(make_chain_topology())
    network.install_path(["s", "r1", "d"], tag=1, as_default=True)
    return network


@pytest.fixture
def slow_chain_network() -> Network:
    """A built s--r1--d network with a 20 Mbps bottleneck."""
    network = Network(make_chain_topology(capacity_mbps=20.0))
    network.install_path(["s", "r1", "d"], tag=1, as_default=True)
    return network


@pytest.fixture
def paper_network():
    """The built paper network plus its path set."""
    topology, paths = paper_scenario()
    return Network(topology), paths


@pytest.fixture
def paper_setup():
    """Topology and paths of the paper scenario (not yet built)."""
    return paper_scenario()


def make_two_path_scenario(cap1: float = 30.0, cap2: float = 60.0):
    """Two fully disjoint paths with the given capacities."""
    topology = Topology("two-disjoint")
    topology.add_host("s")
    topology.add_host("d")
    topology.add_router("a")
    topology.add_router("b")
    topology.add_link("s", "a", cap1, 0.001, 50)
    topology.add_link("a", "d", cap1 * 2, 0.001, 50)
    topology.add_link("s", "b", cap2, 0.001, 50)
    topology.add_link("b", "d", cap2 * 2, 0.001, 50)
    paths = PathSet(
        [
            Path(["s", "a", "d"], tag=1, name="Path 1"),
            Path(["s", "b", "d"], tag=2, name="Path 2"),
        ]
    )
    return topology, paths
