"""Chaos specs and resume-under-chaos: every fault kind must converge."""

import json

import pytest

from repro.errors import FabricError
from repro.experiments.campaign import CampaignSpec, ResultStore
from repro.experiments.chaos import FAULT_KINDS, ChaosSpec
from repro.experiments.fabric import (
    FabricConfig,
    merge_stores,
    run_campaign_fabric,
)


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="test",
        kind="single",
        scenarios=("paper",),
        congestion_controls=("cubic", "lia"),
        rate_scales=(1.0,),
        duration=0.3,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestChaosSpec:
    def test_action_fires_only_below_fire_attempts(self):
        spec = ChaosSpec(crash_points=(1,), fire_attempts=2)
        assert spec.action_for(1, attempt=0) == "crash"
        assert spec.action_for(1, attempt=1) == "crash"
        assert spec.action_for(1, attempt=2) is None
        assert spec.action_for(0, attempt=0) is None

    def test_faulted_indices_span_all_kinds(self):
        spec = ChaosSpec(crash_points=(3,), hang_points=(1,),
                         torn_points=(2,), error_points=(0,))
        assert spec.faulted_indices() == (0, 1, 2, 3)
        assert "crash:3" in spec.describe()

    def test_one_point_cannot_carry_two_faults(self):
        with pytest.raises(FabricError, match="assigned both"):
            ChaosSpec(crash_points=(0,), hang_points=(0,))

    def test_negative_index_rejected(self):
        with pytest.raises(FabricError, match="non-negative"):
            ChaosSpec(crash_points=(-1,))

    def test_invalid_fire_attempts_and_hang_duration_rejected(self):
        with pytest.raises(FabricError):
            ChaosSpec(fire_attempts=0)
        with pytest.raises(FabricError):
            ChaosSpec(hang_duration=0.0)

    def test_sample_is_deterministic_and_disjoint(self):
        one = ChaosSpec.sample(10, seed=3, crashes=2, hangs=2, errors=2)
        two = ChaosSpec.sample(10, seed=3, crashes=2, hangs=2, errors=2)
        assert one.faulted_indices() == two.faulted_indices()
        assert len(one.faulted_indices()) == 6  # no point drawn twice
        assert one.faulted_indices() != ChaosSpec.sample(
            10, seed=4, crashes=2, hangs=2, errors=2
        ).faulted_indices()

    def test_sample_rejects_overfull_plans(self):
        with pytest.raises(FabricError, match="cannot fault"):
            ChaosSpec.sample(3, crashes=2, hangs=2)

    def test_parse_cli_entries(self):
        spec = ChaosSpec.parse(["crash=0", "hang=2"], hang_duration=5.0)
        assert spec.action_for(0) == "crash"
        assert spec.action_for(2) == "hang"
        assert spec.hang_duration == 5.0

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(FabricError, match="bad chaos entry"):
            ChaosSpec.parse(["explode=0"])
        with pytest.raises(FabricError, match="not an integer"):
            ChaosSpec.parse(["crash=zero"])


class TestResumeUnderChaos:
    """Satellite: every fault kind must recover across worker invocations."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_reinvoked_campaign_converges_after_any_single_fault(
        self, tmp_path, kind
    ):
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        chaos = ChaosSpec(
            hang_duration=10.0, **{f"{kind}_points": (0,)}
        )
        crashed_worker = FabricConfig(
            worker_id="w1", lease_ttl=60.0, point_timeout=1.5,
            backoff_base=0.0, max_rounds=1,
        )
        first = run_campaign_fabric(
            spec, store, fabric=crashed_worker, chaos=chaos, max_workers=1
        )
        # The fault hit point 0: it is not completed yet, but the healthy
        # point finished and the store survived (torn tails, missing records).
        assert len(first.ok_records) == 1

        recovery_worker = FabricConfig(
            worker_id="w2", lease_ttl=60.0, point_timeout=15.0,
            backoff_base=0.0,
        )
        second = run_campaign_fabric(
            spec, store, fabric=recovery_worker, chaos=chaos, max_workers=1
        )
        # 100% terminal: every point completed, nothing deferred or pending.
        assert second.deferred == 0
        assert [r["status"] for r in second.records] == ["ok", "ok"]

        # Merging the (single) shard compacts to one record per key.
        merged = tmp_path / "merged.jsonl"
        report = merge_stores([store], merged)
        keys = [
            json.loads(line)["key"]
            for line in merged.read_text().splitlines()
        ]
        assert len(keys) == len(set(keys)) == 2
        assert report.completed == 2 and report.quarantined == 0

    def test_persistent_fault_converges_to_quarantine(self, tmp_path):
        """A fault outliving max_attempts must quarantine, not loop forever."""
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        chaos = ChaosSpec(error_points=(0,), fire_attempts=99)
        result = run_campaign_fabric(
            spec,
            store,
            fabric=FabricConfig(
                worker_id="w1", lease_ttl=60.0, max_attempts=3,
                backoff_base=0.0,
            ),
            chaos=chaos,
            max_workers=1,
        )
        statuses = sorted(r["status"] for r in result.records)
        assert statuses == ["ok", "quarantined"]
        assert result.deferred == 0
        assert result.quarantined_records[0]["attempts"] == 3
        assert result.summary()["quarantined"] == 1
        # Re-invocation leaves the quarantined point alone.
        again = run_campaign_fabric(
            spec, store,
            fabric=FabricConfig(worker_id="w1", lease_ttl=60.0,
                                max_attempts=3, backoff_base=0.0),
            chaos=chaos, max_workers=1,
        )
        assert again.executed == 0
        assert again.skipped == 2

    def test_torn_fault_leaves_a_loadable_store(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "store.jsonl")
        chaos = ChaosSpec(torn_points=(0,))
        run_campaign_fabric(
            spec, store,
            fabric=FabricConfig(worker_id="w1", lease_ttl=60.0,
                                point_timeout=5.0, backoff_base=0.0,
                                max_rounds=1),
            chaos=chaos, max_workers=1,
        )
        # The injected torn tail is either isolated or healed; every record
        # that made it to disk still loads.
        loaded = store.load()
        assert all(isinstance(record, dict) for record in loaded.values())
        run_campaign_fabric(
            spec, store,
            fabric=FabricConfig(worker_id="w2", lease_ttl=60.0,
                                point_timeout=15.0, backoff_base=0.0),
            chaos=chaos, max_workers=1,
        )
        statuses = {record["status"] for record in store.load().values()}
        assert statuses == {"ok"}
