"""Tests for the backend-agnostic workload subsystem.

Covers the seeded spec/plan layer (validation, dependency structure,
scaling, determinism), the FCT metrics, the runner on both fidelities --
including the headline guarantee that one compiled plan drives an
*identical* flow population on the packet and flow-level backends -- the
cross-backend FCT comparison, the workload campaign kind and the CLI
``workload`` command.
"""

import json
import math

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError, ModelError
from repro.experiments.campaign import CampaignSpec, workload_fct_campaign
from repro.experiments.multiflow import FlowSpec
from repro.measure.fct import (
    FctRecord,
    FctReport,
    fct_percentiles,
    page_load_times,
    percentile,
    size_decile_breakdown,
)
from repro.measure.validation import compare_workload_backends
from repro.topologies.generators import shared_bottleneck
from repro.workload import (
    ArrivalProcess,
    RequestResponseSpec,
    SizeDistribution,
    WorkloadConfig,
    WorkloadSpec,
    run_workload,
)
from repro.workload.scenarios import WORKLOAD_SCENARIOS, conferencing_load, web_page_load


def tiny_spec(**overrides) -> WorkloadSpec:
    """A small but structurally rich workload: pages, subresources, reuse."""
    defaults = dict(
        name="tiny",
        seed=7,
        sessions=4,
        arrival=ArrivalProcess(kind="poisson", rate_per_s=4.0),
        request=RequestResponseSpec(
            requests_per_session=3,
            response_size=SizeDistribution(kind="lognormal", mean_bytes=40_000, sigma=0.6),
            think_time_s=0.1,
            subresources=2,
            subresource_size=SizeDistribution(kind="lognormal", mean_bytes=10_000, sigma=0.5),
            idle_timeout_s=0.15,
        ),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def tiny_config(**overrides) -> WorkloadConfig:
    defaults = dict(
        name="tiny",
        scenario=shared_bottleneck(2, 50.0, 100.0),
        spec=tiny_spec(),
        duration=4.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestSpecValidation:
    def test_unknown_size_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SizeDistribution(kind="uniform")

    def test_pareto_needs_finite_mean(self):
        with pytest.raises(ConfigurationError):
            SizeDistribution(kind="pareto", alpha=1.0)

    def test_unknown_arrival_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalProcess(kind="weibull")

    def test_subresources_need_a_distribution(self):
        with pytest.raises(ConfigurationError):
            RequestResponseSpec(subresources=2)

    def test_session_count_positive(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(sessions=0)

    def test_path_weight_arity_checked_at_compile(self):
        spec = WorkloadSpec(sessions=1, path_weights=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            spec.compile(3)

    def test_scale_factors_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec().scaled(load=0.0)

    def test_unknown_backend_and_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(backend="quantum")
        with pytest.raises(ConfigurationError):
            WorkloadConfig(transport="sctp")


class TestPlanStructure:
    def test_pages_chain_and_subresources_fan_out(self):
        plan = tiny_spec().compile(2)
        session = plan.sessions[0]
        # 3 pages x (1 main + 2 subresources)
        assert len(session.transfers) == 9
        mains = [t for t in session.transfers if t.index % 3 == 0]
        assert [t.after for t in mains] == [-1, 0, 3]
        main_indices = {t.index for t in mains}
        for main in mains:
            # Subresources depend on their page's main transfer; the *next*
            # page's main also chains off it, so exclude mains here.
            subs = [
                t
                for t in session.transfers
                if t.after == main.index and t.index not in main_indices
            ]
            assert len(subs) == 2
            assert all(t.page == main.page and t.delay == 0.0 for t in subs)

    def test_arrivals_increase_monotonically(self):
        plan = tiny_spec(sessions=20).compile(2)
        starts = [s.start for s in plan.sessions]
        assert starts == sorted(starts)
        assert all(s > 0 for s in starts)

    def test_no_reuse_forces_fresh_connections(self):
        spec = tiny_spec()
        spec = spec.with_overrides(
            request=RequestResponseSpec(
                requests_per_session=3,
                response_size=SizeDistribution(kind="fixed", mean_bytes=10_000),
                think_time_s=0.1,
                reuse_connection=False,
            )
        )
        plan = spec.compile(1)
        for session in plan.sessions:
            fresh = [t.new_connection for t in session.transfers]
            assert fresh == [False, True, True]

    def test_scaled_load_and_size(self):
        spec = tiny_spec()
        scaled = spec.scaled(load=2.0, size=3.0)
        assert scaled.arrival.rate_per_s == spec.arrival.rate_per_s * 2.0
        assert scaled.request.response_size.mean_bytes == (
            spec.request.response_size.mean_bytes * 3.0
        )
        assert scaled.request.subresource_size.mean_bytes == (
            spec.request.subresource_size.mean_bytes * 3.0
        )
        # Neutral scaling is the identity (same object, same signature).
        assert spec.scaled() is spec

    def test_path_weights_steer_sessions(self):
        spec = tiny_spec(sessions=50, path_weights=(0.0, 1.0))
        plan = spec.compile(2)
        assert all(s.path_index == 1 for s in plan.sessions)


class TestDeterminism:
    """Same seed => identical population, across runs and across backends."""

    def test_recompile_is_bit_identical(self):
        spec = tiny_spec(sessions=30)
        first, second = spec.compile(2), spec.compile(2)
        assert first == second
        assert first.signature() == second.signature()

    def test_seed_changes_the_population(self):
        spec = tiny_spec(sessions=30)
        assert spec.compile(2).signature() != spec.with_overrides(seed=8).compile(2).signature()

    def test_signature_covers_structure(self):
        plan = tiny_spec().compile(2)
        # Same sessions, one size perturbed => different signature.
        import dataclasses

        session = plan.sessions[0]
        bumped = dataclasses.replace(
            session,
            transfers=(
                dataclasses.replace(
                    session.transfers[0],
                    size_bytes=session.transfers[0].size_bytes + 1,
                ),
            )
            + session.transfers[1:],
        )
        other = dataclasses.replace(plan, sessions=(bumped,) + plan.sessions[1:])
        assert other.signature() != plan.signature()

    def test_both_backends_execute_the_same_population(self):
        flow = run_workload(tiny_config(backend="flowlevel"))
        packet = run_workload(tiny_config(backend="packet"))
        assert flow.plan.signature() == packet.plan.signature()
        # Completed transfers carry identical names and sizes per name.
        flow_sizes = {r.name: r.size_bytes for r in flow.records}
        packet_sizes = {r.name: r.size_bytes for r in packet.records}
        common = set(flow_sizes) & set(packet_sizes)
        assert common  # both fidelities completed work
        for name in common:
            assert flow_sizes[name] == packet_sizes[name]

    def test_rerun_is_deterministic_per_backend(self):
        for backend in ("flowlevel", "packet"):
            first = run_workload(tiny_config(backend=backend))
            second = run_workload(tiny_config(backend=backend))
            assert [(r.name, r.size_bytes, r.start, r.finish) for r in first.records] == [
                (r.name, r.size_bytes, r.start, r.finish) for r in second.records
            ]


class TestFctMetrics:
    def make_records(self):
        return [
            FctRecord(f"f{i}", size_bytes=(i + 1) * 1000, start=0.0, finish=float(i + 1))
            for i in range(10)
        ]

    def test_percentile_conventions(self):
        assert percentile([], 0.5) is None
        assert percentile([1.0], 0.99) == 1.0
        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 0.50) == 6.0
        assert percentile(values, 0.90) == 10.0

    def test_fct_percentiles_keys(self):
        report = fct_percentiles(self.make_records())
        assert set(report) == {"p50", "p90", "p99"}
        assert report["p50"] == 6.0

    def test_empty_report_is_nan_free(self):
        report = FctReport.from_records([])
        payload = report.as_dict()
        assert payload["completed"] == 0
        assert payload["mean_fct_s"] is None
        assert all(v is None for v in payload["fct_percentiles_s"].values())
        json.dumps(payload, allow_nan=False)  # must not raise
        assert report.completion_ratio == 0.0

    def test_size_deciles_partition_records(self):
        rows = size_decile_breakdown(self.make_records())
        assert sum(row["flows"] for row in rows) == 10
        bounds = [(row["min_bytes"], row["max_bytes"]) for row in rows]
        assert bounds == sorted(bounds)

    def test_page_load_spans_the_group(self):
        records = [
            FctRecord("a", 1, start=1.0, finish=2.0, session="s", page=0),
            FctRecord("b", 1, start=1.5, finish=3.5, session="s", page=0),
            FctRecord("c", 1, start=4.0, finish=4.5, session="s", page=1),
        ]
        times = page_load_times(records)
        assert times[("s", 0)] == pytest.approx(2.5)
        assert times[("s", 1)] == pytest.approx(0.5)

    def test_offered_tracks_incomplete_transfers(self):
        report = FctReport.from_records(self.make_records(), offered=20)
        assert report.completed == 10
        assert report.completion_ratio == 0.5


class TestRunnerAndComparison:
    def test_flowlevel_run_reports_fct(self):
        result = run_workload(tiny_config(backend="flowlevel"))
        assert result.backend == "flowlevel"
        assert result.fct.completed > 0
        assert result.fct.offered == result.plan.total_transfers
        summary = result.summary()
        assert summary["transport"] is None
        json.dumps(summary, allow_nan=False)

    def test_packet_mptcp_run_reports_fct(self):
        config = tiny_config(
            backend="packet",
            transport="mptcp",
            spec=tiny_spec(
                sessions=2,
                request=RequestResponseSpec(
                    requests_per_session=2,
                    response_size=SizeDistribution(kind="fixed", mean_bytes=30_000),
                    think_time_s=0.05,
                ),
            ),
        )
        result = run_workload(config)
        assert result.backend == "packet"
        assert result.summary()["transport"] == "mptcp"
        assert result.fct.completed > 0

    def test_compare_workload_backends(self):
        flow = run_workload(tiny_config(backend="flowlevel"))
        packet = run_workload(tiny_config(backend="packet"))
        comparison = compare_workload_backends(flow, packet)
        assert comparison.offered == flow.plan.total_transfers
        assert 0.0 < comparison.completion_agreement <= 1.0
        payload = comparison.as_dict()
        assert set(payload["percentiles"]) <= {"p50", "p90", "p99"}
        json.dumps(payload, allow_nan=False)

    def test_compare_rejects_mismatched_populations(self):
        flow = run_workload(tiny_config(backend="flowlevel"))
        other = run_workload(
            tiny_config(backend="packet", spec=tiny_spec(seed=99))
        )
        with pytest.raises(ModelError):
            compare_workload_backends(flow, other)


class TestNamedScenarios:
    def test_registry_names(self):
        assert set(WORKLOAD_SCENARIOS) == {"conferencing_load", "web_page_load"}

    def test_conferencing_load_scales_to_thousands(self):
        config = conferencing_load(sessions=250, duration=60.0)
        result = run_workload(config)
        assert result.plan.total_transfers >= 5000
        assert result.fct.completed > 1000

    def test_web_page_load_structure(self):
        config = web_page_load(sessions=3, duration=10.0)
        plan = run_workload(config).plan
        # 3 pages x (1 main + 8 subresources) per session.
        assert all(len(s.transfers) == 27 for s in plan.sessions)


class TestWorkloadCampaignSpec:
    def test_scale_axes_are_workload_only(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", kind="single", load_scales=(0.5, 1.0))

    def test_workload_kind_rejects_packet_axes(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="x",
                kind="workload",
                scenarios=("conferencing_load",),
                loss_rates=(0.01,),
            )

    def test_workload_kind_validates_scenarios(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", kind="workload", scenarios=("paper",))

    def test_workload_grid_expands_scale_axes(self):
        spec = workload_fct_campaign(duration=2.0, load_scales=(0.5, 1.0), backend="flowlevel")
        assert spec.kind == "workload"
        assert spec.size == 2 * 2  # scenarios x load scales
        points = spec.expand()
        assert len(points) == spec.size
        labels = {point.params["load_scale"] for point in points}
        assert labels == {0.5, 1.0}
        for point in points:
            assert point.params["kind"] == "workload"
            assert "loss_rate" not in point.params


class TestMultiflowWorkloadKind:
    def test_workload_flow_needs_a_spec(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(kind="workload", name="bg", path_index=0)


class TestWorkloadCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["workload", "--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == sorted(WORKLOAD_SCENARIOS)

    def test_unknown_scenario_exits_two(self, capsys):
        assert cli_main(["workload", "nope"]) == 2
        assert "choose from" in capsys.readouterr().err

    def test_missing_scenario_exits_two(self, capsys):
        assert cli_main(["workload"]) == 2
        assert "required" in capsys.readouterr().err

    def test_json_output_is_nan_safe(self, capsys, monkeypatch):
        # Force a NaN into the report: the sanitiser must null it out.
        original = FctReport.as_dict

        def poisoned(self):
            payload = original(self)
            payload["mean_fct_s"] = math.nan
            return payload

        monkeypatch.setattr(FctReport, "as_dict", poisoned)
        assert (
            cli_main(
                ["workload", "conferencing_load", "--sessions", "5", "--duration", "3", "--json"]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["workload"]["fct"]["mean_fct_s"] is None

    def test_table_output_and_compare(self, capsys):
        assert (
            cli_main(
                [
                    "workload",
                    "conferencing_load",
                    "--sessions",
                    "5",
                    "--duration",
                    "3",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transfers completed" in out
        assert "flow-level vs packet-level FCT" in out
