"""Experiment harness, figure regeneration and the CLI (short runs)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.ascii_plot import ascii_chart, plot_figure
from repro.experiments.figures import fig2c_fine, figure_with_algorithm
from repro.experiments.harness import ExperimentConfig, paper_experiment, run_experiment
from repro.experiments.scenarios import (
    scheduler_comparison,
    summarize_results,
    variant_comparison,
)
from repro.measure.sampling import TimeSeries
from repro.topologies.paper import PAPER_DEFAULT_PATH_INDEX

from .conftest import make_two_path_scenario


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        config = ExperimentConfig()
        assert config.default_path_index == PAPER_DEFAULT_PATH_INDEX
        assert config.sampling_interval == 0.1
        assert config.duration == 4.0

    def test_with_overrides_returns_copy(self):
        config = ExperimentConfig()
        changed = config.with_overrides(duration=1.0, congestion_control="olia")
        assert changed.duration == 1.0
        assert config.duration == 4.0
        assert changed.congestion_control == "olia"

    def test_build_scenario_default_is_paper(self):
        topology, paths = ExperimentConfig().build_scenario()
        assert topology.name.startswith("paper")
        assert len(paths) == 3

    def test_build_scenario_accepts_callable_and_tuple(self):
        scenario = make_two_path_scenario()
        by_tuple = ExperimentConfig(scenario=scenario).build_scenario()
        by_callable = ExperimentConfig(scenario=make_two_path_scenario).build_scenario()
        assert len(by_tuple[1]) == len(by_callable[1]) == 2

    def test_paper_experiment_helper(self):
        config = paper_experiment("olia", duration=2.0)
        assert config.congestion_control == "olia"
        assert config.name == "paper-olia"


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def short_result(self):
        return run_experiment(paper_experiment("cubic", duration=0.6))

    def test_optimum_is_90(self, short_result):
        assert short_result.optimum.total == pytest.approx(90.0)

    def test_per_path_series_keyed_by_tag(self, short_result):
        assert set(short_result.per_path_series) == {1, 2, 3}
        for series in short_result.per_path_series.values():
            assert len(series) == 6

    def test_total_series_is_sum_of_paths(self, short_result):
        for index in range(len(short_result.total_series)):
            summed = sum(s.values[index] for s in short_result.per_path_series.values())
            assert short_result.total_series.values[index] == pytest.approx(summed, rel=1e-6)

    def test_summary_fields(self, short_result):
        summary = short_result.summary()
        assert summary["congestion_control"] == "cubic"
        assert summary["optimum_mbps"] == 90.0
        assert summary["achieved_mean_mbps"] > 0
        assert "reached_optimum" in summary

    def test_stats_cover_all_subflows(self, short_result):
        assert len(short_result.stats.subflows) == 3

    def test_non_paper_scenario(self):
        config = ExperimentConfig(
            name="two-path", scenario=make_two_path_scenario, duration=0.5
        )
        result = run_experiment(config)
        assert result.optimum.total == pytest.approx(90.0)  # 30 + 60
        assert set(result.per_path_series) == {1, 2}


class TestFigures:
    def test_fig2c_uses_fine_sampling(self):
        data = fig2c_fine(duration=0.3)
        assert data.figure_id == "fig2c"
        for series in data.per_path_series.values():
            assert series.interval == pytest.approx(0.01)
        assert data.optimum_mbps == pytest.approx(90.0)

    def test_figure_with_algorithm_summary(self):
        data = figure_with_algorithm("lia", duration=0.4)
        summary = data.summary()
        assert summary["figure"] == "fig2-lia"
        assert summary["congestion_control"] == "lia"


class TestScenarios:
    def test_scheduler_comparison_keys(self):
        results = scheduler_comparison(("minrtt", "redundant"), duration=0.4)
        assert set(results) == {"minrtt", "redundant"}

    def test_variant_comparison_both_labelings(self):
        results = variant_comparison(congestion_control="cubic", duration=0.4)
        assert set(results) == {"as_stated", "as_solution"}
        for result in results.values():
            assert result.optimum.total == pytest.approx(90.0)

    def test_summarize_results(self):
        results = scheduler_comparison(("minrtt",), duration=0.3)
        rows = summarize_results(results)
        assert rows[0]["key"] == "minrtt"
        assert "achieved_mean_mbps" in rows[0]


class TestAsciiPlot:
    def test_chart_contains_markers_and_legend(self):
        series = [
            TimeSeries(times=[0.1, 0.2, 0.3], values=[10, 20, 30], label="Path 1", interval=0.1),
            TimeSeries(times=[0.1, 0.2, 0.3], values=[30, 20, 10], label="Path 2", interval=0.1),
        ]
        chart = ascii_chart(series, width=40, height=10, title="demo")
        assert "demo" in chart
        assert "1=Path 1" in chart
        assert "2=Path 2" in chart

    def test_empty_chart(self):
        assert ascii_chart([]) == "(no data)"

    def test_plot_figure_includes_total(self):
        per_path = {1: TimeSeries(times=[0.1], values=[10], interval=0.1)}
        total = TimeSeries(times=[0.1], values=[10], interval=0.1)
        chart = plot_figure(per_path, total)
        assert "Total" in chart


class TestCli:
    def test_lp_command_table(self, capsys):
        assert cli_main(["lp"]) == 0
        out = capsys.readouterr().out
        assert "x1 + x2 <= 40" in out
        assert "LP optimum" in out
        assert "90.0" in out

    def test_lp_command_json(self, capsys):
        assert cli_main(["lp", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["optimum"]["total"] == pytest.approx(90.0)
        assert data["greedy_from_default"]["total"] < 90.0

    def test_figure_command(self, capsys):
        assert cli_main(["figure", "2c"]) == 0
        out = capsys.readouterr().out
        assert "time [s]" in out
        assert '"figure": "fig2c"' in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])


class TestRunScenariosParallel:
    """Serial fallbacks and the pluggable runner of the sweep executor."""

    @staticmethod
    def _configs(n=2, duration=0.3):
        return [
            paper_experiment("cubic", duration=duration).with_overrides(name=f"p{i}")
            for i in range(n)
        ]

    def test_unpicklable_scenario_falls_back_to_serial(self, monkeypatch):
        from repro.experiments import harness

        class _Exploding:
            def __init__(self, *a, **k):
                raise AssertionError("process pool must not be constructed")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", _Exploding)
        configs = [
            ExperimentConfig(
                name=f"lambda-{i}", scenario=lambda: make_two_path_scenario(), duration=0.3
            )
            for i in range(2)
        ]
        results = harness.run_scenarios_parallel(configs)
        assert [r.config.name for r in results] == ["lambda-0", "lambda-1"]
        assert all(r.optimum.total == pytest.approx(90.0) for r in results)

    def test_max_workers_one_runs_serially(self, monkeypatch):
        from repro.experiments import harness

        class _Exploding:
            def __init__(self, *a, **k):
                raise AssertionError("process pool must not be constructed")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", _Exploding)
        results = harness.run_scenarios_parallel(self._configs(), max_workers=1)
        assert [r.config.name for r in results] == ["p0", "p1"]

    def test_broken_process_pool_falls_back_to_serial(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments import harness

        class _BrokenPool:
            def __init__(self, *a, **k):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *a):
                return False

            def map(self, fn, items):
                raise BrokenProcessPool("no subprocess support")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", _BrokenPool)
        results = harness.run_scenarios_parallel(self._configs())
        assert [r.config.name for r in results] == ["p0", "p1"]

    def test_custom_runner_is_applied(self):
        from repro.experiments.harness import run_scenarios_parallel

        names = run_scenarios_parallel(
            self._configs(), max_workers=1, runner=lambda config: config.name
        )
        assert names == ["p0", "p1"]


class TestCliJsonNanSafety:
    """Every handler's --json output must be valid JSON with NaN -> null."""

    @staticmethod
    def _parse(out):
        start = min(i for i in (out.find("{"), out.find("[")) if i >= 0)
        return json.loads(
            out[start:],
            parse_constant=lambda token: pytest.fail(f"non-finite JSON token {token!r}"),
        )

    def test_lp_json_sanitizes_nan(self, capsys, monkeypatch):
        from types import SimpleNamespace

        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "greedy_fill",
            lambda system, order=None: SimpleNamespace(
                rates=[float("nan")], total=float("nan")
            ),
        )
        assert cli_main(["lp", "--json"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data["greedy_from_default"]["total"] is None
        assert data["greedy_from_default"]["rates"] == [None]

    def test_compare_json_sanitizes_nan(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "cc_comparison", lambda algorithms, duration: {})
        monkeypatch.setattr(
            cli,
            "summarize_results",
            lambda results: [{"key": "cubic", "settle_s": float("nan")}],
        )
        assert cli_main(["compare", "--json"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data[0]["settle_s"] is None

    def test_sweep_json_sanitizes_inf(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "olia_default_path_sweep", lambda duration, algorithm: {})
        monkeypatch.setattr(
            cli,
            "summarize_results",
            lambda results: [{"key": "0", "time_to_optimum_s": float("inf")}],
        )
        assert cli_main(["sweep", "--json"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data[0]["time_to_optimum_s"] is None

    def test_fairness_json_sanitizes_nan(self, capsys, monkeypatch):
        from types import SimpleNamespace

        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "run_multiflow",
            lambda config: SimpleNamespace(summary=lambda: {"jain_index": float("nan")}),
        )
        assert cli_main(["fairness", "mptcp_vs_tcp_shared_bottleneck", "--json"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data["jain_index"] is None

    def test_dynamics_json_sanitizes_nan(self, capsys, monkeypatch):
        from types import SimpleNamespace

        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "run_experiment",
            lambda config: SimpleNamespace(
                summary=lambda: {"settle_time_s": float("nan")}, dynamics=None
            ),
        )
        assert cli_main(["dynamics", "link_flap_failover", "--json"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data["settle_time_s"] is None

    def test_figure_json_sanitizes_nan(self, capsys, monkeypatch):
        from types import SimpleNamespace

        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "fig2c_fine",
            lambda variant: SimpleNamespace(
                per_path_series={},
                total_series=TimeSeries(),
                description="stub",
                summary=lambda: {"achieved_mean_mbps": float("nan")},
            ),
        )
        assert cli_main(["figure", "2c"]) == 0
        data = self._parse(capsys.readouterr().out)
        assert data["achieved_mean_mbps"] is None
