"""Experiment harness, figure regeneration and the CLI (short runs)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.ascii_plot import ascii_chart, plot_figure
from repro.experiments.figures import fig2c_fine, figure_with_algorithm
from repro.experiments.harness import ExperimentConfig, paper_experiment, run_experiment
from repro.experiments.scenarios import (
    scheduler_comparison,
    summarize_results,
    variant_comparison,
)
from repro.measure.sampling import TimeSeries
from repro.topologies.paper import PAPER_DEFAULT_PATH_INDEX

from .conftest import make_two_path_scenario


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        config = ExperimentConfig()
        assert config.default_path_index == PAPER_DEFAULT_PATH_INDEX
        assert config.sampling_interval == 0.1
        assert config.duration == 4.0

    def test_with_overrides_returns_copy(self):
        config = ExperimentConfig()
        changed = config.with_overrides(duration=1.0, congestion_control="olia")
        assert changed.duration == 1.0
        assert config.duration == 4.0
        assert changed.congestion_control == "olia"

    def test_build_scenario_default_is_paper(self):
        topology, paths = ExperimentConfig().build_scenario()
        assert topology.name.startswith("paper")
        assert len(paths) == 3

    def test_build_scenario_accepts_callable_and_tuple(self):
        scenario = make_two_path_scenario()
        by_tuple = ExperimentConfig(scenario=scenario).build_scenario()
        by_callable = ExperimentConfig(scenario=make_two_path_scenario).build_scenario()
        assert len(by_tuple[1]) == len(by_callable[1]) == 2

    def test_paper_experiment_helper(self):
        config = paper_experiment("olia", duration=2.0)
        assert config.congestion_control == "olia"
        assert config.name == "paper-olia"


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def short_result(self):
        return run_experiment(paper_experiment("cubic", duration=0.6))

    def test_optimum_is_90(self, short_result):
        assert short_result.optimum.total == pytest.approx(90.0)

    def test_per_path_series_keyed_by_tag(self, short_result):
        assert set(short_result.per_path_series) == {1, 2, 3}
        for series in short_result.per_path_series.values():
            assert len(series) == 6

    def test_total_series_is_sum_of_paths(self, short_result):
        for index in range(len(short_result.total_series)):
            summed = sum(s.values[index] for s in short_result.per_path_series.values())
            assert short_result.total_series.values[index] == pytest.approx(summed, rel=1e-6)

    def test_summary_fields(self, short_result):
        summary = short_result.summary()
        assert summary["congestion_control"] == "cubic"
        assert summary["optimum_mbps"] == 90.0
        assert summary["achieved_mean_mbps"] > 0
        assert "reached_optimum" in summary

    def test_stats_cover_all_subflows(self, short_result):
        assert len(short_result.stats.subflows) == 3

    def test_non_paper_scenario(self):
        config = ExperimentConfig(
            name="two-path", scenario=make_two_path_scenario, duration=0.5
        )
        result = run_experiment(config)
        assert result.optimum.total == pytest.approx(90.0)  # 30 + 60
        assert set(result.per_path_series) == {1, 2}


class TestFigures:
    def test_fig2c_uses_fine_sampling(self):
        data = fig2c_fine(duration=0.3)
        assert data.figure_id == "fig2c"
        for series in data.per_path_series.values():
            assert series.interval == pytest.approx(0.01)
        assert data.optimum_mbps == pytest.approx(90.0)

    def test_figure_with_algorithm_summary(self):
        data = figure_with_algorithm("lia", duration=0.4)
        summary = data.summary()
        assert summary["figure"] == "fig2-lia"
        assert summary["congestion_control"] == "lia"


class TestScenarios:
    def test_scheduler_comparison_keys(self):
        results = scheduler_comparison(("minrtt", "redundant"), duration=0.4)
        assert set(results) == {"minrtt", "redundant"}

    def test_variant_comparison_both_labelings(self):
        results = variant_comparison(congestion_control="cubic", duration=0.4)
        assert set(results) == {"as_stated", "as_solution"}
        for result in results.values():
            assert result.optimum.total == pytest.approx(90.0)

    def test_summarize_results(self):
        results = scheduler_comparison(("minrtt",), duration=0.3)
        rows = summarize_results(results)
        assert rows[0]["key"] == "minrtt"
        assert "achieved_mean_mbps" in rows[0]


class TestAsciiPlot:
    def test_chart_contains_markers_and_legend(self):
        series = [
            TimeSeries(times=[0.1, 0.2, 0.3], values=[10, 20, 30], label="Path 1", interval=0.1),
            TimeSeries(times=[0.1, 0.2, 0.3], values=[30, 20, 10], label="Path 2", interval=0.1),
        ]
        chart = ascii_chart(series, width=40, height=10, title="demo")
        assert "demo" in chart
        assert "1=Path 1" in chart
        assert "2=Path 2" in chart

    def test_empty_chart(self):
        assert ascii_chart([]) == "(no data)"

    def test_plot_figure_includes_total(self):
        per_path = {1: TimeSeries(times=[0.1], values=[10], interval=0.1)}
        total = TimeSeries(times=[0.1], values=[10], interval=0.1)
        chart = plot_figure(per_path, total)
        assert "Total" in chart


class TestCli:
    def test_lp_command_table(self, capsys):
        assert cli_main(["lp"]) == 0
        out = capsys.readouterr().out
        assert "x1 + x2 <= 40" in out
        assert "LP optimum" in out
        assert "90.0" in out

    def test_lp_command_json(self, capsys):
        assert cli_main(["lp", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["optimum"]["total"] == pytest.approx(90.0)
        assert data["greedy_from_default"]["total"] < 90.0

    def test_figure_command(self, capsys):
        assert cli_main(["figure", "2c"]) == 0
        out = capsys.readouterr().out
        assert "time [s]" in out
        assert '"figure": "fig2c"' in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])
