"""Multi-flow competition runner: FlowSpec layer, per-flow measurement,
tag namespacing and the named competition scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.multiflow import (
    TAG_STRIDE,
    FlowSpec,
    MultiFlowConfig,
    run_multiflow,
)
from repro.experiments.scenarios import (
    COMPETITION_SCENARIOS,
    cross_traffic_perturbation,
    mptcp_vs_tcp_shared_bottleneck,
    two_mptcp_competition,
)
from repro.netsim.network import Network
from repro.topologies.generators import shared_bottleneck

from .conftest import make_two_path_scenario


class TestFlowSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(kind="quic")

    def test_overrides(self):
        spec = FlowSpec(kind="udp", rate_mbps=5.0)
        faster = spec.with_overrides(rate_mbps=9.0)
        assert faster.rate_mbps == 9.0
        assert spec.rate_mbps == 5.0


class TestMultiFlowConfigValidation:
    def test_needs_at_least_one_flow(self):
        with pytest.raises(ConfigurationError):
            run_multiflow(MultiFlowConfig(scenario=make_two_path_scenario, flows=[]))

    def test_duplicate_flow_names_rejected(self):
        config = MultiFlowConfig(
            scenario=make_two_path_scenario,
            flows=[FlowSpec(kind="mptcp", name="x"), FlowSpec(kind="udp", name="x")],
            duration=0.5,
        )
        with pytest.raises(ConfigurationError):
            run_multiflow(config)

    def test_single_path_kind_rejects_multiple_paths(self):
        topology, paths = make_two_path_scenario()
        config = MultiFlowConfig(
            scenario=(topology, paths),
            flows=[FlowSpec(kind="tcp", paths=list(paths))],
            duration=0.5,
        )
        with pytest.raises(ConfigurationError):
            run_multiflow(config)

    def test_path_index_out_of_range(self):
        config = MultiFlowConfig(
            scenario=make_two_path_scenario,
            flows=[FlowSpec(kind="udp", path_index=7)],
            duration=0.5,
        )
        with pytest.raises(ConfigurationError):
            run_multiflow(config)

    def test_path_tag_outside_namespace_rejected(self):
        from repro.model.paths import Path

        topology, paths = make_two_path_scenario()
        oversized = [
            Path(paths[0].nodes, tag=TAG_STRIDE + 1, name="bad"),
            Path(paths[1].nodes, tag=2, name="ok"),
        ]
        config = MultiFlowConfig(
            scenario=(topology, paths),
            flows=[FlowSpec(kind="mptcp", paths=oversized)],
            duration=0.5,
        )
        with pytest.raises(ConfigurationError):
            run_multiflow(config)


class TestPerFlowCaptureAttachment:
    def test_flow_filtered_captures_are_distinct(self):
        topology, paths = make_two_path_scenario()
        network = Network(topology)
        shared = network.attach_capture("d", data_only=True)
        flow1 = network.attach_capture("d", data_only=True, flow_id=1)
        flow2 = network.attach_capture("d", data_only=True, flow_id=2)
        assert shared is not flow1 and flow1 is not flow2
        assert network.attach_capture("d", flow_id=1) is flow1
        assert network.capture("d", flow_id=2) is flow2
        assert network.capture("d") is shared

    def test_flow_filter_drops_other_flows(self):
        from repro.netsim.capture import PacketCapture
        from repro.netsim.packet import Packet

        capture = PacketCapture(flow_id=7)
        mine = Packet(src="s", dst="d", size=100, flow_id=7, subflow_id=0)
        other = Packet(src="s", dst="d", size=100, flow_id=8, subflow_id=0)
        capture.on_packet(mine, 0.1)
        capture.on_packet(other, 0.2)
        assert len(capture) == 1
        assert capture.records[0].flow_id == 7


class TestRunMultiflow:
    def test_two_flow_run_reports_per_flow_series(self):
        config = mptcp_vs_tcp_shared_bottleneck(duration=2.0)
        result = run_multiflow(config)
        assert {flow.name for flow in result.flows} == {"mptcp", "tcp"}
        mptcp = result.flow("mptcp")
        tcp = result.flow("tcp")
        # Per-flow time series on the configured sampling grid.
        assert len(mptcp.series) == int(config.duration / config.sampling_interval)
        assert len(tcp.series) == len(mptcp.series)
        assert mptcp.mean_mbps > 0 and tcp.mean_mbps > 0
        # Per-path series for the MPTCP flow, keyed by original path tag.
        assert set(mptcp.per_path_series) == {1, 2}
        # Fairness report is present and coherent.
        assert 0.0 < result.jain_index <= 1.0
        assert result.fairness.mptcp_tcp_ratio is not None
        assert result.fairness.bottleneck_capacity_mbps == pytest.approx(50.0)
        summary = result.summary()
        assert summary["fairness"]["jain_index"] == pytest.approx(
            result.jain_index, abs=1e-3
        )

    def test_aggregate_stays_below_bottleneck(self):
        result = run_multiflow(mptcp_vs_tcp_shared_bottleneck(duration=2.0))
        capacity = result.fairness.bottleneck_capacity_mbps
        # Wire-level overhead means the data-rate aggregate can graze the
        # capacity but never meaningfully exceed it.
        assert result.fairness.aggregate_mbps <= capacity * 1.05

    def test_tag_namespaces_do_not_collide(self):
        config = two_mptcp_competition(duration=1.0, subflows_each=2)
        result = run_multiflow(config)
        a, b = result.flow("mptcp-a"), result.flow("mptcp-b")
        # Both connections measured independently: distinct flow ids, and
        # both actually moved data through their own capture.
        assert a.flow_id != b.flow_id
        assert a.bytes_delivered > 0 and b.bytes_delivered > 0
        # Flow B's paths were installed in its own tag namespace and the
        # namespaces are disjoint.
        assert b.tag_map
        assert all(tag >= TAG_STRIDE for tag in b.tag_map.values())
        assert not set(a.tag_map.values()) & set(b.tag_map.values())

    def test_two_mptcp_split_is_roughly_even(self):
        result = run_multiflow(two_mptcp_competition(duration=3.0))
        assert result.jain_index > 0.9

    def test_cross_traffic_flow_uses_onoff_source(self):
        config = cross_traffic_perturbation(duration=2.0)
        result = run_multiflow(config)
        cross = result.flow("cross-traffic")
        assert cross.kind == "onoff"
        assert cross.bytes_delivered > 0
        # The on-off source is silent half the time: its mean arrival rate
        # stays clearly below the configured ON rate.
        on_rate = config.flows[1].rate_mbps
        assert cross.series.mean() < on_rate
        mptcp = result.flow("mptcp")
        assert mptcp.mean_mbps > 0

    def test_mptcp_flow_with_bounded_transfer(self):
        topology, paths = make_two_path_scenario()
        config = MultiFlowConfig(
            scenario=(topology, paths),
            flows=[FlowSpec(kind="mptcp", name="m", total_bytes=200_000)],
            duration=2.0,
        )
        result = run_multiflow(config)
        assert result.flow("m").bytes_delivered == 200_000

    def test_registry_lists_all_named_scenarios(self):
        assert set(COMPETITION_SCENARIOS) == {
            "mptcp_vs_tcp_shared_bottleneck",
            "two_mptcp_competition",
            "cross_traffic_perturbation",
            "workload_background",
            "aqm_vs_droptail",
            "ecn_mptcp_fairness",
        }
        for builder in COMPETITION_SCENARIOS.values():
            config = builder(duration=1.0)
            assert isinstance(config, MultiFlowConfig)
            assert config.flows


class TestSingleFlowBackwardCompatibility:
    def test_run_experiment_unchanged_by_multiflow_import(self):
        # The single-flow harness result shape is untouched by the
        # multi-flow subsystem (same fields, same series grid).
        from repro.experiments.harness import ExperimentConfig, run_experiment

        topology, paths = make_two_path_scenario()
        config = ExperimentConfig(
            name="compat", scenario=(topology, paths), duration=1.0
        )
        result = run_experiment(config)
        assert set(result.per_path_series) == {1, 2}
        assert len(result.total_series) == 10
        assert result.optimum.total > 0
