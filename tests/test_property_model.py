"""Property-based tests (hypothesis) for the analytical model.

These check structural invariants of the optimisation machinery on randomly
generated overlapping-path instances: feasibility of every allocation,
ordering between the allocation strategies, and consistency between the LP
solvers.
"""

from hypothesis import given, settings, strategies as st

from repro.model.bottleneck import build_constraints
from repro.model.greedy import greedy_fill
from repro.model.lp import max_total_throughput
from repro.model.maxmin import max_min_fair_rates
from repro.model.pareto import is_pareto_optimal, optimality_gap
from repro.model.polytope import enumerate_vertices, maximize_over_vertices
from repro.topologies.generators import pairwise_overlap
from repro.topologies.paper import build_paper_topology, paper_paths

# Three capacities (one per pair of paths), like the paper's 40/60/80.
capacity_triples = st.tuples(
    st.floats(min_value=10.0, max_value=200.0),
    st.floats(min_value=10.0, max_value=200.0),
    st.floats(min_value=10.0, max_value=200.0),
)


def system_for(capacities):
    # A huge default capacity keeps the private access links non-binding so
    # only the pairwise shared links shape the feasible region.
    topology, paths = pairwise_overlap(3, capacities=capacities, default_capacity=10_000.0)
    return build_constraints(topology, paths, include_private_links=False)


class TestLpProperties:
    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_lp_solution_is_feasible(self, capacities):
        system = system_for(capacities)
        result = max_total_throughput(system)
        assert system.is_feasible(result.rates, tol=1e-5)

    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_lp_total_equals_half_of_capacity_sum_or_less(self, capacities):
        # For three pairwise constraints, summing all of them gives
        # 2(x1+x2+x3) <= c12+c13+c23, so the optimum is at most half that sum.
        system = system_for(capacities)
        result = max_total_throughput(system)
        assert result.total <= sum(capacities) / 2.0 + 1e-6

    @given(capacity_triples)
    @settings(max_examples=25, deadline=None)
    def test_highs_and_vertex_solvers_agree(self, capacities):
        system = system_for(capacities)
        highs = max_total_throughput(system, solver="highs")
        vertex = max_total_throughput(system, solver="vertex")
        assert abs(highs.total - vertex.total) < 1e-5

    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_lp_optimum_is_pareto_optimal(self, capacities):
        system = system_for(capacities)
        result = max_total_throughput(system)
        assert is_pareto_optimal(system, result.rates, tol=1e-4)


class TestAllocationOrdering:
    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_beats_lp(self, capacities):
        system = system_for(capacities)
        lp_total = max_total_throughput(system).total
        for order in ([0, 1, 2], [1, 0, 2], [2, 1, 0]):
            assert greedy_fill(system, order).total <= lp_total + 1e-6

    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_maxmin_never_beats_lp_and_is_feasible(self, capacities):
        system = system_for(capacities)
        lp_total = max_total_throughput(system).total
        maxmin = max_min_fair_rates(system)
        assert system.is_feasible(maxmin.rates, tol=1e-6)
        assert maxmin.total <= lp_total + 1e-6

    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_greedy_results_are_pareto_optimal(self, capacities):
        system = system_for(capacities)
        result = greedy_fill(system, [1, 0, 2])
        assert is_pareto_optimal(system, result.rates, tol=1e-6)

    @given(capacity_triples)
    @settings(max_examples=40, deadline=None)
    def test_optimality_gap_non_negative(self, capacities):
        system = system_for(capacities)
        greedy = greedy_fill(system, [0, 1, 2])
        assert optimality_gap(system, greedy.rates) >= -1e-9


class TestPolytopeProperties:
    @given(capacity_triples)
    @settings(max_examples=25, deadline=None)
    def test_vertices_feasible_and_contain_optimum(self, capacities):
        system = system_for(capacities)
        vertices = enumerate_vertices(system)
        assert vertices, "the feasible region always has at least the origin"
        for vertex in vertices:
            assert system.is_feasible(vertex, tol=1e-6)
        best = maximize_over_vertices(system)
        assert abs(sum(best) - max_total_throughput(system).total) < 1e-5


class TestScalingProperties:
    @given(capacity_triples, st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_lp_scales_linearly_with_capacities(self, capacities, factor):
        base = max_total_throughput(system_for(capacities)).total
        scaled = max_total_throughput(
            system_for(tuple(c * factor for c in capacities))
        ).total
        assert abs(scaled - base * factor) < 1e-4 * max(1.0, base * factor)

    @given(st.floats(min_value=10.0, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_paper_structure_with_uniform_capacities(self, capacity):
        # With equal shared capacities c the optimum is 3c/2 (all pairs tight).
        topology, paths = pairwise_overlap(3, capacities=(capacity,) * 3)
        system = build_constraints(topology, paths, include_private_links=False)
        assert abs(max_total_throughput(system).total - 1.5 * capacity) < 1e-5


class TestPaperInstanceProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=40.0),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_feasibility_is_monotone_in_rates(self, rates):
        system = build_constraints(
            build_paper_topology(), paper_paths(), include_private_links=False
        )
        if system.is_feasible(rates):
            smaller = [r / 2 for r in rates]
            assert system.is_feasible(smaller)
