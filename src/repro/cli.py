"""Command-line interface: ``mptcp-overlap``.

Sub-commands:

* ``lp``       -- print the Fig. 1c constraint system, its LP optimum and the
                  greedy / max-min / proportionally-fair reference allocations.
* ``figure``   -- regenerate one panel of Fig. 2 and plot it in the terminal.
* ``compare``  -- run the congestion-control comparison (RES-CC) and print a
                  summary table.
* ``sweep``    -- run the OLIA default-path sweep (RES-OLIA-DEFAULT).
* ``fairness`` -- run a named multi-flow competition scenario and print the
                  per-flow throughput plus fairness report.
* ``dynamics`` -- run a named network-dynamics scenario (link flap, capacity
                  step, handover) and report failover gap, re-convergence
                  time and capacity-tracking error.
* ``campaign`` -- run a named parameter-sweep grid with model-vs-simulation
                  validation, resuming completed points from a JSONL store.
                  Fabric flags (``--worker-id``, ``--lease-ttl``,
                  ``--point-timeout``, ``--single-pass``, ``--chaos``) run the
                  grid under the fault-tolerant fabric: lease-based claiming,
                  watchdog timeouts, bounded backoff retry and quarantine.
                  ``campaign merge STORE... --into OUT`` merges/compacts
                  worker shard stores into one store with no duplicate keys.
* ``workload`` -- run a named workload scenario (conferencing load, web page
                  load) on either backend and print the flow-completion-time
                  report; ``--compare`` also runs the other fidelity and
                  reports the cross-backend FCT error.
* ``info``     -- print the active simulation kernel (compiled vs python,
                  and why), the package version, the interpreter/platform,
                  and whether the recorded bench baseline is comparable to
                  this environment (same drift detection as
                  ``benchmarks/check_regression.py``).

All ``--json`` output is NaN-safe: non-finite metrics are emitted as
``null`` and serialisation runs with ``allow_nan=False`` so a regression
fails loudly instead of printing invalid JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .core.coupled import MULTIPATH_ALGORITHMS, PAPER_ALGORITHMS
from .experiments.ascii_plot import ascii_chart, plot_figure
from .errors import FabricError
from .experiments.campaign import CAMPAIGN_GRIDS, run_campaign
from .experiments.chaos import ChaosSpec
from .experiments.fabric import FabricConfig, merge_stores, run_campaign_fabric
from .experiments.figures import fig2a_cubic, fig2b_olia, fig2c_fine, figure_with_algorithm
from .experiments.harness import run_experiment
from .experiments.multiflow import run_multiflow
from .experiments.scenarios import (
    COMPETITION_SCENARIOS,
    DYNAMICS_SCENARIOS,
    cc_comparison,
    olia_default_path_sweep,
    summarize_results,
)
from .measure.report import format_table, sanitize_metrics
from .measure.sampling import TimeSeries
from .measure.validation import compare_workload_backends
from .model.bottleneck import build_constraints
from .model.greedy import greedy_fill
from .model.lp import max_total_throughput, proportional_fair_rates
from .model.maxmin import max_min_fair_rates
from .topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from .workload.runner import run_workload
from .workload.scenarios import WORKLOAD_SCENARIOS


def _dumps(payload: object) -> str:
    """NaN-safe JSON for every machine-readable output of the CLI.

    Non-finite floats become ``null`` first; ``allow_nan=False`` then
    guarantees that any non-finite value slipping past the sanitiser raises
    instead of emitting a bare ``NaN`` token (invalid JSON).
    """
    return json.dumps(sanitize_metrics(payload), indent=2, allow_nan=False)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mptcp-overlap",
        description="Reproduction of 'The Performance of Multi-Path TCP with Overlapping Paths'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    lp = subparsers.add_parser("lp", help="print the Fig. 1c constraints and reference allocations")
    lp.add_argument("--variant", default="as_stated", choices=("as_stated", "as_solution"))
    lp.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    figure = subparsers.add_parser("figure", help="regenerate one panel of Fig. 2")
    figure.add_argument("panel", choices=("2a", "2b", "2c", "custom"))
    figure.add_argument("--cc", default="cubic", choices=sorted(MULTIPATH_ALGORITHMS))
    figure.add_argument("--duration", type=float, default=4.0)
    figure.add_argument("--variant", default="as_stated", choices=("as_stated", "as_solution"))

    compare = subparsers.add_parser("compare", help="congestion-control comparison (RES-CC)")
    compare.add_argument("--algorithms", nargs="+", default=list(PAPER_ALGORITHMS))
    compare.add_argument("--duration", type=float, default=4.0)
    compare.add_argument("--json", action="store_true")

    sweep = subparsers.add_parser("sweep", help="OLIA default-path sweep (RES-OLIA-DEFAULT)")
    sweep.add_argument("--cc", default="olia", choices=sorted(MULTIPATH_ALGORITHMS))
    sweep.add_argument("--duration", type=float, default=4.0)
    sweep.add_argument("--json", action="store_true")

    fairness = subparsers.add_parser(
        "fairness", help="run a multi-flow competition scenario and report fairness"
    )
    fairness.add_argument(
        "scenario",
        nargs="?",
        metavar="scenario",
        help=f"one of: {', '.join(sorted(COMPETITION_SCENARIOS))}",
    )
    fairness.add_argument(
        "--list", action="store_true", help="list the available scenarios and exit"
    )
    fairness.add_argument(
        "--cc",
        default="lia",
        choices=sorted(MULTIPATH_ALGORITHMS),
        help="coupled congestion control of the MPTCP connection(s)",
    )
    fairness.add_argument("--duration", type=float, default=4.0)
    fairness.add_argument("--bottleneck-mbps", type=float, default=50.0)
    fairness.add_argument(
        "--backend",
        default="packet",
        choices=("packet", "flowlevel"),
        help="simulation fidelity: per-packet ground truth or the flow-level fluid backend",
    )
    fairness.add_argument("--json", action="store_true")

    dynamics = subparsers.add_parser(
        "dynamics",
        help="run a network-dynamics scenario (failover / capacity step / handover)",
    )
    dynamics.add_argument(
        "scenario",
        nargs="?",
        metavar="scenario",
        help=f"one of: {', '.join(sorted(DYNAMICS_SCENARIOS))}",
    )
    dynamics.add_argument(
        "--list", action="store_true", help="list the available scenarios and exit"
    )
    dynamics.add_argument(
        "--cc",
        default="lia",
        choices=sorted(MULTIPATH_ALGORITHMS),
        help="congestion control of the MPTCP connection",
    )
    dynamics.add_argument("--duration", type=float, default=5.0)
    dynamics.add_argument("--no-plot", action="store_true", help="skip the terminal plot")
    dynamics.add_argument("--json", action="store_true")

    campaign = subparsers.add_parser(
        "campaign",
        help="run a sharded, resumable parameter-sweep grid with model validation",
    )
    campaign.add_argument(
        "scenario",
        nargs="?",
        metavar="grid",
        help=f"one of: {', '.join(sorted(CAMPAIGN_GRIDS))}; or 'merge' to "
        "merge/compact shard stores",
    )
    campaign.add_argument(
        "sources",
        nargs="*",
        metavar="store",
        help="shard stores to combine (campaign merge only)",
    )
    campaign.add_argument(
        "--list", action="store_true", help="list the available campaign grids and exit"
    )
    campaign.add_argument(
        "--into",
        default="campaign_merged.jsonl",
        help="output path of 'campaign merge' (default: campaign_merged.jsonl)",
    )
    campaign.add_argument(
        "--store",
        default=None,
        help="JSONL result store path (default: campaign_<grid>.jsonl)",
    )
    campaign.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="skip points already completed in the store (default: on)",
    )
    campaign.add_argument("--duration", type=float, default=None, help="per-point duration")
    campaign.add_argument(
        "--backend",
        default="packet",
        choices=("packet", "flowlevel"),
        help="run every grid point at this fidelity; flowlevel points also "
        "run their packet twin and record the cross-fidelity error",
    )
    campaign.add_argument("--chunk-size", type=int, default=4)
    campaign.add_argument("--max-workers", type=int, default=None)
    campaign.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="failed attempts before a point quarantines (default: 3)",
    )
    campaign.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity for lease records (enables the fabric)",
    )
    campaign.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a point lease stays live without renewal (default: 30)",
    )
    campaign.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="per-point wall-clock budget; hung points are killed and "
        "recorded as status 'timeout' (enables the fabric)",
    )
    campaign.add_argument(
        "--single-pass",
        action="store_true",
        help="one claim/execute round, leaving retries to the next "
        "invocation or worker (enables the fabric)",
    )
    campaign.add_argument(
        "--chaos",
        action="append",
        default=[],
        metavar="KIND=INDEX",
        help="inject a deterministic fault (crash/hang/torn/error) at a grid "
        "point index; repeatable (enables the fabric)",
    )
    campaign.add_argument(
        "--chaos-attempts",
        type=int,
        default=1,
        help="how many failed attempts each chaos fault keeps firing for",
    )
    campaign.add_argument(
        "--chaos-hang-duration",
        type=float,
        default=30.0,
        help="sleep length of injected hangs (must exceed --point-timeout)",
    )
    campaign.add_argument("--no-plot", action="store_true", help="skip the error plot")
    campaign.add_argument("--json", action="store_true")

    workload = subparsers.add_parser(
        "workload",
        help="run a named workload scenario and report flow completion times",
    )
    workload.add_argument(
        "scenario",
        nargs="?",
        metavar="scenario",
        help=f"one of: {', '.join(sorted(WORKLOAD_SCENARIOS))}",
    )
    workload.add_argument(
        "--list", action="store_true", help="list the available workloads and exit"
    )
    workload.add_argument(
        "--backend",
        default="flowlevel",
        choices=("packet", "flowlevel"),
        help="simulation fidelity (default: the fast flow-level backend)",
    )
    workload.add_argument(
        "--duration", type=float, default=None, help="run length (scenario default if omitted)"
    )
    workload.add_argument(
        "--sessions", type=int, default=None, help="session count (scenario default if omitted)"
    )
    workload.add_argument(
        "--seed", type=int, default=None, help="workload seed (scenario default if omitted)"
    )
    workload.add_argument(
        "--compare",
        action="store_true",
        help="also run the other fidelity and report the cross-backend FCT error",
    )
    workload.add_argument("--json", action="store_true")

    info = subparsers.add_parser(
        "info",
        help="print the active kernel, version, environment and baseline drift",
    )
    info.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="bench baseline JSON to check for drift (default: the "
        "benchmarks/ file matching the active kernel, when present)",
    )
    info.add_argument("--json", action="store_true")
    return parser


def _resolve_scenario(args: argparse.Namespace, registry: dict, kind: str) -> Optional[str]:
    """Shared scenario-name handling for ``fairness`` and ``dynamics``.

    Returns the scenario name, or None when the command should exit instead
    (after ``--list`` or an error message); ``args.exit_code`` carries the
    exit status for that case.
    """
    names = sorted(registry)
    if args.list:
        print("\n".join(names))
        args.exit_code = 0
        return None
    if args.scenario is None:
        print(
            f"error: a scenario name is required; choose from: {', '.join(names)}",
            file=sys.stderr,
        )
        args.exit_code = 2
        return None
    if args.scenario not in registry:
        print(
            f"error: unknown {kind} scenario {args.scenario!r}; "
            f"choose from: {', '.join(names)}",
            file=sys.stderr,
        )
        args.exit_code = 2
        return None
    return args.scenario


def _command_lp(args: argparse.Namespace) -> int:
    topology, paths = paper_scenario(args.variant)
    system = build_constraints(topology, paths, include_private_links=False)
    optimum = max_total_throughput(system)
    greedy = greedy_fill(system, order=[PAPER_DEFAULT_PATH_INDEX, 0, 2])
    maxmin = max_min_fair_rates(system)
    fair = proportional_fair_rates(system)

    if args.json:
        print(
            _dumps(
                {
                    "constraints": [str(c) for c in system.constraints],
                    "optimum": optimum.as_dict(),
                    "greedy_from_default": {"rates": greedy.rates, "total": greedy.total},
                    "max_min": {"rates": maxmin.rates, "total": maxmin.total},
                    "proportional_fair": fair.as_dict(),
                }
            )
        )
        return 0

    print("Throughput constraints (Fig. 1c):")
    print(system.pretty())
    print()
    rows = [
        ["LP optimum (max total)", *[f"{r:.1f}" for r in optimum.rates], f"{optimum.total:.1f}"],
        ["Greedy from default path", *[f"{r:.1f}" for r in greedy.rates], f"{greedy.total:.1f}"],
        ["Max-min fair", *[f"{r:.1f}" for r in maxmin.rates], f"{maxmin.total:.1f}"],
        ["Proportional fair", *[f"{r:.1f}" for r in fair.rates], f"{fair.total:.1f}"],
    ]
    print(format_table(["allocation", "x1", "x2", "x3", "total"], rows))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.panel == "2a":
        data = fig2a_cubic(duration=args.duration, variant=args.variant)
    elif args.panel == "2b":
        data = fig2b_olia(duration=args.duration, variant=args.variant)
    elif args.panel == "2c":
        data = fig2c_fine(variant=args.variant)
    else:
        data = figure_with_algorithm(args.cc, duration=args.duration, variant=args.variant)
    print(plot_figure(data.per_path_series, data.total_series, title=data.description))
    print()
    print(_dumps(data.summary()))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    results = cc_comparison(args.algorithms, duration=args.duration)
    summaries = summarize_results(results)
    if args.json:
        print(_dumps(summaries))
        return 0
    rows = [
        [
            s["key"],
            s["optimum_mbps"],
            s["achieved_mean_mbps"],
            s["utilization_of_optimum"],
            "yes" if s["reached_optimum"] else "no",
            s["stability_cv"],
        ]
        for s in summaries
    ]
    print(
        format_table(
            ["congestion control", "optimum", "achieved", "utilization", "reached", "stability cv"],
            rows,
        )
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    results = olia_default_path_sweep(duration=args.duration, algorithm=args.cc)
    summaries = summarize_results(results)
    if args.json:
        print(_dumps(summaries))
        return 0
    rows = [
        [
            f"Path {int(s['key']) + 1} default",
            s["achieved_mean_mbps"],
            s["utilization_of_optimum"],
            "yes" if s["reached_optimum"] else "no",
        ]
        for s in summaries
    ]
    print(format_table(["default path", "achieved", "utilization", "reached optimum"], rows))
    return 0


def _command_fairness(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args, COMPETITION_SCENARIOS, "fairness")
    if scenario is None:
        return args.exit_code
    builder = COMPETITION_SCENARIOS[scenario]
    kwargs = {"duration": args.duration, "bottleneck_mbps": args.bottleneck_mbps}
    if args.scenario in ("two_mptcp_competition", "ecn_mptcp_fairness"):
        kwargs["congestion_control_a"] = args.cc
        kwargs["congestion_control_b"] = args.cc
    else:
        kwargs["congestion_control"] = args.cc
    result = run_multiflow(builder(**kwargs).with_overrides(backend=args.backend))

    if args.json:
        print(_dumps(result.summary()))
        return 0

    fairness = result.fairness
    rows = [
        [
            flow.name,
            flow.kind,
            f"{flow.mean_mbps:.2f}",
            f"{fairness.shares.get(flow.name, 0.0):.3f}",
            "-"
            if fairness.settle_times.get(flow.name) is None
            else f"{fairness.settle_times[flow.name]:.1f}",
            flow.retransmissions,
        ]
        for flow in result.flows
    ]
    print(format_table(["flow", "kind", "mean mbps", "share", "settle s", "retx"], rows))
    print()
    print(f"Jain's fairness index: {fairness.jain_index:.4f}")
    if fairness.mptcp_tcp_ratio is not None:
        print(f"MPTCP / TCP bottleneck-share ratio: {fairness.mptcp_tcp_ratio:.3f}")
    if fairness.bottleneck_utilization is not None:
        print(
            f"Bottleneck utilisation: {fairness.bottleneck_utilization:.3f} "
            f"of {fairness.bottleneck_capacity_mbps:g} Mbps"
        )
    return 0


def _command_dynamics(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args, DYNAMICS_SCENARIOS, "dynamics")
    if scenario is None:
        return args.exit_code
    config = DYNAMICS_SCENARIOS[scenario](
        congestion_control=args.cc, duration=args.duration
    )
    result = run_experiment(config)
    report = result.dynamics

    if args.json:
        print(_dumps(result.summary()))
        return 0

    spec = config.dynamics
    print(f"{scenario}: {spec.description}")
    if not args.no_plot:
        print()
        print(
            plot_figure(
                result.per_path_series,
                result.total_series,
                title=f"{scenario} ({args.cc})",
            )
        )
    print()
    rows = [
        [
            f"{epoch.epoch:.2f}",
            "-" if epoch.failover_gap_s is None else f"{epoch.failover_gap_s:.2f}",
            "-" if epoch.reconvergence_s is None else f"{epoch.reconvergence_s:.2f}",
        ]
        for epoch in report.epochs
    ]
    print(format_table(["event at s", "failover gap s", "re-convergence s"], rows))
    if report.tracking_error is not None:
        print(f"\nCapacity-tracking error: {report.tracking_error:.4f}")
    print(f"Retransmissions: {result.stats.retransmissions}, drops: {result.drops}")
    return 0


def _command_campaign_merge(args: argparse.Namespace) -> int:
    """``campaign merge STORE... --into OUT``: combine worker shard stores."""
    if not args.sources:
        print(
            "error: campaign merge needs at least one source store",
            file=sys.stderr,
        )
        return 2
    try:
        report = merge_stores(args.sources, args.into)
    except FabricError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(_dumps(report.as_dict()))
        return 0
    print(
        f"merged {len(report.sources)} store(s) into {report.path}: "
        f"{report.keys} keys ({report.completed} completed, "
        f"{report.quarantined} quarantined, {report.retryable} retryable), "
        f"{report.dropped_leases} lease records dropped"
    )
    return 0


def _campaign_chaos(args: argparse.Namespace) -> Optional[ChaosSpec]:
    if not args.chaos:
        return None
    return ChaosSpec.parse(
        args.chaos,
        fire_attempts=args.chaos_attempts,
        hang_duration=args.chaos_hang_duration,
    )


def _command_campaign(args: argparse.Namespace) -> int:
    if args.scenario == "merge":
        return _command_campaign_merge(args)
    grid = _resolve_scenario(args, CAMPAIGN_GRIDS, "campaign")
    if grid is None:
        return args.exit_code
    kwargs = {} if args.duration is None else {"duration": args.duration}
    kwargs["backend"] = args.backend
    spec = CAMPAIGN_GRIDS[grid](**kwargs)
    store_path = args.store or f"campaign_{grid}.jsonl"

    def progress(done: int, total: int) -> None:
        if total:
            print(f"campaign {grid}: {done}/{total} pending points", file=sys.stderr)

    use_fabric = (
        args.worker_id is not None
        or args.point_timeout is not None
        or args.single_pass
        or bool(args.chaos)
    )
    try:
        if use_fabric:
            fabric = FabricConfig(
                worker_id=args.worker_id or "",
                lease_ttl=args.lease_ttl,
                max_attempts=args.max_attempts,
                point_timeout=args.point_timeout,
                max_rounds=1 if args.single_pass else None,
            )
            result = run_campaign_fabric(
                spec,
                store_path,
                fabric=fabric,
                chaos=_campaign_chaos(args),
                chunk_size=args.chunk_size,
                max_workers=args.max_workers,
                resume=args.resume,
                progress=progress,
            )
        else:
            result = run_campaign(
                spec,
                store_path,
                chunk_size=args.chunk_size,
                max_workers=args.max_workers,
                resume=args.resume,
                max_attempts=args.max_attempts,
                progress=progress,
            )
    except FabricError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = result.validation_report()
    # Partial grids must be visible to automation: retryable failures (retried
    # on the next invocation) and quarantined points exit non-zero.
    exit_code = 1 if result.error_records or result.quarantined_records else 0

    if args.json:
        print(
            _dumps(
                {
                    "campaign": result.summary(),
                    "points": result.records,
                }
            )
        )
        return exit_code

    print(
        f"campaign {grid}: {len(result.points)} points, {result.executed} executed, "
        f"{result.skipped} resumed from {result.store_path}"
    )
    print()
    rows = []
    lp_errors = []
    by_key = {record.get("key"): record for record in result.records}
    for point in result.points:
        # A point can lack a record entirely (left to another live worker by
        # a fabric run); keep the table aligned and show it as pending.
        record = by_key.get(point.key, {"status": "pending"})
        validation = record.get("validation") or {}
        lp = (validation.get("predictions") or {}).get("lp") or {}
        rel_error = lp.get("rel_error")
        if record.get("status") == "ok" and rel_error is not None:
            lp_errors.append(float(rel_error))
        rows.append(
            [
                point.label(),
                record.get("status"),
                validation.get("measured_total"),
                lp.get("total"),
                "-" if rel_error is None else f"{rel_error:.4f}",
                "-"
                if lp.get("rank_agreement") is None
                else f"{lp['rank_agreement']:.2f}",
            ]
        )
    print(
        format_table(
            ["point", "status", "measured", "lp optimum", "lp rel err", "rank agr"],
            rows,
        )
    )
    if result.error_records or result.quarantined_records:
        print()
        for record in result.error_records:
            print(f"error: {record.get('params')}: {record.get('error')}", file=sys.stderr)
        for record in result.quarantined_records:
            print(
                f"quarantined after {record.get('attempts')} attempts: "
                f"{record.get('params')}: {record.get('error')}",
                file=sys.stderr,
            )
    print()
    print("model-vs-simulation error summary:")
    summary_rows = [
        [
            stats.model,
            stats.count,
            stats.mean_rel_error,
            stats.median_rel_error,
            stats.p90_rel_error,
            stats.max_rel_error,
            stats.mean_rank_agreement,
        ]
        for stats in report.models.values()
    ]
    print(
        format_table(
            ["model", "points", "mean err", "median err", "p90 err", "max err", "rank agr"],
            summary_rows,
        )
    )
    cross = result.cross_fidelity_report()
    if cross is not None:
        print()
        print(
            "flow-level vs packet-level: "
            f"{cross['points']} points, mean rel err {cross['mean_rel_error']}, "
            f"max rel err {cross['max_rel_error']}, "
            f"rank agreement {cross['mean_rank_agreement']}"
        )
    if not args.no_plot and lp_errors:
        print()
        series = TimeSeries(
            times=[float(i + 1) for i in range(len(lp_errors))],
            values=lp_errors,
            label="LP rel error",
            interval=1.0,
        )
        print(
            ascii_chart(
                [series],
                width=min(72, max(len(lp_errors) * 4, 24)),
                height=10,
                title="LP-vs-simulation relative error per grid point (x = point #)",
            )
        )
    return exit_code


def _command_workload(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args, WORKLOAD_SCENARIOS, "workload")
    if scenario is None:
        return args.exit_code
    kwargs = {"backend": args.backend}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    if args.sessions is not None:
        kwargs["sessions"] = args.sessions
    if args.seed is not None:
        kwargs["seed"] = args.seed
    config = WORKLOAD_SCENARIOS[scenario](**kwargs)
    result = run_workload(config)

    comparison = None
    if args.compare:
        other = "packet" if args.backend == "flowlevel" else "flowlevel"
        twin = run_workload(config.with_overrides(backend=other))
        flowlevel, packet = (result, twin) if args.backend == "flowlevel" else (twin, result)
        comparison = compare_workload_backends(flowlevel, packet)

    if args.json:
        payload = {"workload": result.summary()}
        if comparison is not None:
            payload["cross_fidelity_fct"] = comparison.as_dict()
        print(_dumps(payload))
        return 0

    fct = result.fct
    print(
        f"{scenario} [{result.backend}]: {len(result.plan.sessions)} sessions, "
        f"{fct.completed}/{fct.offered} transfers completed "
        f"({fct.completion_ratio:.1%}), {fct.total_bytes / 1e6:.1f} MB delivered"
    )
    print()
    rows = [
        ["mean", "-" if fct.mean_fct_s is None else f"{fct.mean_fct_s:.4f}"],
        *[
            [name, "-" if value is None else f"{value:.4f}"]
            for name, value in fct.percentiles.items()
        ],
    ]
    print(format_table(["FCT", "seconds"], rows))
    if fct.pages:
        print()
        page_rows = [
            ["pages", str(fct.pages)],
            [
                "mean load",
                "-" if fct.mean_page_load_s is None else f"{fct.mean_page_load_s:.4f}",
            ],
            *[
                [name, "-" if value is None else f"{value:.4f}"]
                for name, value in fct.page_load_percentiles.items()
            ],
        ]
        print(format_table(["page load", "value"], page_rows))
    if fct.size_deciles:
        print()
        decile_rows = [
            [
                row["decile"],
                row["flows"],
                row["min_bytes"],
                row["max_bytes"],
                f"{row['mean_fct_s']:.4f}",
                f"{row['p99_fct_s']:.4f}",
            ]
            for row in fct.size_deciles
        ]
        print(
            format_table(
                ["size decile", "flows", "min bytes", "max bytes", "mean fct s", "p99 fct s"],
                decile_rows,
            )
        )
    if comparison is not None:
        print()
        print(
            "flow-level vs packet-level FCT: "
            f"completion agreement {comparison.completion_agreement:.3f}, "
            f"mean rel err {comparison.mean_rel_error}, "
            f"max rel err {comparison.max_rel_error}"
        )
    return 0


def _baseline_status(kernel: str, explicit: Optional[str]) -> dict:
    """Bench-baseline drift status for ``info`` (no benchmarks are run).

    Reuses :func:`repro.measure.baseline.environment_drift` -- the same
    detection ``check_regression.py`` warns with -- so the CLI can state
    whether the committed baseline numbers are comparable to this machine.
    """
    from .measure.baseline import environment_drift, find_baseline, load_baseline

    path = find_baseline(kernel, explicit)
    if path is None:
        return {"status": "missing", "path": explicit, "drift": []}
    try:
        payload = load_baseline(path)
    except (OSError, ValueError) as error:
        return {"status": "unreadable", "path": str(path), "drift": [str(error)]}
    drift = environment_drift(payload, kernel=kernel)
    return {
        "status": "drift" if drift else "comparable",
        "path": str(path),
        "drift": drift,
        "recorded": {
            field: payload.get(field) for field in ("python", "platform", "kernel")
        },
    }


def _command_info(args: argparse.Namespace) -> int:
    import platform

    from .kernel import kernel_info

    kernel = kernel_info()
    baseline = _baseline_status(kernel["kernel"], args.baseline)
    if args.json:
        print(
            _dumps(
                {
                    "version": __version__,
                    "python": sys.version.split()[0],
                    "platform": platform.platform(),
                    "kernel": kernel,
                    "baseline": baseline,
                }
            )
        )
        return 0

    print(f"mptcp-overlap {__version__}")
    print(f"python:    {sys.version.split()[0]}")
    print(f"platform:  {platform.platform()}")
    print(f"kernel:    {kernel['kernel']} (REPRO_KERNEL mode: {kernel['mode']})")
    if kernel["extension"]:
        print(f"extension: {kernel['extension']}")
    else:
        print(f"extension: not loaded ({kernel['compiled_reason']})")
    if baseline["status"] == "missing":
        print(
            f"baseline:  none recorded for the {kernel['kernel']} kernel "
            "(record with: pytest benchmarks/bench_perf_baseline.py)"
        )
    elif baseline["status"] == "unreadable":
        print(f"baseline:  {baseline['path']} unreadable: {baseline['drift'][0]}")
    elif baseline["drift"]:
        print(f"baseline:  {baseline['path']} DRIFT")
        for message in baseline["drift"]:
            print(f"  - {message}")
        print("  (timings are cross-environment; re-record with bench_perf_baseline.py)")
    else:
        print(f"baseline:  {baseline['path']} comparable to this environment")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``mptcp-overlap`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "lp": _command_lp,
        "figure": _command_figure,
        "compare": _command_compare,
        "sweep": _command_sweep,
        "fairness": _command_fairness,
        "dynamics": _command_dynamics,
        "campaign": _command_campaign,
        "workload": _command_workload,
        "info": _command_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
