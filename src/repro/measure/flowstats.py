"""Per-subflow and per-connection statistics extracted from a finished run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.connection import MptcpConnection
from ..core.subflow import Subflow
from ..units import to_milliseconds


@dataclass
class SubflowStats:
    """Summary of one subflow after a run."""

    subflow_id: int
    name: str
    tag: Optional[int]
    is_default: bool
    bytes_acked: int
    mean_throughput_mbps: float
    retransmissions: int
    timeouts: int
    fast_retransmits: int
    final_cwnd_segments: float
    srtt_ms: Optional[float]

    def as_dict(self) -> dict:
        return {
            "subflow_id": self.subflow_id,
            "name": self.name,
            "tag": self.tag,
            "is_default": self.is_default,
            "bytes_acked": self.bytes_acked,
            "mean_throughput_mbps": round(self.mean_throughput_mbps, 3),
            "retransmissions": self.retransmissions,
            "timeouts": self.timeouts,
            "fast_retransmits": self.fast_retransmits,
            "final_cwnd_segments": round(self.final_cwnd_segments, 2),
            "srtt_ms": None if self.srtt_ms is None else round(self.srtt_ms, 3),
        }


@dataclass
class ConnectionStats:
    """Summary of an MPTCP connection after a run."""

    congestion_control: str
    scheduler: str
    duration: float
    bytes_delivered: int
    total_throughput_mbps: float
    retransmissions: int
    duplicate_bytes: int
    subflows: List[SubflowStats]

    def as_dict(self) -> dict:
        return {
            "congestion_control": self.congestion_control,
            "scheduler": self.scheduler,
            "duration_s": round(self.duration, 3),
            "bytes_delivered": self.bytes_delivered,
            "total_throughput_mbps": round(self.total_throughput_mbps, 3),
            "retransmissions": self.retransmissions,
            "duplicate_bytes": self.duplicate_bytes,
            "subflows": [s.as_dict() for s in self.subflows],
        }

    def subflow_by_name(self, name: str) -> SubflowStats:
        for stats in self.subflows:
            if stats.name == name:
                return stats
        raise KeyError(name)


def subflow_stats(subflow: Subflow, now: float) -> SubflowStats:
    """Extract a :class:`SubflowStats` snapshot from a live subflow."""
    sender = subflow.sender
    return SubflowStats(
        subflow_id=subflow.subflow_id,
        name=subflow.name,
        tag=subflow.tag,
        is_default=subflow.is_default,
        bytes_acked=subflow.acked_bytes,
        mean_throughput_mbps=subflow.mean_throughput_mbps(now),
        retransmissions=sender.stats.retransmissions if sender else 0,
        timeouts=sender.stats.timeouts if sender else 0,
        fast_retransmits=sender.stats.fast_retransmits if sender else 0,
        final_cwnd_segments=subflow.cwnd_segments,
        srtt_ms=None if subflow.srtt is None else to_milliseconds(subflow.srtt),
    )


def connection_stats(connection: MptcpConnection, duration: float) -> ConnectionStats:
    """Extract a :class:`ConnectionStats` summary from a finished connection."""
    now = connection.network.sim.now
    return ConnectionStats(
        congestion_control=connection.congestion_control_name,
        scheduler=connection.scheduler.name,
        duration=duration,
        bytes_delivered=connection.bytes_delivered,
        total_throughput_mbps=connection.total_throughput_mbps(duration),
        retransmissions=connection.total_retransmissions(),
        duplicate_bytes=connection.reassembler.duplicate_bytes,
        subflows=[subflow_stats(sf, now) for sf in connection.subflows],
    )
