"""Throughput time series from captured packets (the tshark post-processing).

The paper reports "the throughput of each flow sampled with 10 or 100 ms by
tshark at the receiver side".  :func:`throughput_timeseries` performs the same
binning: captured packet records are filtered (typically by tag) and the bytes
received in each sampling interval are converted to Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..netsim.capture import CaptureRecord, PacketCapture
from ..units import throughput_mbps


@dataclass
class TimeSeries:
    """A regularly sampled throughput series.

    ``times[i]`` is the *end* of the i-th sampling interval and ``values[i]``
    the mean throughput (Mbps) inside that interval, matching how tshark's
    ``io,stat`` output is usually plotted.
    """

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    label: str = ""
    interval: float = 0.1

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    # ------------------------------------------------------------------ stats
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean()
        variance = sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        return variance ** 0.5

    def coefficient_of_variation(self) -> float:
        mean = self.mean()
        return self.stddev() / mean if mean > 0 else 0.0

    def window(self, start: float, end: float) -> "TimeSeries":
        """The sub-series with ``start < time <= end``."""
        pairs = [(t, v) for t, v in zip(self.times, self.values) if start < t <= end]
        return TimeSeries(
            times=[t for t, _ in pairs],
            values=[v for _, v in pairs],
            label=self.label,
            interval=self.interval,
        )

    def mean_over(self, start: float, end: float) -> float:
        return self.window(start, end).mean()

    def value_at(self, time: float) -> float:
        """The sample whose interval contains ``time`` (0 outside the series)."""
        for t, v in zip(self.times, self.values):
            if t - self.interval < time <= t:
                return v
        return 0.0

    def first_time_above(self, threshold: float) -> Optional[float]:
        """First sample time whose value is at least ``threshold`` (or None)."""
        for t, v in zip(self.times, self.values):
            if v >= threshold:
                return t
        return None

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples at or above ``threshold``."""
        if not self.values:
            return 0.0
        return sum(1 for v in self.values if v >= threshold) / len(self.values)


def throughput_timeseries(
    records: Iterable[CaptureRecord],
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
    use_payload: bool = False,
    label: str = "",
) -> TimeSeries:
    """Bin captured packets into a throughput time series.

    Parameters
    ----------
    records:
        Capture records (typically ``capture.filter(tag=...)``).
    interval:
        Sampling interval in seconds (the paper uses 0.01 and 0.1).
    start, end:
        Time range; ``end`` defaults to the last record's timestamp rounded up
        to a full interval.
    use_payload:
        Count payload bytes only instead of wire bytes (goodput vs throughput).
    """
    records = list(records)
    if interval <= 0:
        raise ValueError("interval must be positive")
    if end is None:
        end = max((r.time for r in records), default=start) + interval
    bin_count = max(int((end - start) / interval + 0.5), 1)
    bins = [0] * bin_count
    for record in records:
        if record.time < start or record.time > end:
            continue
        index = min(int((record.time - start) / interval), bin_count - 1)
        bins[index] += record.payload_len if use_payload else record.size

    times = [start + (i + 1) * interval for i in range(bin_count)]
    values = [throughput_mbps(num_bytes, interval) for num_bytes in bins]
    return TimeSeries(times=times, values=values, label=label, interval=interval)


def per_tag_timeseries(
    capture: PacketCapture,
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
    tags: Optional[Sequence[int]] = None,
) -> Dict[int, TimeSeries]:
    """One throughput series per tag seen in the capture (the Fig. 2 curves)."""
    if tags is None:
        tags = capture.tags()
    return {
        tag: throughput_timeseries(
            capture.filter(tag=tag), interval, start=start, end=end, label=f"tag {tag}"
        )
        for tag in tags
    }


def total_timeseries(
    capture: PacketCapture,
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
) -> TimeSeries:
    """Aggregate throughput series over all data packets (the 'Total' curve)."""
    return throughput_timeseries(
        capture.filter(data_only=True), interval, start=start, end=end, label="Total"
    )


def sum_series(series: Sequence[TimeSeries], label: str = "Total") -> TimeSeries:
    """Pointwise sum of series sampled on the same grid."""
    if not series:
        return TimeSeries(label=label)
    length = min(len(s) for s in series)
    times = list(series[0].times[:length])
    values = [sum(s.values[i] for s in series) for i in range(length)]
    return TimeSeries(times=times, values=values, label=label, interval=series[0].interval)
