"""Throughput time series from captured packets (the tshark post-processing).

The paper reports "the throughput of each flow sampled with 10 or 100 ms by
tshark at the receiver side".  :func:`throughput_timeseries` performs the same
binning: captured packet records are filtered (typically by tag) and the bytes
received in each sampling interval are converted to Mbps.

The binning is vectorised: record timestamps and byte counts are mapped to
bin indices in one shot and accumulated with :func:`numpy.bincount`, which is
bit-for-bit identical to the historical per-record Python loop (integer byte
counts are exact in float64 and the per-bin Mbps conversion applies the same
operations in the same order).  :func:`per_tag_timeseries` extracts the
capture's columns once and bins every tag from that single pass instead of
running one full filter per tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netsim.capture import CaptureColumns, CaptureRecord, PacketCapture

#: Anything :func:`throughput_timeseries` can bin.
BinSource = Union[Iterable[CaptureRecord], CaptureColumns, PacketCapture]


@dataclass
class TimeSeries:
    """A regularly sampled throughput series.

    ``times[i]`` is the *end* of the i-th sampling interval and ``values[i]``
    the mean throughput (Mbps) inside that interval, matching how tshark's
    ``io,stat`` output is usually plotted.

    ``times`` and ``values`` stay plain Python lists (callers index, slice
    and compare them), but every statistic is computed on a numpy view.
    """

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    label: str = ""
    interval: float = 0.1

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=np.float64), np.asarray(self.values, dtype=np.float64)

    # ------------------------------------------------------------------ stats
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def min(self) -> float:
        return float(np.min(self.values)) if self.values else 0.0

    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def coefficient_of_variation(self) -> float:
        mean = self.mean()
        return self.stddev() / mean if mean > 0 else 0.0

    def window(self, start: float, end: float) -> "TimeSeries":
        """The sub-series with ``start < time <= end``."""
        times, values = self._arrays()
        mask = (times > start) & (times <= end)
        return TimeSeries(
            times=times[mask].tolist(),
            values=values[mask].tolist(),
            label=self.label,
            interval=self.interval,
        )

    def mean_over(self, start: float, end: float) -> float:
        return self.window(start, end).mean()

    def value_at(self, time: float) -> float:
        """The sample whose interval contains ``time`` (0 outside the series)."""
        times, values = self._arrays()
        mask = (times - self.interval < time) & (time <= times)
        index = int(np.argmax(mask)) if mask.any() else -1
        return float(values[index]) if index >= 0 else 0.0

    def first_time_above(self, threshold: float) -> Optional[float]:
        """First sample time whose value is at least ``threshold`` (or None)."""
        times, values = self._arrays()
        mask = values >= threshold
        if not mask.any():
            return None
        return float(times[int(np.argmax(mask))])

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples at or above ``threshold``."""
        if not self.values:
            return 0.0
        _, values = self._arrays()
        return float(np.count_nonzero(values >= threshold)) / len(values)


# ---------------------------------------------------------------------- binning
def _extract_arrays(records: BinSource, use_payload: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Timestamps and byte counts of ``records`` as flat arrays."""
    if isinstance(records, PacketCapture):
        records = records.columns(data_only=True)
    if isinstance(records, CaptureColumns):
        return records.time, records.payload_len if use_payload else records.size
    materialised = records if isinstance(records, (list, tuple)) else list(records)
    times = np.fromiter((r.time for r in materialised), dtype=np.float64, count=len(materialised))
    if use_payload:
        sizes = np.fromiter((r.payload_len for r in materialised), dtype=np.int64, count=len(materialised))
    else:
        sizes = np.fromiter((r.size for r in materialised), dtype=np.int64, count=len(materialised))
    return times, sizes


def _bin_series(
    times: np.ndarray,
    sizes: np.ndarray,
    interval: float,
    start: float,
    end: Optional[float],
    label: str,
) -> TimeSeries:
    """Vectorised equivalent of the historical per-record binning loop."""
    if end is None:
        end = (float(times.max()) if len(times) else start) + interval
    bin_count = max(int((end - start) / interval + 0.5), 1)
    in_range = (times >= start) & (times <= end)
    # Same arithmetic as the scalar loop: truncate (time - start) / interval,
    # clamp the final partial interval into the last bin.
    indices = ((times[in_range] - start) / interval).astype(np.int64)
    np.minimum(indices, bin_count - 1, out=indices)
    bins = np.bincount(indices, weights=sizes[in_range], minlength=bin_count)
    # Mbps conversion, elementwise in the same operation order as
    # units.throughput_mbps: (bytes * 8 / duration) / 1e6.
    values = (bins * 8.0 / interval) / 1e6
    times_out = (np.arange(1, bin_count + 1, dtype=np.int64) * interval + start).tolist()
    return TimeSeries(times=times_out, values=values.tolist(), label=label, interval=interval)


def throughput_timeseries(
    records: BinSource,
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
    use_payload: bool = False,
    label: str = "",
) -> TimeSeries:
    """Bin captured packets into a throughput time series.

    Parameters
    ----------
    records:
        Capture records (typically ``capture.filter(tag=...)``), a
        :class:`CaptureColumns` selection, or a whole :class:`PacketCapture`
        (binned data-only, the columnar fast path).
    interval:
        Sampling interval in seconds (the paper uses 0.01 and 0.1).
    start, end:
        Time range; ``end`` defaults to the last record's timestamp rounded up
        to a full interval.
    use_payload:
        Count payload bytes only instead of wire bytes (goodput vs throughput).
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    times, sizes = _extract_arrays(records, use_payload)
    return _bin_series(times, sizes, interval, start, end, label)


def per_tag_timeseries(
    capture: PacketCapture,
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
    tags: Optional[Sequence[int]] = None,
) -> Dict[int, TimeSeries]:
    """One throughput series per tag seen in the capture (the Fig. 2 curves).

    The capture's columns are extracted once and every tag is binned from
    that single grouped pass, instead of one full record filter per tag.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if tags is None:
        tags = capture.tags()
    cols = capture.columns(data_only=True)
    result: Dict[int, TimeSeries] = {}
    for tag in tags:
        mask = cols.tag == tag
        result[tag] = _bin_series(
            cols.time[mask], cols.size[mask], interval, start, end, f"tag {tag}"
        )
    return result


def total_timeseries(
    capture: PacketCapture,
    interval: float = 0.1,
    *,
    start: float = 0.0,
    end: Optional[float] = None,
) -> TimeSeries:
    """Aggregate throughput series over all data packets (the 'Total' curve)."""
    return throughput_timeseries(
        capture.columns(data_only=True), interval, start=start, end=end, label="Total"
    )


def sum_series(series: Sequence[TimeSeries], label: str = "Total") -> TimeSeries:
    """Pointwise sum of series sampled on the same grid."""
    if not series:
        return TimeSeries(label=label)
    length = min(len(s) for s in series)
    times = list(series[0].times[:length])
    stacked = np.array([s.values[:length] for s in series], dtype=np.float64)
    values = [float(v) for v in stacked.sum(axis=0)]
    return TimeSeries(times=times, values=values, label=label, interval=series[0].interval)
