"""Bench-baseline bookkeeping shared by the CLI and the regression guard.

The repository records benchmark baselines per kernel (see
:mod:`repro.kernel`): ``benchmarks/BENCH_engine.json`` holds the
compiled-kernel timings (the performance contract of the compiled event
loop) and ``benchmarks/BENCH_engine_python.json`` the pure-Python ones, so
a fallback environment without a C compiler is guarded against the right
trajectory instead of the compiled targets.

Two consumers share this module:

* ``benchmarks/check_regression.py`` selects the baseline matching the
  active kernel and *warns* on environment drift before re-timing;
* ``repro.cli info`` *reports* the same drift as a status, so "are these
  baselines comparable to my machine?" is answerable without running the
  benchmarks.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import Dict, List, Optional, Union

__all__ = [
    "baseline_basename",
    "environment_drift",
    "find_baseline",
    "load_baseline",
    "running_environment",
]

#: Compiled-kernel baseline (the historical file name keeps its role as the
#: primary performance contract).
BASELINE_BASENAME = "BENCH_engine.json"
#: Pure-Python fallback baseline.
PYTHON_BASELINE_BASENAME = "BENCH_engine_python.json"


def baseline_basename(kernel: str) -> str:
    """The baseline file guarding ``kernel`` timings."""
    return BASELINE_BASENAME if kernel == "compiled" else PYTHON_BASELINE_BASENAME


def find_baseline(
    kernel: str, explicit: Union[str, pathlib.Path, None] = None
) -> Optional[pathlib.Path]:
    """Locate the baseline file for ``kernel``; None when absent.

    Searches an explicitly given path first, then ``benchmarks/`` under the
    current directory and under the repository root (derived from this
    package's location -- absent for wheel installs, which carry no
    benchmark data).
    """
    if explicit is not None:
        path = pathlib.Path(explicit)
        return path if path.is_file() else None
    name = baseline_basename(kernel)
    candidates = [
        pathlib.Path.cwd() / "benchmarks" / name,
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / name,
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def load_baseline(path: Union[str, pathlib.Path]) -> dict:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def running_environment(kernel: Optional[str] = None) -> Dict[str, str]:
    """The environment fields a baseline records, as of this process."""
    running = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if kernel is not None:
        running["kernel"] = kernel
    return running


def environment_drift(
    payload: dict, *, kernel: Optional[str] = None
) -> List[str]:
    """Mismatches between a baseline's recorded environment and this one.

    Returns one human-readable message per drifted field (python version,
    platform and -- when ``kernel`` is given -- the recording kernel); an
    empty list means the baseline is directly comparable.  Fields the
    baseline never recorded are not drift.
    """
    messages = []
    for field, current in running_environment(kernel).items():
        recorded = payload.get(field)
        if recorded is not None and recorded != current:
            messages.append(
                f"baseline {field} is {recorded!r} but this run uses {current!r}"
            )
    return messages
