"""Congestion-signal-plane metrics: ECN marking and AQM drop behaviour.

Aggregates the per-queue counters of a packet-level network (see
:meth:`repro.netsim.network.Network.signal_plane_totals`) into the rates and
delays the experiment layer reports per run: marks and early drops per
second, the split between AQM-law drops and buffer exhaustion, and the mean
sojourn time packets spent queued at an AQM discipline.  The flow-level
backend synthesises the same record analytically so cross-fidelity
comparisons line up key-for-key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.network import Network


class SignalPlaneReport:
    """Network-wide congestion-signal counters normalised over a run."""

    __slots__ = (
        "duration",
        "ecn_marks",
        "early_drops",
        "full_drops",
        "total_drops",
        "mean_queue_delay_s",
    )

    def __init__(
        self,
        *,
        duration: float,
        ecn_marks: int = 0,
        early_drops: int = 0,
        full_drops: int = 0,
        total_drops: int = 0,
        mean_queue_delay_s: float = 0.0,
    ) -> None:
        self.duration = duration
        self.ecn_marks = ecn_marks
        self.early_drops = early_drops
        self.full_drops = full_drops
        self.total_drops = total_drops
        self.mean_queue_delay_s = mean_queue_delay_s

    @property
    def marking_rate_per_s(self) -> float:
        return self.ecn_marks / self.duration if self.duration > 0 else 0.0

    @property
    def early_drop_rate_per_s(self) -> float:
        return self.early_drops / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "ecn_marks": self.ecn_marks,
            "marking_rate_per_s": self.marking_rate_per_s,
            "early_drops": self.early_drops,
            "early_drop_rate_per_s": self.early_drop_rate_per_s,
            "full_drops": self.full_drops,
            "total_drops": self.total_drops,
            "mean_queue_delay_s": self.mean_queue_delay_s,
        }


def signal_plane_report(network: "Network", duration: float) -> SignalPlaneReport:
    """Build the :class:`SignalPlaneReport` of one packet-level run."""
    totals = network.signal_plane_totals()
    dequeued = totals["dequeued"]
    mean_delay = totals["queue_delay_sum"] / dequeued if dequeued else 0.0
    return SignalPlaneReport(
        duration=duration,
        ecn_marks=totals["ecn_marks"],
        early_drops=totals["early_drops"],
        full_drops=totals["full_drops"],
        total_drops=totals["dropped"],
        mean_queue_delay_s=mean_delay,
    )


#: Nominal congestion-signal rate per responsive flow at a saturated AQM
#: bottleneck: one signal every 50 ms (roughly once per RTT at the default
#: topologies' delays).  A modelling constant, not a measured quantity.
NOMINAL_SIGNALS_PER_FLOW_PER_S = 20.0

#: Utilisation above which the fluid model considers the bottleneck
#: congested (greedy responsive flows pin the allocation at capacity).
CONGESTION_UTILIZATION = 0.9


def modeled_signal_plane(
    *,
    duration: float,
    queue_kind: str,
    ecn: bool,
    utilization: float,
    flows: int = 1,
    queue_packets: int = 100,
    mean_pkt_time: float = 0.001,
) -> SignalPlaneReport:
    """Analytic stand-in used by the flow-level backend.

    The fluid engine never drops or marks anything, so the signal plane of a
    flow-level run is synthesised deterministically (NaN-free by
    construction): when the achieved utilisation says the bottleneck is
    saturated, each responsive flow collects signals at the nominal
    once-per-RTT rate, split between CE marks and early drops by the ECN
    setting, and the standing-queue delay is the discipline's operating
    point (CoDel pins the sojourn time at its 5 ms target; RED sits near the
    mid-threshold; drop-tail at a full buffer).
    """
    if duration <= 0:
        return SignalPlaneReport(duration=0.0)
    if not (utilization >= 0.0):  # also catches NaN
        utilization = 0.0
    congested = utilization >= CONGESTION_UTILIZATION
    if not congested:
        return SignalPlaneReport(duration=duration)
    signals = int(max(flows, 1) * NOMINAL_SIGNALS_PER_FLOW_PER_S * duration)
    if queue_kind == "droptail":
        return SignalPlaneReport(
            duration=duration,
            full_drops=signals,
            total_drops=signals,
            mean_queue_delay_s=queue_packets * mean_pkt_time,
        )
    if queue_kind == "codel":
        standing_delay = 0.005
    else:
        standing_delay = 0.5 * queue_packets * mean_pkt_time
    if ecn:
        return SignalPlaneReport(
            duration=duration,
            ecn_marks=signals,
            mean_queue_delay_s=standing_delay,
        )
    return SignalPlaneReport(
        duration=duration,
        early_drops=signals,
        total_drops=signals,
        mean_queue_delay_s=standing_delay,
    )
