"""Model-vs-simulation cross-validation.

The paper's central claim is that the analytical machinery -- the Fig. 1c
constraint system, the max-throughput LP and the fluid congestion-control
dynamics -- *predicts* what the packet-level simulator measures.  This module
systematically checks that claim for one run and aggregates the check across
a parameter grid:

* :func:`validate_against_models` compares measured steady-state per-path
  rates against four reference allocations on the same constraint system
  (LP optimum, max-min fair, proportionally fair, fluid equilibrium of the
  matching congestion-control family), reporting the relative total-rate
  error and the rank agreement of the per-path rates per model;
* :func:`validate_experiment` / :func:`validate_multiflow` adapt the two run
  result types to that comparison;
* :class:`ValidationReport` aggregates per-point validations into
  grid-level error distributions (mean / median / p90 / max relative error
  and mean rank agreement per model), the summary a campaign prints.

Everything here is NaN-safe by construction: a non-finite measurement or a
zero prediction yields ``None`` metrics, never a NaN that would leak into
JSON output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..model.bottleneck import ConstraintSystem, build_constraints
from ..model.fluid import FluidModel
from ..model.lp import max_total_throughput, proportional_fair_rates
from ..model.maxmin import max_min_fair_rates
from .sampling import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.harness import ExperimentResult
    from ..experiments.multiflow import MultiFlowResult
    from ..workload.runner import WorkloadResult
    from .fct import FctReport

#: The reference allocations a measurement is held against, in report order.
VALIDATION_MODELS = ("lp", "max_min", "proportional_fair", "fluid")

#: Packet-level congestion control -> fluid-model algorithm family.
_FLUID_ALGORITHM = {
    "cubic": "uncoupled",
    "reno": "uncoupled",
    "uncoupled": "uncoupled",
    "lia": "lia",
    "olia": "olia",
}


def relative_error(measured: float, predicted: float) -> Optional[float]:
    """``|measured - predicted| / predicted``, or None when undefined.

    Undefined means a non-finite operand or a non-positive prediction (a
    zero-rate prediction carries no scale to be relative to).
    """
    if not (math.isfinite(measured) and math.isfinite(predicted)):
        return None
    if predicted <= 0.0:
        return None
    return abs(measured - predicted) / predicted


def rank_agreement(
    measured: Sequence[float], predicted: Sequence[float], *, tol: float = 1e-6
) -> Optional[float]:
    """Fraction of path pairs ordered the same way by measurement and model.

    A Kendall-style concordance in [0, 1]: for every pair of paths, the
    comparison (greater / smaller / tied within ``tol`` relative tolerance)
    of the measured rates is held against the predicted rates.  1.0 means
    the model predicts the complete per-path ordering; ``None`` when there
    are fewer than two paths or a non-finite rate.
    """
    if len(measured) != len(predicted):
        raise ModelError("measured and predicted rate vectors differ in length")
    n = len(measured)
    if n < 2:
        return None
    if not all(math.isfinite(v) for v in measured):
        return None
    if not all(math.isfinite(v) for v in predicted):
        return None

    def _cmp(a: float, b: float) -> int:
        scale = max(abs(a), abs(b), 1.0)
        if abs(a - b) <= tol * scale:
            return 0
        return 1 if a > b else -1

    agree = 0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            if _cmp(measured[i], measured[j]) == _cmp(predicted[i], predicted[j]):
                agree += 1
    return agree / pairs


@dataclass
class ModelPrediction:
    """One reference allocation held against a measurement."""

    model: str
    rates: List[float]
    total: float
    measured_total: float
    rel_error: Optional[float]
    rank_agreement: Optional[float]

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "rates": [round(r, 4) for r in self.rates],
            "total": round(self.total, 4),
            "measured_total": round(self.measured_total, 4),
            "rel_error": None if self.rel_error is None else round(self.rel_error, 6),
            "rank_agreement": None
            if self.rank_agreement is None
            else round(self.rank_agreement, 4),
        }


@dataclass
class PointValidation:
    """Model-vs-simulation comparison of one run (one grid point)."""

    measured_rates: List[float]
    measured_total: float
    algorithm: str
    predictions: Dict[str, ModelPrediction] = field(default_factory=dict)

    @property
    def lp_rel_error(self) -> Optional[float]:
        prediction = self.predictions.get("lp")
        return prediction.rel_error if prediction is not None else None

    def as_dict(self) -> dict:
        return {
            "measured_rates": [round(r, 4) for r in self.measured_rates],
            "measured_total": round(self.measured_total, 4),
            "algorithm": self.algorithm,
            "predictions": {
                name: prediction.as_dict()
                for name, prediction in self.predictions.items()
            },
        }


def _finite(values: Iterable[float]) -> List[float]:
    return [float(v) for v in values if v is not None and math.isfinite(float(v))]


def validate_against_models(
    system: ConstraintSystem,
    measured_rates: Sequence[float],
    *,
    algorithm: str = "cubic",
    rtts: Optional[Sequence[float]] = None,
    fluid_duration: float = 8.0,
) -> PointValidation:
    """Compare measured per-path rates against every reference allocation.

    Parameters
    ----------
    system:
        The constraint system of the run's paths on its topology.
    measured_rates:
        Measured steady-state rate per path (Mbps), in path order.
    algorithm:
        The packet-level congestion control, used to pick the fluid-model
        family (unknown algorithms fall back to uncoupled AIMD).
    rtts:
        Optional per-path RTTs for the fluid model.
    """
    if len(measured_rates) != system.path_count:
        raise ModelError(
            f"expected {system.path_count} measured rates, got {len(measured_rates)}"
        )
    system.validate()
    measured = [float(r) if math.isfinite(float(r)) else 0.0 for r in measured_rates]
    measured_total = float(sum(measured))

    def _prediction(model: str, rates: Sequence[float]) -> ModelPrediction:
        rates = [float(r) for r in rates]
        total = float(sum(rates))
        return ModelPrediction(
            model=model,
            rates=rates,
            total=total,
            measured_total=measured_total,
            rel_error=relative_error(measured_total, total),
            rank_agreement=rank_agreement(measured, rates),
        )

    predictions: Dict[str, ModelPrediction] = {}
    predictions["lp"] = _prediction("lp", max_total_throughput(system).rates)
    predictions["max_min"] = _prediction("max_min", max_min_fair_rates(system).rates)
    try:
        predictions["proportional_fair"] = _prediction(
            "proportional_fair", proportional_fair_rates(system).rates
        )
    except ModelError:
        # No scipy (or the SLSQP solve failed): skip this reference rather
        # than fail the whole point.
        pass
    fluid = FluidModel(system, rtts).run(
        _FLUID_ALGORITHM.get(algorithm.lower(), "uncoupled"),
        duration=fluid_duration,
    )
    predictions["fluid"] = _prediction("fluid", fluid.mean_rates(0.25))

    return PointValidation(
        measured_rates=measured,
        measured_total=measured_total,
        algorithm=algorithm,
        predictions=predictions,
    )


def _tail_mean(series: TimeSeries, tail_fraction: float = 0.5) -> float:
    """Mean over the final ``tail_fraction`` of a series (0.0 when empty)."""
    if not series.values:
        return 0.0
    start = int(len(series.values) * (1.0 - tail_fraction))
    tail = series.values[min(start, len(series.values) - 1):]
    return float(sum(tail)) / len(tail)


def validate_experiment(
    result: "ExperimentResult", *, tail_fraction: float = 0.5
) -> PointValidation:
    """Cross-validate one single-connection run against the model suite."""
    # The constraint system carries the exact paths the run was measured on
    # (same order, same tags) -- no need to rebuild the scenario.
    measured = [
        _tail_mean(result.per_path_series[path.tag], tail_fraction)
        if path.tag in result.per_path_series
        else 0.0
        for path in result.constraint_system.paths
    ]
    return validate_against_models(
        result.constraint_system,
        measured,
        algorithm=result.config.congestion_control,
    )


def validate_multiflow(
    result: "MultiFlowResult", *, tail_fraction: float = 0.5
) -> PointValidation:
    """Cross-validate one multi-flow run against the model suite.

    The scenario's base paths form the allocation units: each base path's
    measured rate is the steady-state throughput the owning flow(s) achieved
    on it, compared against the reference allocations on the base-path
    constraint system.
    """
    topology, base_paths = result.config.build_scenario()
    system = build_constraints(topology, base_paths)
    measured = []
    for path in base_paths:
        tag = path.tag
        rate = 0.0
        for flow in result.flows:
            series = flow.per_path_series.get(tag)
            if series is not None and flow.tag_map.get(tag) is not None:
                rate += _tail_mean(series, tail_fraction)
        measured.append(rate)
    algorithm = next(
        (
            flow.spec.congestion_control or "lia"
            for flow in result.flows
            if flow.kind == "mptcp"
        ),
        "uncoupled",
    )
    return validate_against_models(system, measured, algorithm=algorithm)


# -------------------------------------------------------------- cross-fidelity
@dataclass
class BackendComparison:
    """Flow-level-vs-packet-level agreement on one scenario.

    The packet-level simulator is the ground truth; every relative error is
    taken against its rates.  ``rank_agreement`` is the same Kendall-style
    concordance used for the model predictions, answering "does the fluid
    backend order the flows the way the packet backend does?".
    """

    scenario: str
    per_flow: Dict[str, dict] = field(default_factory=dict)
    mean_rel_error: Optional[float] = None
    max_rel_error: Optional[float] = None
    rank_agreement: Optional[float] = None

    def as_dict(self) -> dict:
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 6)

        return {
            "scenario": self.scenario,
            "per_flow": self.per_flow,
            "mean_rel_error": _round(self.mean_rel_error),
            "max_rel_error": _round(self.max_rel_error),
            "rank_agreement": _round(self.rank_agreement),
        }


def compare_backend_rates(
    flowlevel_mbps: Dict[str, float],
    packet_mbps: Dict[str, float],
    *,
    scenario: str = "",
    rank_tol: float = 0.02,
) -> BackendComparison:
    """Compare per-flow steady-state rates from the two backends.

    Both dicts must cover the same flows.  ``rank_tol`` is the relative
    tolerance under which two packet-level rates count as tied (packet rates
    carry sampling noise that strict comparison would misread as order).
    """
    if set(flowlevel_mbps) != set(packet_mbps):
        raise ModelError(
            "backend comparison needs identical flow sets; "
            f"got {sorted(flowlevel_mbps)} vs {sorted(packet_mbps)}"
        )
    names = sorted(flowlevel_mbps)
    per_flow: Dict[str, dict] = {}
    errors: List[float] = []
    for name in names:
        fluid = float(flowlevel_mbps[name])
        packet = float(packet_mbps[name])
        error = relative_error(fluid, packet)
        per_flow[name] = {
            "flowlevel_mbps": round(fluid, 4),
            "packet_mbps": round(packet, 4),
            "rel_error": None if error is None else round(error, 6),
        }
        if error is not None:
            errors.append(error)
    return BackendComparison(
        scenario=scenario,
        per_flow=per_flow,
        mean_rel_error=sum(errors) / len(errors) if errors else None,
        max_rel_error=max(errors) if errors else None,
        rank_agreement=rank_agreement(
            [flowlevel_mbps[name] for name in names],
            [packet_mbps[name] for name in names],
            tol=rank_tol,
        ),
    )


def compare_experiment_backends(
    flowlevel: "ExperimentResult",
    packet: "ExperimentResult",
    *,
    tail_fraction: float = 0.5,
    rank_tol: float = 0.02,
) -> BackendComparison:
    """Per-path rate agreement of one experiment run at both fidelities."""

    def _rates(result: "ExperimentResult") -> Dict[str, float]:
        return {
            f"path-{tag}": _tail_mean(series, tail_fraction)
            for tag, series in result.per_path_series.items()
        }

    return compare_backend_rates(
        _rates(flowlevel),
        _rates(packet),
        scenario=packet.config.name,
        rank_tol=rank_tol,
    )


def compare_multiflow_backends(
    flowlevel: "MultiFlowResult",
    packet: "MultiFlowResult",
    *,
    rank_tol: float = 0.02,
) -> BackendComparison:
    """Per-flow rate agreement of one multi-flow run at both fidelities."""
    return compare_backend_rates(
        {flow.name: flow.mean_mbps for flow in flowlevel.flows},
        {flow.name: flow.mean_mbps for flow in packet.flows},
        scenario=packet.config.name,
        rank_tol=rank_tol,
    )


@dataclass
class FctComparison:
    """Flow-level-vs-packet-level agreement on a workload's FCT distribution.

    Both backends executed the *identical* compiled plan (same sizes, same
    arrivals, same dependency edges -- the signatures are checked), so any
    disagreement is pure fidelity: slow-start transients, queueing and
    retransmissions the fluid model abstracts away.  Packet level is the
    ground truth; relative errors are taken against it.
    """

    scenario: str
    offered: int
    flowlevel_completed: int
    packet_completed: int
    #: min/max ratio of the two completed counts (1.0 = full agreement).
    completion_agreement: Optional[float]
    #: Per percentile: flow-level FCT, packet FCT and relative error.
    percentiles: Dict[str, dict] = field(default_factory=dict)
    mean_rel_error: Optional[float] = None
    max_rel_error: Optional[float] = None

    def as_dict(self) -> dict:
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 6)

        return {
            "scenario": self.scenario,
            "offered": self.offered,
            "flowlevel_completed": self.flowlevel_completed,
            "packet_completed": self.packet_completed,
            "completion_agreement": _round(self.completion_agreement),
            "percentiles": self.percentiles,
            "mean_rel_error": _round(self.mean_rel_error),
            "max_rel_error": _round(self.max_rel_error),
        }


def compare_fct_reports(
    flowlevel: "FctReport",
    packet: "FctReport",
    *,
    scenario: str = "",
    offered: Optional[int] = None,
) -> FctComparison:
    """Compare the FCT percentile sets of two workload runs."""
    keys = sorted(set(flowlevel.percentiles) & set(packet.percentiles))
    percentiles: Dict[str, dict] = {}
    errors: List[float] = []
    for key in keys:
        fluid = flowlevel.percentiles[key]
        truth = packet.percentiles[key]
        error = (
            None
            if fluid is None or truth is None
            else relative_error(float(fluid), float(truth))
        )
        percentiles[key] = {
            "flowlevel_s": None if fluid is None else round(float(fluid), 6),
            "packet_s": None if truth is None else round(float(truth), 6),
            "rel_error": None if error is None else round(error, 6),
        }
        if error is not None:
            errors.append(error)
    agreement = None
    if flowlevel.completed > 0 and packet.completed > 0:
        pair = sorted((flowlevel.completed, packet.completed))
        agreement = pair[0] / pair[1]
    return FctComparison(
        scenario=scenario,
        offered=packet.offered if offered is None else offered,
        flowlevel_completed=flowlevel.completed,
        packet_completed=packet.completed,
        completion_agreement=agreement,
        percentiles=percentiles,
        mean_rel_error=sum(errors) / len(errors) if errors else None,
        max_rel_error=max(errors) if errors else None,
    )


def compare_workload_backends(
    flowlevel: "WorkloadResult", packet: "WorkloadResult"
) -> FctComparison:
    """FCT agreement of one workload run executed at both fidelities."""
    if flowlevel.plan.signature() != packet.plan.signature():
        raise ModelError(
            "workload backend comparison needs the same compiled plan on "
            "both backends (same spec, same seed)"
        )
    return compare_fct_reports(
        flowlevel.fct,
        packet.fct,
        scenario=packet.config.name,
        offered=packet.plan.total_transfers,
    )


# ------------------------------------------------------------------ aggregate
@dataclass
class ModelErrorStats:
    """Error distribution of one reference model across a grid."""

    model: str
    count: int
    mean_rel_error: Optional[float]
    median_rel_error: Optional[float]
    p90_rel_error: Optional[float]
    max_rel_error: Optional[float]
    mean_rank_agreement: Optional[float]

    def as_dict(self) -> dict:
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 6)

        return {
            "model": self.model,
            "count": self.count,
            "mean_rel_error": _round(self.mean_rel_error),
            "median_rel_error": _round(self.median_rel_error),
            "p90_rel_error": _round(self.p90_rel_error),
            "max_rel_error": _round(self.max_rel_error),
            "mean_rank_agreement": _round(self.mean_rank_agreement),
        }


@dataclass
class ValidationReport:
    """Grid-level aggregation of per-point validations."""

    points: int
    models: Dict[str, ModelErrorStats] = field(default_factory=dict)

    @classmethod
    def from_validations(cls, validations: Iterable[object]) -> "ValidationReport":
        """Aggregate :class:`PointValidation` objects or their ``as_dict`` forms."""
        records: List[dict] = []
        for validation in validations:
            if isinstance(validation, PointValidation):
                records.append(validation.as_dict())
            elif isinstance(validation, dict):
                records.append(validation)
        seen: set = set()
        per_model_errors: Dict[str, List[float]] = {}
        per_model_ranks: Dict[str, List[float]] = {}
        for record in records:
            for name, prediction in (record.get("predictions") or {}).items():
                seen.add(name)
                error = prediction.get("rel_error")
                if error is not None and math.isfinite(error):
                    per_model_errors.setdefault(name, []).append(float(error))
                rank = prediction.get("rank_agreement")
                if rank is not None and math.isfinite(rank):
                    per_model_ranks.setdefault(name, []).append(float(rank))

        models: Dict[str, ModelErrorStats] = {}
        for name in sorted(seen):
            errors = _finite(per_model_errors.get(name, []))
            ranks = _finite(per_model_ranks.get(name, []))
            if errors:
                array = np.asarray(errors, dtype=np.float64)
                stats = ModelErrorStats(
                    model=name,
                    count=len(errors),
                    mean_rel_error=float(array.mean()),
                    median_rel_error=float(np.median(array)),
                    p90_rel_error=float(np.percentile(array, 90)),
                    max_rel_error=float(array.max()),
                    mean_rank_agreement=(
                        float(np.mean(ranks)) if ranks else None
                    ),
                )
            else:
                stats = ModelErrorStats(
                    model=name,
                    count=0,
                    mean_rel_error=None,
                    median_rel_error=None,
                    p90_rel_error=None,
                    max_rel_error=None,
                    mean_rank_agreement=(
                        float(np.mean(ranks)) if ranks else None
                    ),
                )
            models[name] = stats
        return cls(points=len(records), models=models)

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "models": {name: stats.as_dict() for name, stats in self.models.items()},
        }
