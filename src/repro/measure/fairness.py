"""Fairness metrics for multi-flow competition scenarios.

Coupled multipath congestion control exists to answer a fairness question: an
MPTCP connection sharing a bottleneck should take no more capacity than a
single TCP flow (the design goal behind LIA/OLIA/BALIA).  These metrics turn
per-flow throughput series from a multi-flow run into the numbers that
competition studies report:

* :func:`jains_index` -- Jain's fairness index over the per-flow rates;
* :func:`bottleneck_share` -- each flow's share of measured aggregate
  throughput (and, via :func:`mptcp_vs_tcp_ratio`, the MPTCP-vs-TCP
  bottleneck-share ratio, ~1.0 for a perfectly TCP-fair coupled controller);
* :func:`settle_time` -- per-flow convergence: when a flow's throughput
  first stays inside a band around its steady-state (tail) mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from .sampling import TimeSeries


def jains_index(rates: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal rates; ``1/n`` means one flow takes everything.
    An empty or all-zero rate vector returns 0.0.
    """
    rates = [max(float(r), 0.0) for r in rates]
    if not rates:
        return 0.0
    total = sum(rates)
    squares = sum(r * r for r in rates)
    if squares <= 0.0:
        return 0.0
    return (total * total) / (len(rates) * squares)


def bottleneck_share(rates: Mapping[str, float]) -> Dict[str, float]:
    """Each flow's fraction of the measured aggregate throughput."""
    total = sum(max(rate, 0.0) for rate in rates.values())
    if total <= 0.0:
        return {name: 0.0 for name in rates}
    return {name: max(rate, 0.0) / total for name, rate in rates.items()}


def mptcp_vs_tcp_ratio(
    rates: Mapping[str, float], kinds: Mapping[str, str]
) -> Optional[float]:
    """Mean MPTCP connection rate over mean single-path TCP rate.

    The classic bottleneck-fairness number: ~1.0 when the coupled controller
    is exactly as aggressive as one TCP flow, >1 when MPTCP takes more than
    its fair share.  ``None`` when either population is absent or TCP measured
    zero throughput.
    """
    mptcp = [rates[name] for name, kind in kinds.items() if kind == "mptcp"]
    tcp = [rates[name] for name, kind in kinds.items() if kind == "tcp"]
    if not mptcp or not tcp:
        return None
    tcp_mean = sum(tcp) / len(tcp)
    if tcp_mean <= 0.0:
        return None
    return (sum(mptcp) / len(mptcp)) / tcp_mean


def settle_time(
    series: TimeSeries,
    *,
    tail_fraction: float = 0.5,
    band: float = 0.25,
    hold: int = 3,
) -> Optional[float]:
    """First time the series stays within ``band`` of its tail mean.

    The tail mean over the last ``tail_fraction`` of the run is taken as the
    flow's steady state; the settle time is the first sample from which the
    series remains inside ``[(1-band), (1+band)] * tail_mean`` for ``hold``
    consecutive samples.  ``None`` when the series never settles (or is
    empty / converges to zero).
    """
    if not series.values:
        return None
    start_index = int(len(series.values) * (1.0 - tail_fraction))
    tail = series.values[start_index:]
    tail_mean = sum(tail) / max(len(tail), 1)
    if tail_mean <= 0.0:
        return None
    low, high = (1.0 - band) * tail_mean, (1.0 + band) * tail_mean
    run = 0
    for time, value in zip(series.times, series.values):
        if low <= value <= high:
            run += 1
            if run >= hold:
                return time
        else:
            run = 0
    return None


@dataclass
class FairnessReport:
    """Fairness summary of one multi-flow run."""

    per_flow_mbps: Dict[str, float]
    kinds: Dict[str, str]
    jain_index: float
    shares: Dict[str, float]
    mptcp_tcp_ratio: Optional[float]
    settle_times: Dict[str, Optional[float]]
    bottleneck_capacity_mbps: Optional[float] = None
    aggregate_mbps: float = 0.0
    bottleneck_utilization: Optional[float] = field(default=None)

    def as_dict(self) -> dict:
        return {
            "per_flow_mbps": {k: round(v, 3) for k, v in self.per_flow_mbps.items()},
            "kinds": dict(self.kinds),
            "jain_index": round(self.jain_index, 4),
            "shares": {k: round(v, 4) for k, v in self.shares.items()},
            "mptcp_tcp_ratio": None
            if self.mptcp_tcp_ratio is None
            else round(self.mptcp_tcp_ratio, 4),
            "settle_times_s": {
                k: None if v is None else round(v, 3) for k, v in self.settle_times.items()
            },
            "bottleneck_capacity_mbps": self.bottleneck_capacity_mbps,
            "aggregate_mbps": round(self.aggregate_mbps, 3),
            "bottleneck_utilization": None
            if self.bottleneck_utilization is None
            else round(self.bottleneck_utilization, 4),
        }


def analyze_fairness(
    series_by_flow: Mapping[str, TimeSeries],
    kinds: Mapping[str, str],
    *,
    bottleneck_capacity_mbps: Optional[float] = None,
    tail_fraction: float = 0.5,
    band: float = 0.25,
    hold: int = 3,
) -> FairnessReport:
    """Produce a :class:`FairnessReport` from per-flow throughput series.

    Parameters
    ----------
    series_by_flow:
        One receiver-side throughput series per flow, keyed by flow name.
    kinds:
        Flow kind per name (``"mptcp"``, ``"tcp"``, ``"udp"``, ``"onoff"``),
        used for the MPTCP-vs-TCP share ratio.
    bottleneck_capacity_mbps:
        When given, also report aggregate utilisation of that capacity.
    """
    per_flow: Dict[str, float] = {}
    settle: Dict[str, Optional[float]] = {}
    for name, series in series_by_flow.items():
        start_index = int(len(series.values) * (1.0 - tail_fraction))
        tail = series.values[start_index:]
        per_flow[name] = sum(tail) / max(len(tail), 1) if tail else 0.0
        settle[name] = settle_time(
            series, tail_fraction=tail_fraction, band=band, hold=hold
        )
    aggregate = sum(per_flow.values())
    return FairnessReport(
        per_flow_mbps=per_flow,
        kinds=dict(kinds),
        jain_index=jains_index(list(per_flow.values())),
        shares=bottleneck_share(per_flow),
        mptcp_tcp_ratio=mptcp_vs_tcp_ratio(per_flow, kinds),
        settle_times=settle,
        bottleneck_capacity_mbps=bottleneck_capacity_mbps,
        aggregate_mbps=aggregate,
        bottleneck_utilization=(
            aggregate / bottleneck_capacity_mbps
            if bottleneck_capacity_mbps and bottleneck_capacity_mbps > 0
            else None
        ),
    )
