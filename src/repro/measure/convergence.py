"""Convergence and stability metrics for MPTCP throughput trajectories.

The paper's Section 3 makes three kinds of quantitative statements that these
metrics capture:

* whether an algorithm *reaches the optimum* ("the default (CUBIC) congestion
  control algorithm always reached the optimum; ... LIA never could reach the
  optimum");
* *how long it takes* ("OLIA had the slowest convergence time: it took 20 sec
  ... to reach the optimum");
* *how stable* the throughput is afterwards ("later, the throughput was
  unstable for short periods" for CUBIC, "after that the throughput was
  stable" for OLIA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .sampling import TimeSeries


@dataclass
class ConvergenceReport:
    """Summary of one run against a known optimum."""

    optimum: float
    achieved_mean: float
    achieved_peak: float
    reached_optimum: bool
    time_to_optimum: Optional[float]
    utilization_of_optimum: float
    stability_cv: float
    threshold_fraction: float

    def as_dict(self) -> dict:
        return {
            "optimum_mbps": round(self.optimum, 3),
            "achieved_mean_mbps": round(self.achieved_mean, 3),
            "achieved_peak_mbps": round(self.achieved_peak, 3),
            "reached_optimum": self.reached_optimum,
            "time_to_optimum_s": None
            if self.time_to_optimum is None
            else round(self.time_to_optimum, 4),
            "utilization_of_optimum": round(self.utilization_of_optimum, 4),
            "stability_cv": round(self.stability_cv, 4),
            "threshold_fraction": self.threshold_fraction,
        }


def time_to_fraction(series: TimeSeries, optimum: float, fraction: float = 0.95) -> Optional[float]:
    """First time the series reaches ``fraction`` of ``optimum`` (None if never)."""
    if optimum <= 0:
        return None
    return series.first_time_above(fraction * optimum)


def sustained_time_to_fraction(
    series: TimeSeries, optimum: float, fraction: float = 0.95, hold: int = 3
) -> Optional[float]:
    """First time the series stays at or above ``fraction`` of the optimum for
    ``hold`` consecutive samples (a stricter notion of convergence)."""
    if optimum <= 0 or not series.values:
        return None
    threshold = fraction * optimum
    run = 0
    for t, v in zip(series.times, series.values):
        if v >= threshold:
            run += 1
            if run >= hold:
                return t
        else:
            run = 0
    return None


def stability_coefficient(series: TimeSeries, tail_fraction: float = 0.5) -> float:
    """Coefficient of variation over the last ``tail_fraction`` of the series."""
    if not series.values:
        return 0.0
    start_index = int(len(series.values) * (1.0 - tail_fraction))
    tail = TimeSeries(
        times=series.times[start_index:],
        values=series.values[start_index:],
        interval=series.interval,
    )
    return tail.coefficient_of_variation()


def analyze_convergence(
    total_series: TimeSeries,
    optimum: float,
    *,
    fraction: float = 0.95,
    tail_fraction: float = 0.5,
) -> ConvergenceReport:
    """Produce a :class:`ConvergenceReport` for a total-throughput trajectory."""
    time_to_optimum = sustained_time_to_fraction(total_series, optimum, fraction)
    start_index = int(len(total_series.values) * (1.0 - tail_fraction))
    tail_mean = (
        sum(total_series.values[start_index:]) / max(len(total_series.values) - start_index, 1)
        if total_series.values
        else 0.0
    )
    return ConvergenceReport(
        optimum=optimum,
        achieved_mean=tail_mean,
        achieved_peak=total_series.max(),
        reached_optimum=time_to_optimum is not None,
        time_to_optimum=time_to_optimum,
        utilization_of_optimum=(tail_mean / optimum) if optimum > 0 else 0.0,
        stability_cv=stability_coefficient(total_series, tail_fraction),
        threshold_fraction=fraction,
    )
