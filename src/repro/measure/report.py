"""Plain-text reporting helpers (tables and paper-vs-measured comparisons).

Benchmarks and examples print their results through these helpers so every
figure/table reproduction emits the same row format that EXPERIMENTS.md
records.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def sanitize_metrics(value: object) -> object:
    """Recursively replace non-finite floats with ``None`` (JSON ``null``).

    ``json.dumps`` happily emits bare ``NaN`` / ``Infinity`` tokens, which are
    not valid JSON and break downstream parsers.  Every machine-readable
    summary (CLI ``--json`` output, the campaign result store) is passed
    through this first, and then serialised with ``allow_nan=False`` so any
    non-finite float that slips past fails loudly instead of silently
    corrupting the output.
    """
    if isinstance(value, dict):
        return {key: sanitize_metrics(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_metrics(item) for item in value]
    if isinstance(value, float):  # includes numpy.float64
        return float(value) if math.isfinite(value) else None
    return value


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)


def comparison_row(
    experiment: str,
    metric: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> Dict[str, object]:
    """One paper-vs-measured record, as written to EXPERIMENTS.md."""
    return {
        "experiment": experiment,
        "metric": metric,
        "paper": paper_value,
        "measured": measured_value,
        "note": note,
    }


def format_comparison(rows: List[Dict[str, object]]) -> str:
    """Render paper-vs-measured rows as a table."""
    return format_table(
        ["experiment", "metric", "paper", "measured", "note"],
        [[r["experiment"], r["metric"], r["paper"], r["measured"], r.get("note", "")] for r in rows],
    )


def series_summary_row(label: str, mean: float, peak: float, stddev: float) -> List[object]:
    return [label, mean, peak, stddev]


def print_section(title: str, body: str = "", *, out=None) -> None:
    """Print a titled section (used by the example scripts)."""
    import sys

    stream = out if out is not None else sys.stdout
    line = "=" * max(len(title), 8)
    print(line, file=stream)
    print(title, file=stream)
    print(line, file=stream)
    if body:
        print(body, file=stream)
    print(file=stream)
