"""Metrics for time-varying network runs (failover, capacity tracking).

The static metrics (:mod:`repro.measure.convergence`) ask "did the run reach
the optimum, how fast, how stably?".  Once the network changes mid-run
(:mod:`repro.netsim.dynamics`), three new questions appear, answered here:

* :func:`failover_gap` -- how long was connectivity degraded after an event
  (the outage between a path failing and the surviving/new subflows taking
  over)?
* :func:`reconvergence_time` -- how long after an event did throughput
  settle again?  Reuses :func:`~repro.measure.convergence.sustained_time_to_fraction`
  on the post-event window, so the notion of "settled" is identical to the
  static convergence metric -- just measured from a mid-run epoch.
* :func:`capacity_tracking_error` -- how closely did throughput follow a
  piecewise-constant capacity profile (the rate-step tracking scenario)?

:func:`analyze_dynamics` bundles all of it into a :class:`DynamicsReport`,
one epoch entry per scheduled event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .convergence import sustained_time_to_fraction
from .sampling import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.dynamics import DynamicsSpec


def failover_gap(
    series: TimeSeries,
    epoch: float,
    *,
    baseline_window: float = 0.5,
    floor_fraction: float = 0.5,
    recover_fraction: float = 0.8,
    reference: Optional[float] = None,
) -> Optional[float]:
    """Duration of the throughput outage following an event at ``epoch``.

    The pre-event baseline is the mean over the ``baseline_window`` seconds
    before ``epoch``.  The gap is the time from ``epoch`` until the series
    first climbs back to ``recover_fraction`` of the recovery level,
    *provided* it fell below ``floor_fraction`` of the baseline at all.

    The recovery level is the baseline, capped by ``reference`` when given:
    a failover onto a lower-capacity path (Wi-Fi dies, cellular takes over)
    has *recovered* once it fills the surviving capacity -- the pre-event
    level is physically unreachable and would misreport a successful
    handover as a permanent outage.  Pass the post-event capacity as
    ``reference`` (``analyze_dynamics`` does this from the spec's capacity
    profile).

    Returns 0.0 when throughput never dropped below the floor (seamless
    failover), None when there is no usable baseline, no post-event samples,
    or the series never recovers.
    """
    if not series.values:
        return None
    baseline = series.window(epoch - baseline_window, epoch).mean()
    if baseline <= 0.0:
        return None
    floor = floor_fraction * baseline
    recovery_level = baseline
    if reference is not None and 0.0 < reference < recovery_level:
        recovery_level = reference
    target = recover_fraction * recovery_level
    dipped = False
    for time, value in zip(series.times, series.values):
        if time <= epoch:
            continue
        if not dipped:
            if value < floor:
                dipped = True
            continue
        if value >= target:
            return time - epoch
    if not dipped:
        # Check there was at least one post-event sample to judge from.
        return 0.0 if series.times and series.times[-1] > epoch else None
    return None


def reconvergence_time(
    series: TimeSeries,
    epoch: float,
    reference: Optional[float] = None,
    *,
    fraction: float = 0.85,
    hold: int = 3,
    tail_fraction: float = 0.5,
) -> Optional[float]:
    """Settle time measured from a mid-run ``epoch``.

    The post-event window is held against ``reference`` (the level the run
    should re-converge to -- e.g. the post-event capacity).  When
    ``reference`` is omitted, the mean of the window's own final
    ``tail_fraction`` is used, i.e. "how long until the run reached its new
    steady state".  Returns seconds *after* the epoch, or None when the
    series never re-settles (or has no post-event samples).
    """
    if not series.values:
        return None
    end = series.times[-1]
    if end <= epoch:
        return None
    post = series.window(epoch, end)
    if not post.values:
        return None
    if reference is None:
        start_index = int(len(post.values) * (1.0 - tail_fraction))
        tail = post.values[start_index:]
        reference = sum(tail) / max(len(tail), 1)
        if reference <= 0.0:
            return None
    settled_at = sustained_time_to_fraction(post, reference, fraction, hold)
    if settled_at is None:
        return None
    return settled_at - epoch


def capacity_at(profile: Sequence[Tuple[float, float]], time: float) -> float:
    """The piecewise-constant capacity in effect at ``time``."""
    capacity = 0.0
    for step_time, step_capacity in profile:
        if step_time <= time:
            capacity = step_capacity
        else:
            break
    return capacity


def capacity_tracking_error(
    series: TimeSeries,
    profile: Sequence[Tuple[float, float]],
    *,
    settle: float = 0.5,
) -> Optional[float]:
    """Mean relative error between throughput and a capacity profile.

    ``profile`` is a sorted list of ``(time, capacity_mbps)`` steps.  Each
    sample is compared against the capacity at its bin *midpoint* (sample
    timestamps mark the end of a bin, so a step falling exactly on a
    timestamp belongs to the next bin).  Samples within ``settle`` seconds
    after any step are excluded (the controller is granted that long to
    react); the remaining samples contribute ``|value - capacity| /
    capacity``.  Returns None when no samples remain.
    """
    if not series.values or not profile:
        return None
    profile = sorted(profile, key=lambda step: step[0])
    step_times = [time for time, _ in profile]
    half_bin = series.interval / 2.0
    total = 0.0
    count = 0
    for time, value in zip(series.times, series.values):
        if any(0.0 <= time - step_time < settle for step_time in step_times):
            continue
        capacity = capacity_at(profile, time - half_bin)
        if capacity <= 0.0:
            continue
        total += abs(value - capacity) / capacity
        count += 1
    if count == 0:
        return None
    return total / count


@dataclass
class EpochMetrics:
    """Failover/re-convergence metrics for one event epoch."""

    epoch: float
    failover_gap_s: Optional[float]
    reconvergence_s: Optional[float]

    def as_dict(self) -> dict:
        return {
            "epoch_s": round(self.epoch, 4),
            "failover_gap_s": None
            if self.failover_gap_s is None
            else round(self.failover_gap_s, 4),
            "reconvergence_s": None
            if self.reconvergence_s is None
            else round(self.reconvergence_s, 4),
        }


@dataclass
class DynamicsReport:
    """Summary of one time-varying run."""

    epochs: List[EpochMetrics]
    tracking_error: Optional[float]

    @property
    def worst_gap_s(self) -> Optional[float]:
        """The largest measured failover gap across epochs (None if none)."""
        gaps = [e.failover_gap_s for e in self.epochs if e.failover_gap_s is not None]
        return max(gaps) if gaps else None

    def as_dict(self) -> dict:
        return {
            "epochs": [epoch.as_dict() for epoch in self.epochs],
            "worst_gap_s": None if self.worst_gap_s is None else round(self.worst_gap_s, 4),
            "tracking_error": None
            if self.tracking_error is None
            else round(self.tracking_error, 4),
        }


def analyze_dynamics(
    series: TimeSeries,
    spec: "DynamicsSpec",
    *,
    baseline_window: float = 0.5,
    fraction: float = 0.85,
    hold: int = 3,
) -> DynamicsReport:
    """Produce a :class:`DynamicsReport` for a total-throughput trajectory.

    One :class:`EpochMetrics` entry is produced per measurement epoch of the
    :class:`~repro.netsim.dynamics.DynamicsSpec`.  When the spec declares a
    capacity profile, the re-convergence reference at each epoch is the
    post-event capacity; otherwise the window's own steady state is used.
    """
    profile = spec.capacity_profile
    epochs: List[EpochMetrics] = []
    for epoch in spec.measurement_epochs():
        reference = capacity_at(profile, epoch) if profile else None
        if reference is not None and reference <= 0.0:
            reference = None
        epochs.append(
            EpochMetrics(
                epoch=epoch,
                failover_gap_s=failover_gap(
                    series, epoch,
                    baseline_window=baseline_window,
                    reference=reference,
                ),
                reconvergence_s=reconvergence_time(
                    series, epoch, reference, fraction=fraction, hold=hold
                ),
            )
        )
    tracking = capacity_tracking_error(series, profile) if profile else None
    return DynamicsReport(epochs=epochs, tracking_error=tracking)
