"""Measurement and post-processing: sampling, convergence, statistics, reports."""

from .convergence import (
    ConvergenceReport,
    analyze_convergence,
    stability_coefficient,
    sustained_time_to_fraction,
    time_to_fraction,
)
from .fairness import (
    FairnessReport,
    analyze_fairness,
    bottleneck_share,
    jains_index,
    mptcp_vs_tcp_ratio,
    settle_time,
)
from .flowstats import ConnectionStats, SubflowStats, connection_stats, subflow_stats
from .report import comparison_row, format_comparison, format_table, print_section
from .sampling import (
    TimeSeries,
    per_tag_timeseries,
    sum_series,
    throughput_timeseries,
    total_timeseries,
)

__all__ = [
    "ConnectionStats",
    "ConvergenceReport",
    "FairnessReport",
    "SubflowStats",
    "TimeSeries",
    "analyze_convergence",
    "analyze_fairness",
    "bottleneck_share",
    "comparison_row",
    "connection_stats",
    "jains_index",
    "mptcp_vs_tcp_ratio",
    "settle_time",
    "format_comparison",
    "format_table",
    "per_tag_timeseries",
    "print_section",
    "stability_coefficient",
    "subflow_stats",
    "sum_series",
    "sustained_time_to_fraction",
    "throughput_timeseries",
    "time_to_fraction",
    "total_timeseries",
]
