"""Measurement and post-processing: sampling, convergence, statistics, reports."""

from .convergence import (
    ConvergenceReport,
    analyze_convergence,
    stability_coefficient,
    sustained_time_to_fraction,
    time_to_fraction,
)
from .dynamics import (
    DynamicsReport,
    EpochMetrics,
    analyze_dynamics,
    capacity_at,
    capacity_tracking_error,
    failover_gap,
    reconvergence_time,
)
from .fairness import (
    FairnessReport,
    analyze_fairness,
    bottleneck_share,
    jains_index,
    mptcp_vs_tcp_ratio,
    settle_time,
)
from .flowstats import ConnectionStats, SubflowStats, connection_stats, subflow_stats
from .report import comparison_row, format_comparison, format_table, print_section
from .sampling import (
    TimeSeries,
    per_tag_timeseries,
    sum_series,
    throughput_timeseries,
    total_timeseries,
)

__all__ = [
    "ConnectionStats",
    "ConvergenceReport",
    "DynamicsReport",
    "EpochMetrics",
    "FairnessReport",
    "SubflowStats",
    "TimeSeries",
    "analyze_convergence",
    "analyze_dynamics",
    "analyze_fairness",
    "bottleneck_share",
    "capacity_at",
    "capacity_tracking_error",
    "comparison_row",
    "connection_stats",
    "failover_gap",
    "jains_index",
    "mptcp_vs_tcp_ratio",
    "reconvergence_time",
    "settle_time",
    "format_comparison",
    "format_table",
    "per_tag_timeseries",
    "print_section",
    "stability_coefficient",
    "subflow_stats",
    "sum_series",
    "sustained_time_to_fraction",
    "throughput_timeseries",
    "time_to_fraction",
    "total_timeseries",
]
