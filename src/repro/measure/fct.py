"""Flow-completion-time metrics: the numbers operators actually watch.

Throughput time series answer "who gets the bandwidth"; user experience is
decided by *flow completion time* (FCT).  This module turns a list of
completed transfers (:class:`FctRecord`) into the standard workload report:

* FCT percentiles (p50/p90/p99 by default) and the mean;
* a size-decile breakdown -- mice and elephants live in different FCT
  regimes, so one aggregate percentile hides the interesting structure;
* page-load times -- a page is one request/response group (main response
  plus its subresources); its load time runs from the first transfer's
  start to the last transfer's finish.

Everything is NaN-safe: empty inputs produce ``None`` fields, never NaN
(the ``--json`` contract of the CLI).  Percentiles use the same simple
order-statistic convention as
:meth:`repro.flowsim.engine.FlowLevelResult.summary` so the two reports
never disagree on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default report percentiles (fractions).
DEFAULT_PERCENTILES = (0.50, 0.90, 0.99)


@dataclass(frozen=True)
class FctRecord:
    """One completed transfer."""

    name: str
    size_bytes: int
    start: float
    finish: float
    #: Session (user) the transfer belongs to; "" for flat populations.
    session: str = ""
    #: Page (request group) index inside the session.
    page: int = 0

    @property
    def fct(self) -> float:
        return self.finish - self.start


def percentile(sorted_values: Sequence[float], fraction: float) -> Optional[float]:
    """Order-statistic percentile of an ascending sequence (None if empty)."""
    if not sorted_values:
        return None
    index = min(int(fraction * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def fct_percentiles(
    records: Iterable[FctRecord],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[str, Optional[float]]:
    """``{"p50": ..., "p90": ..., ...}`` of the completion times (seconds)."""
    durations = sorted(record.fct for record in records)
    return {
        f"p{int(round(fraction * 100))}": percentile(durations, fraction)
        for fraction in percentiles
    }


def size_decile_breakdown(records: Sequence[FctRecord], *, deciles: int = 10) -> List[dict]:
    """Per-size-decile FCT statistics.

    Records are sorted by size and split into ``deciles`` equal-count groups
    (the last group absorbs the remainder); each row reports the group's
    size range, mean FCT and tail FCT.  Fewer records than groups simply
    yields fewer rows.
    """
    if deciles < 1:
        raise ValueError("need at least one decile")
    ordered = sorted(records, key=lambda r: (r.size_bytes, r.name))
    if not ordered:
        return []
    group_size = max(len(ordered) // deciles, 1)
    rows: List[dict] = []
    for group_index in range(deciles):
        lo = group_index * group_size
        if lo >= len(ordered):
            break
        hi = len(ordered) if group_index == deciles - 1 else min(lo + group_size, len(ordered))
        group = ordered[lo:hi]
        if not group:
            break
        durations = sorted(r.fct for r in group)
        rows.append(
            {
                "decile": group_index + 1,
                "flows": len(group),
                "min_bytes": group[0].size_bytes,
                "max_bytes": group[-1].size_bytes,
                "mean_fct_s": sum(durations) / len(durations),
                "p99_fct_s": percentile(durations, 0.99),
            }
        )
    return rows


def page_load_times(records: Iterable[FctRecord]) -> Dict[Tuple[str, int], float]:
    """Per-page load time: last finish minus first start of each page group."""
    starts: Dict[Tuple[str, int], float] = {}
    finishes: Dict[Tuple[str, int], float] = {}
    for record in records:
        key = (record.session, record.page)
        if key not in starts or record.start < starts[key]:
            starts[key] = record.start
        if key not in finishes or record.finish > finishes[key]:
            finishes[key] = record.finish
    return {key: finishes[key] - starts[key] for key in starts}


@dataclass
class FctReport:
    """Aggregated FCT statistics of one workload run."""

    completed: int
    #: Transfers the workload offered (completed <= offered; the difference
    #: was still in flight when the run ended).
    offered: int
    total_bytes: int
    mean_fct_s: Optional[float]
    percentiles: Dict[str, Optional[float]] = field(default_factory=dict)
    size_deciles: List[dict] = field(default_factory=list)
    pages: int = 0
    mean_page_load_s: Optional[float] = None
    page_load_percentiles: Dict[str, Optional[float]] = field(default_factory=dict)

    @classmethod
    def from_records(
        cls,
        records: Sequence[FctRecord],
        *,
        offered: Optional[int] = None,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
        deciles: int = 10,
    ) -> "FctReport":
        durations = [record.fct for record in records]
        plt = sorted(page_load_times(records).values())
        return cls(
            completed=len(records),
            offered=len(records) if offered is None else offered,
            total_bytes=sum(record.size_bytes for record in records),
            mean_fct_s=(sum(durations) / len(durations)) if durations else None,
            percentiles=fct_percentiles(records, percentiles),
            size_deciles=size_decile_breakdown(records, deciles=deciles),
            pages=len(plt),
            mean_page_load_s=(sum(plt) / len(plt)) if plt else None,
            page_load_percentiles={
                f"p{int(round(fraction * 100))}": percentile(plt, fraction)
                for fraction in percentiles
            },
        )

    @property
    def completion_ratio(self) -> float:
        if self.offered <= 0:
            return 0.0
        return self.completed / self.offered

    def as_dict(self) -> dict:
        return {
            "completed": self.completed,
            "offered": self.offered,
            "completion_ratio": round(self.completion_ratio, 4),
            "total_bytes": self.total_bytes,
            "mean_fct_s": self.mean_fct_s,
            "fct_percentiles_s": dict(self.percentiles),
            "size_deciles": [dict(row) for row in self.size_deciles],
            "pages": self.pages,
            "mean_page_load_s": self.mean_page_load_s,
            "page_load_percentiles_s": dict(self.page_load_percentiles),
        }
