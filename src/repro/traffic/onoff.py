"""Compatibility shim: :class:`OnOffSource` now lives in :mod:`repro.workload.sources`."""

from __future__ import annotations

from ..workload.sources import OnOffSource

__all__ = ["OnOffSource"]
