"""On-off (bursty) traffic built on the constant-bit-rate UDP source.

An :class:`OnOffSource` alternates deterministic ON periods (sending at a
configured rate) and OFF periods (silent).  It is used by the extension
benchmarks to study how bursty cross-traffic on a shared bottleneck perturbs
MPTCP's search for the optimal rate split.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..netsim.network import Network
from .udp import UdpConstantBitRate


class OnOffSource:
    """Deterministic on-off UDP traffic."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_mbps: float,
        *,
        on_duration: float = 0.5,
        off_duration: float = 0.5,
        tag: Optional[int] = None,
        packet_size: int = 1400,
        flow_id: Optional[int] = None,
    ) -> None:
        if on_duration <= 0 or off_duration < 0:
            raise ConfigurationError("on_duration must be positive and off_duration non-negative")
        self.network = network
        self.on_duration = on_duration
        self.off_duration = off_duration
        self._cbr = UdpConstantBitRate(
            network, src, dst, rate_mbps, tag=tag, packet_size=packet_size, flow_id=flow_id
        )
        self._stop_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def sink(self):
        return self._cbr.sink

    @property
    def flow_id(self) -> int:
        return self._cbr.flow_id

    @property
    def packets_sent(self) -> int:
        return self._cbr.packets_sent

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin the on-off pattern at ``at``; stop entirely at ``stop_at``."""
        self._stop_at = stop_at
        self.network.sim.schedule_at(at, self._begin_on_period)

    def _begin_on_period(self) -> None:
        now = self.network.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        burst_end = now + self.on_duration
        if self._stop_at is not None:
            burst_end = min(burst_end, self._stop_at)
        self._cbr.start(at=now, stop_at=burst_end)
        self.network.sim.schedule(self.on_duration + self.off_duration, self._begin_on_period)
