"""Traffic generation: iperf-like bulk transfers and UDP cross-traffic."""

from .iperf import IperfClient, IperfReport
from .onoff import OnOffSource
from .udp import UdpConstantBitRate, UdpSink

__all__ = [
    "IperfClient",
    "IperfReport",
    "OnOffSource",
    "UdpConstantBitRate",
    "UdpSink",
]
