"""Traffic generation: iperf-like bulk transfers and UDP cross-traffic.

Compatibility package: the implementations moved verbatim to
:mod:`repro.workload.sources` (the backend-agnostic workload subsystem);
this package keeps the historical import paths working.
"""

from ..workload.sources import (
    IperfClient,
    IperfReport,
    OnOffSource,
    UdpConstantBitRate,
    UdpSink,
)

__all__ = [
    "IperfClient",
    "IperfReport",
    "OnOffSource",
    "UdpConstantBitRate",
    "UdpSink",
]
