"""Compatibility shim: :class:`IperfClient` now lives in :mod:`repro.workload.sources`."""

from __future__ import annotations

from ..workload.sources import Connection, IperfClient, IperfReport

__all__ = ["Connection", "IperfClient", "IperfReport"]
