"""iperf-like bulk traffic generation over (MP)TCP.

The paper generates traffic with iperf: a greedy bulk transfer whose rate is
entirely decided by the congestion controller.  :class:`IperfClient` wraps an
:class:`~repro.core.connection.MptcpConnection` (or a single-path
:class:`~repro.tcp.connection.TcpConnection`) and produces an
:class:`IperfReport` with interval throughput -- the same numbers ``iperf -i``
prints -- from the receiver-side capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.connection import MptcpConnection
from ..measure.sampling import TimeSeries, throughput_timeseries
from ..netsim.capture import PacketCapture
from ..tcp.connection import TcpConnection

Connection = Union[MptcpConnection, TcpConnection]


@dataclass
class IperfReport:
    """Summary of one bulk transfer (what ``iperf`` prints at the end)."""

    duration: float
    bytes_transferred: int
    mean_throughput_mbps: float
    interval_series: TimeSeries = field(default_factory=TimeSeries)
    retransmissions: int = 0

    def as_dict(self) -> dict:
        return {
            "duration_s": round(self.duration, 3),
            "bytes_transferred": self.bytes_transferred,
            "mean_throughput_mbps": round(self.mean_throughput_mbps, 3),
            "retransmissions": self.retransmissions,
            "intervals": [
                {"time_s": round(t, 3), "mbps": round(v, 3)} for t, v in self.interval_series
            ],
        }


class IperfClient:
    """Drives a greedy bulk transfer over an existing connection object."""

    def __init__(
        self,
        connection: Connection,
        *,
        capture: Optional[PacketCapture] = None,
        report_interval: float = 1.0,
    ) -> None:
        self.connection = connection
        self.capture = capture
        self.report_interval = report_interval
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        self._started_at = at
        self.connection.start(at)

    def report(self, duration: Optional[float] = None) -> IperfReport:
        """Build the final report after the simulation has run."""
        network = self.connection.network
        start = self._started_at or 0.0
        if duration is None:
            duration = max(network.sim.now - start, 1e-9)

        if isinstance(self.connection, MptcpConnection):
            transferred = self.connection.bytes_delivered
            throughput = self.connection.total_throughput_mbps(duration)
            retransmissions = self.connection.total_retransmissions()
        else:
            transferred = self.connection.bytes_acked
            throughput = self.connection.throughput_mbps(duration)
            retransmissions = self.connection.sender.stats.retransmissions

        series = TimeSeries()
        if self.capture is not None:
            series = throughput_timeseries(
                self.capture.filter(data_only=True),
                interval=self.report_interval,
                start=start,
                end=start + duration,
                label="iperf",
            )
        return IperfReport(
            duration=duration,
            bytes_transferred=transferred,
            mean_throughput_mbps=throughput,
            interval_series=series,
            retransmissions=retransmissions,
        )
