"""Unreliable constant-rate traffic agents (cross-traffic substrate).

The paper's experiments only run MPTCP/iperf, but studying how the results
change under background load requires a simple unreliable sender: a
constant-bit-rate source that pushes packets at a fixed rate regardless of
loss, plus a sink that counts what arrives.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import ConfigurationError
from ..netsim.network import Network
from ..netsim.packet import Packet, acquire as _acquire_packet
from ..units import DEFAULT_MSS, HEADER_SIZE, mbps, throughput_mbps

_udp_flow_ids = itertools.count(50000)


class UdpSink:
    """Counts the datagrams delivered to it."""

    def __init__(self) -> None:
        self.packets_received = 0
        self.bytes_received = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None

    def handle_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.payload_len
        if self.first_arrival is None:
            self.first_arrival = packet.created_at
        self.last_arrival = packet.created_at
        packet.release()

    def throughput_mbps(self) -> float:
        if self.first_arrival is None or self.last_arrival is None:
            return 0.0
        duration = max(self.last_arrival - self.first_arrival, 1e-9)
        return throughput_mbps(self.bytes_received, duration)


class UdpConstantBitRate:
    """A CBR source sending ``rate_mbps`` towards a destination host.

    Packets are paced at a fixed inter-departure time; losses are ignored
    (there is no feedback), which is exactly the non-responsive cross-traffic
    used to stress congestion-control experiments.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_mbps: float,
        *,
        tag: Optional[int] = None,
        packet_size: int = DEFAULT_MSS,
        flow_id: Optional[int] = None,
    ) -> None:
        if rate_mbps <= 0:
            raise ConfigurationError("UDP rate must be positive")
        self.network = network
        self.src_host = network.host(src)
        self.dst = dst
        self.rate_bps = mbps(rate_mbps)
        self.tag = tag
        self.packet_size = packet_size
        self.flow_id = flow_id if flow_id is not None else next(_udp_flow_ids)
        self.sink = UdpSink()
        network.host(dst).register_agent(self.flow_id, 0, self.sink)
        self.packets_sent = 0
        self._stop_at: Optional[float] = None
        self._interval = (packet_size + HEADER_SIZE) * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin sending at time ``at``; optionally stop at ``stop_at``."""
        self._stop_at = stop_at
        self.network.sim.schedule_at(at, self._send_next)

    def _send_next(self) -> None:
        now = self.network.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        packet = _acquire_packet(
            self.src_host.name,
            self.dst,
            self.packet_size + HEADER_SIZE,
            self.tag,
            self.flow_id,
            0,  # subflow_id
            "udp",
            self.packets_sent,
            self.packet_size,
            False,  # is_ack
            0,  # ack
            0,  # dsn
            0,  # dack
            False,  # is_retransmission
            (),  # sack_blocks
            -1.0,  # ts_echo
            now,
        )
        self.packets_sent += 1
        self.src_host.send(packet)
        self.network.sim.schedule(self._interval, self._send_next)

    @property
    def delivery_ratio(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.sink.packets_received / self.packets_sent
