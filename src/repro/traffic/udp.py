"""Compatibility shim: the UDP sources now live in :mod:`repro.workload.sources`."""

from __future__ import annotations

from ..workload.sources import UdpConstantBitRate, UdpSink, _udp_flow_ids

__all__ = ["UdpConstantBitRate", "UdpSink", "_udp_flow_ids"]
