"""Unit conversions and protocol constants used throughout the library.

All internal quantities use SI base units:

* time       -- seconds (float)
* data size  -- bytes (int)
* data rate  -- bits per second (float)

The helpers below convert the human-friendly units that appear in the paper
(Mbps link capacities, millisecond delays and sampling intervals) into those
base units and back.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: Maximum segment size (TCP payload bytes per segment).
DEFAULT_MSS = 1400

#: Bytes of overhead per data packet (Ethernet + IP + TCP + MPTCP DSS option).
HEADER_SIZE = 60

#: Size in bytes of a pure acknowledgement packet.
ACK_SIZE = 60

#: Default one-way propagation delay per link, in seconds (1 ms).
DEFAULT_LINK_DELAY = 0.001

#: Default drop-tail queue size, in packets.
DEFAULT_QUEUE_PACKETS = 100

#: Default link capacity in Mbps when a topology does not specify one
#: (the paper: "the capacities are written next to the links unless they are
#: the default 100").
DEFAULT_CAPACITY_MBPS = 100.0


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return float(value) * 1_000_000.0


def to_mbps(bits_per_second: float) -> float:
    """Convert bits per second to megabits per second."""
    return float(bits_per_second) / 1_000_000.0


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return float(value) * 1_000.0


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return float(value) * 1_000_000_000.0


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) / 1_000.0


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) / 1_000_000.0


def to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * 1_000.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return float(num_bytes) * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return float(num_bits) / BITS_PER_BYTE


def transmission_time(size_bytes: float, rate_bps: float) -> float:
    """Serialisation delay of ``size_bytes`` on a link of ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError("link rate must be positive, got %r" % rate_bps)
    return bytes_to_bits(size_bytes) / float(rate_bps)


def throughput_mbps(num_bytes: float, duration: float) -> float:
    """Average throughput in Mbps of ``num_bytes`` delivered over ``duration`` seconds."""
    if duration <= 0:
        return 0.0
    return to_mbps(bytes_to_bits(num_bytes) / duration)


def bandwidth_delay_product(rate_bps: float, rtt: float) -> int:
    """Bandwidth-delay product in bytes for a path of ``rate_bps`` and ``rtt`` seconds."""
    return int(bits_to_bytes(rate_bps * rtt))
