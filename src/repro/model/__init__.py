"""Analytical model of MPTCP throughput over overlapping paths.

This package contains everything needed to reason about the paper's
optimisation problem without running the packet simulator: path overlap
analysis, constraint extraction (Fig. 1c), the max-throughput LP and its
optimum, alternative allocations (max-min fair, proportionally fair, greedy),
Pareto-optimality checks, projected-gradient ascent and fluid models of the
congestion-control dynamics.
"""

from .bottleneck import Constraint, ConstraintSystem, build_constraints, shared_bottleneck_summary
from .fluid import FluidModel, FluidResult, compare_equilibria
from .gradient import GradientTrace, project_onto_feasible, projected_gradient_ascent
from .greedy import GreedyResult, best_greedy_order, greedy_fill, worst_greedy_order
from .lp import LpResult, max_total_throughput, proportional_fair_rates
from .maxmin import MaxMinResult, max_min_fair_rates
from .pareto import (
    Exchange,
    blocking_constraints,
    improving_exchange,
    is_pareto_optimal,
    optimality_gap,
    pareto_frontier_2d,
)
from .paths import Path, PathSet, paths_from_node_lists
from .polytope import enumerate_vertices, feasible_region_volume, maximize_over_vertices

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "Exchange",
    "FluidModel",
    "FluidResult",
    "GradientTrace",
    "GreedyResult",
    "LpResult",
    "MaxMinResult",
    "Path",
    "PathSet",
    "best_greedy_order",
    "blocking_constraints",
    "build_constraints",
    "compare_equilibria",
    "enumerate_vertices",
    "feasible_region_volume",
    "greedy_fill",
    "improving_exchange",
    "is_pareto_optimal",
    "max_min_fair_rates",
    "max_total_throughput",
    "maximize_over_vertices",
    "optimality_gap",
    "pareto_frontier_2d",
    "paths_from_node_lists",
    "project_onto_feasible",
    "projected_gradient_ascent",
    "proportional_fair_rates",
    "shared_bottleneck_summary",
    "worst_greedy_order",
]
