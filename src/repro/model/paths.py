"""Path abstraction and overlap analysis.

A :class:`Path` is an ordered list of node names between a source and a
destination, optionally associated with the tag that pins packets to it.  The
functions in this module analyse how a set of paths overlap -- which pairs
share links, what the shared capacities are -- which is exactly the structure
that makes the paper's throughput-maximisation problem non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..netsim.topology import Topology

Edge = Tuple[str, str]


@dataclass(frozen=True)
class Path:
    """An explicit forwarding path.

    Parameters
    ----------
    nodes:
        Node names from source to destination.
    tag:
        Tag value pinning packets to this path (``None`` for the default route).
    name:
        Human-readable name, e.g. ``"Path 2"``.
    """

    nodes: Tuple[str, ...]
    tag: Optional[int] = None
    name: str = ""

    def __init__(self, nodes: Sequence[str], tag: Optional[int] = None, name: str = "") -> None:
        if len(nodes) < 2:
            raise ModelError("a path needs at least two nodes")
        if len(set(nodes)) != len(nodes):
            raise ModelError(f"path {list(nodes)!r} visits a node twice")
        object.__setattr__(self, "nodes", tuple(nodes))
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "name", name or f"{nodes[0]}->{nodes[-1]}")

    # ------------------------------------------------------------------
    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.nodes) - 1

    @property
    def links(self) -> Tuple[Edge, ...]:
        """Directed links traversed, in order."""
        return tuple(zip(self.nodes, self.nodes[1:]))

    @property
    def link_set(self) -> FrozenSet[Edge]:
        return frozenset(self.links)

    def shares_link_with(self, other: "Path") -> bool:
        return bool(self.link_set & other.link_set)

    def shared_links(self, other: "Path") -> List[Edge]:
        """Directed links used by both paths, in this path's order."""
        other_links = other.link_set
        return [edge for edge in self.links if edge in other_links]

    def uses_link(self, a: str, b: str) -> bool:
        return (a, b) in self.link_set

    def capacity(self, topology: Topology) -> float:
        """Bottleneck (minimum) capacity of the path in Mbps."""
        return min(topology.capacity_of(a, b) for a, b in self.links)

    def propagation_delay(self, topology: Topology) -> float:
        """Sum of one-way link delays along the path, in seconds."""
        return sum(topology.link(a, b).delay for a, b in self.links)

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        return f"{self.name}: {' -> '.join(self.nodes)}"


@dataclass
class PathSet:
    """A set of paths between one source-destination pair."""

    paths: List[Path] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.paths:
            return
        src, dst = self.paths[0].src, self.paths[0].dst
        for path in self.paths:
            if (path.src, path.dst) != (src, dst):
                raise ModelError("all paths of a PathSet must share source and destination")

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def __getitem__(self, index: int) -> Path:
        return self.paths[index]

    @property
    def src(self) -> str:
        return self.paths[0].src

    @property
    def dst(self) -> str:
        return self.paths[0].dst

    # ------------------------------------------------------------------
    def all_links(self) -> List[Edge]:
        """Every directed link used by at least one path (no duplicates)."""
        seen: List[Edge] = []
        for path in self.paths:
            for edge in path.links:
                if edge not in seen:
                    seen.append(edge)
        return seen

    def paths_using(self, edge: Edge) -> List[int]:
        """Indices of the paths that traverse ``edge``."""
        return [i for i, path in enumerate(self.paths) if edge in path.link_set]

    def overlap_matrix(self) -> List[List[int]]:
        """Matrix of shared-link counts between every pair of paths."""
        n = len(self.paths)
        matrix = [[0] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i == j:
                    matrix[i][j] = len(self.paths[i].links)
                else:
                    matrix[i][j] = len(self.paths[i].shared_links(self.paths[j]))
        return matrix

    def pairwise_shared_links(self) -> Dict[Tuple[int, int], List[Edge]]:
        """Shared links for every pair ``(i, j)`` with ``i < j``."""
        result: Dict[Tuple[int, int], List[Edge]] = {}
        for i in range(len(self.paths)):
            for j in range(i + 1, len(self.paths)):
                shared = self.paths[i].shared_links(self.paths[j])
                if shared:
                    result[(i, j)] = shared
        return result

    def is_disjoint(self) -> bool:
        """True if no two paths share a link (the Wi-Fi + cellular use case)."""
        return not self.pairwise_shared_links()


def paths_from_node_lists(
    node_lists: Iterable[Sequence[str]],
    *,
    tags: Optional[Sequence[int]] = None,
    names: Optional[Sequence[str]] = None,
) -> PathSet:
    """Build a :class:`PathSet` from raw node lists, auto-assigning tags 1..n."""
    node_lists = list(node_lists)
    if tags is None:
        tags = list(range(1, len(node_lists) + 1))
    if names is None:
        names = [f"Path {i + 1}" for i in range(len(node_lists))]
    if not (len(node_lists) == len(tags) == len(names)):
        raise ModelError("node_lists, tags and names must have equal length")
    return PathSet([Path(nodes, tag=tag, name=name) for nodes, tag, name in zip(node_lists, tags, names)])
