"""Max-min fair allocation by progressive filling.

Max-min fairness is the classic alternative objective to the paper's
max-total-throughput LP: all path rates are increased together until a link
saturates, the paths crossing that link are frozen, and the process repeats.
On the paper's topology the max-min allocation is strictly below the
90 Mbps optimum, which illustrates why a fairness-seeking coupled controller
(LIA) does not reach the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ModelError
from .bottleneck import Constraint, ConstraintSystem


@dataclass
class MaxMinResult:
    """Outcome of progressive filling."""

    rates: List[float]
    total: float
    #: Constraint that froze each path (parallel to ``rates``).
    freezing_constraints: List[Constraint] = field(default_factory=list)
    rounds: int = 0


def max_min_fair_rates(system: ConstraintSystem, *, max_rounds: int = 1000) -> MaxMinResult:
    """Compute the max-min fair allocation by progressive filling."""
    system.validate()
    n = system.path_count
    rates = [0.0] * n
    frozen = [False] * n
    freezing: List[Constraint] = [None] * n  # type: ignore[list-item]
    rounds = 0

    while not all(frozen) and rounds < max_rounds:
        rounds += 1
        active = [i for i in range(n) if not frozen[i]]
        # Largest equal increment the active paths can all take.
        increment = float("inf")
        for constraint in system.constraints:
            active_on_link = [i for i in constraint.path_indices if not frozen[i]]
            if not active_on_link:
                continue
            slack = constraint.slack(rates)
            increment = min(increment, slack / len(active_on_link))
        if increment == float("inf"):
            # No remaining constraint touches an active path: unbounded growth
            # is impossible in a well-formed system, so treat as an error.
            raise ModelError("active paths cross no capacity constraint")
        increment = max(increment, 0.0)
        for i in active:
            rates[i] += increment
        # Freeze every path crossing a now-saturated link.
        for constraint in system.constraints:
            if constraint.is_tight(rates, tol=1e-9):
                for i in constraint.path_indices:
                    if not frozen[i]:
                        frozen[i] = True
                        freezing[i] = constraint
        if increment == 0.0 and not any(
            constraint.is_tight(rates, tol=1e-9) for constraint in system.constraints
        ):  # pragma: no cover - defensive
            break

    return MaxMinResult(
        rates=rates,
        total=float(sum(rates)),
        freezing_constraints=freezing,
        rounds=rounds,
    )
