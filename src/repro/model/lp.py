"""The throughput-maximisation linear program of Section 2.1.

"The MPTCP load balancer is facing a multidimensional optimization problem
with the following objective function max x1 + x2 + x3" -- this module solves
exactly that problem: maximise total throughput subject to the link-capacity
constraints, using scipy's HiGHS solver with a vertex-enumeration fallback.

It also provides a proportionally fair allocation (log-utility maximisation)
as an alternative objective, since coupled congestion controllers are
designed around fairness rather than raw throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from .bottleneck import Constraint, ConstraintSystem
from .polytope import maximize_over_vertices

try:  # pragma: no cover - exercised implicitly
    from scipy.optimize import linprog, minimize

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - scipy is an install-time dependency
    _HAVE_SCIPY = False


@dataclass
class LpResult:
    """Solution of a throughput allocation problem."""

    rates: List[float]
    total: float
    tight_links: List[Constraint] = field(default_factory=list)
    objective: str = "max-total"
    solver: str = "highs"

    def rate_of(self, index: int) -> float:
        return self.rates[index]

    def as_dict(self) -> dict:
        return {
            "rates": [round(r, 6) for r in self.rates],
            "total": round(self.total, 6),
            "objective": self.objective,
            "solver": self.solver,
            "tight_links": [str(c) for c in self.tight_links],
        }


def max_total_throughput(
    system: ConstraintSystem,
    weights: Optional[Sequence[float]] = None,
    *,
    solver: str = "auto",
) -> LpResult:
    """Maximise (weighted) total throughput over the feasible region.

    Parameters
    ----------
    system:
        The constraint system produced by :func:`repro.model.bottleneck.build_constraints`.
    weights:
        Optional per-path weights; uniform by default (the paper's objective).
    solver:
        ``"highs"`` (scipy), ``"vertex"`` (exact enumeration) or ``"auto"``.
    """
    system.validate()
    n = system.path_count
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise ModelError("weights length must match the number of paths")

    use_scipy = solver in ("auto", "highs") and _HAVE_SCIPY
    if solver == "highs" and not _HAVE_SCIPY:
        raise ModelError("scipy is not available for the 'highs' solver")

    if use_scipy:
        result = linprog(
            c=[-w for w in weights],
            A_ub=system.matrix(),
            b_ub=system.rhs(),
            bounds=[(0, None)] * n,
            method="highs",
        )
        if not result.success:  # pragma: no cover - defensive
            raise ModelError(f"LP solver failed: {result.message}")
        rates = [float(x) for x in result.x]
        solver_used = "highs"
    else:
        rates = maximize_over_vertices(system, weights)
        solver_used = "vertex"

    total = float(sum(rates))
    return LpResult(
        rates=rates,
        total=total,
        tight_links=system.tight_constraints(rates, tol=1e-5),
        objective="max-total" if all(w == 1.0 for w in weights) else "max-weighted",
        solver=solver_used,
    )


def proportional_fair_rates(
    system: ConstraintSystem, *, min_rate: float = 1e-3
) -> LpResult:
    """Proportionally fair allocation: maximise ``sum(log(x_i))``.

    Coupled MPTCP congestion control aims at fairness across the network
    rather than raw aggregate throughput; the proportionally fair point is a
    useful reference between the max-throughput optimum and max-min fairness.
    """
    if not _HAVE_SCIPY:
        raise ModelError("proportional fairness requires scipy")
    system.validate()
    n = system.path_count
    a = system.matrix()
    c = system.rhs()

    def negative_log_utility(x: np.ndarray) -> float:
        return -float(np.sum(np.log(np.maximum(x, 1e-12))))

    def gradient(x: np.ndarray) -> np.ndarray:
        return -1.0 / np.maximum(x, 1e-12)

    constraints = [
        {"type": "ineq", "fun": lambda x, row=row: c[row] - float(a[row] @ x)}
        for row in range(a.shape[0])
    ]
    start = np.full(n, max(min_rate, float(np.min(c)) / (2.0 * n)))
    result = minimize(
        negative_log_utility,
        start,
        jac=gradient,
        bounds=[(min_rate, None)] * n,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-10},
    )
    if not result.success:  # pragma: no cover - defensive
        raise ModelError(f"proportional fairness solver failed: {result.message}")
    rates = [float(x) for x in result.x]
    return LpResult(
        rates=rates,
        total=float(sum(rates)),
        tight_links=system.tight_constraints(rates, tol=1e-4),
        objective="proportional-fair",
        solver="slsqp",
    )
