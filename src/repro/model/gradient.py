"""Projected-gradient ascent on total throughput.

Section 2.1 notes that "convex optimization is often solved with some type of
gradient descent method, which is an iterative approach always stepping
towards the gradient", and Section 4 concludes that CUBIC's asynchronous
per-path actions "inherently eventuate the required gradient optimization
over the flows".  This module makes that comparison concrete: a projected
gradient ascent that maximises ``sum(x)`` over the feasible region, with the
projection computed by Dykstra's alternating-projection algorithm over the
capacity half-spaces and the non-negativity orthant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from .bottleneck import ConstraintSystem


def project_onto_feasible(
    system: ConstraintSystem,
    point: Sequence[float],
    *,
    iterations: int = 200,
    tol: float = 1e-9,
) -> List[float]:
    """Euclidean projection of ``point`` onto ``{x : A x <= c, x >= 0}``.

    Uses Dykstra's algorithm over the individual half-spaces, which converges
    to the exact projection for intersections of convex sets.
    """
    a = system.matrix()
    c = system.rhs()
    rows = [(a[i], c[i]) for i in range(a.shape[0])]
    n = system.path_count

    x = np.asarray(point, dtype=float).copy()
    if x.shape != (n,):
        raise ModelError(f"expected a point of dimension {n}")
    # One correction term per constraint set (half-spaces + orthant).
    corrections = [np.zeros(n) for _ in range(len(rows) + 1)]

    for _ in range(iterations):
        previous = x.copy()
        for index, (row, cap) in enumerate(rows):
            y = x + corrections[index]
            violation = float(row @ y) - cap
            if violation > 0:
                projected = y - violation * row / float(row @ row)
            else:
                projected = y
            corrections[index] = y - projected
            x = projected
        y = x + corrections[-1]
        projected = np.maximum(y, 0.0)
        corrections[-1] = y - projected
        x = projected
        if np.linalg.norm(x - previous) < tol:
            break
    return [float(v) for v in x]


@dataclass
class GradientTrace:
    """Trajectory of projected-gradient ascent."""

    iterates: List[List[float]] = field(default_factory=list)
    totals: List[float] = field(default_factory=list)

    @property
    def final_rates(self) -> List[float]:
        return self.iterates[-1]

    @property
    def final_total(self) -> float:
        return self.totals[-1]

    @property
    def iterations(self) -> int:
        return len(self.iterates)


def projected_gradient_ascent(
    system: ConstraintSystem,
    *,
    start: Optional[Sequence[float]] = None,
    step_size: float = 2.0,
    iterations: int = 500,
    tol: float = 1e-7,
) -> GradientTrace:
    """Maximise total throughput by projected gradient ascent.

    The gradient of ``sum(x)`` is the all-ones vector; each iterate steps in
    that direction and is projected back onto the feasible region.  Unlike
    the greedy per-path filling, this joint update escapes the Pareto-optimal
    but suboptimal corner the greedy strategy lands in.
    """
    n = system.path_count
    x = np.zeros(n) if start is None else np.asarray(start, dtype=float).copy()
    if x.shape != (n,):
        raise ModelError(f"expected a start point of dimension {n}")
    x = np.asarray(project_onto_feasible(system, x))

    trace = GradientTrace()
    trace.iterates.append([float(v) for v in x])
    trace.totals.append(float(np.sum(x)))

    gradient = np.ones(n)
    for iteration in range(iterations):
        step = step_size / np.sqrt(iteration + 1.0)
        candidate = x + step * gradient
        x_new = np.asarray(project_onto_feasible(system, candidate))
        trace.iterates.append([float(v) for v in x_new])
        trace.totals.append(float(np.sum(x_new)))
        if np.linalg.norm(x_new - x) < tol:
            x = x_new
            break
        x = x_new
    return trace
