"""Pareto-optimality analysis of throughput allocations.

Section 3 of the paper describes the state MPTCP-CUBIC reaches right after
start-up: "At this point, we have a Pareto optimal solution as none of the
TCP rates can be increased independently.  On the other hand, decreasing the
rate of Path 2 by x would increase the rate for both Path 1 and 3 by 2x
altogether."  This module provides exactly those two notions:

* :func:`is_pareto_optimal` -- can any single rate still grow?
* :func:`improving_exchange` -- is there a joint rate exchange (decrease some
  paths, increase others) that raises the total?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from .bottleneck import ConstraintSystem
from .lp import max_total_throughput


def is_pareto_optimal(system: ConstraintSystem, rates: Sequence[float], tol: float = 1e-6) -> bool:
    """True if no single path's rate can be increased without violating a constraint."""
    if not system.is_feasible(rates, tol):
        raise ModelError("rates are not feasible")
    for index in range(system.path_count):
        if system.max_rate_for_path(index, rates) > rates[index] + tol:
            return False
    return True


def blocking_constraints(system: ConstraintSystem, rates: Sequence[float], index: int, tol: float = 1e-6):
    """The tight constraints that prevent path ``index`` from growing."""
    return [
        constraint
        for constraint in system.tight_constraints(rates, tol)
        if index in constraint.path_indices
    ]


@dataclass
class Exchange:
    """A joint rate change that increases total throughput from a Pareto point."""

    deltas: List[float]
    total_gain: float
    new_rates: List[float]

    @property
    def decreased_paths(self) -> List[int]:
        return [i for i, d in enumerate(self.deltas) if d < -1e-9]

    @property
    def increased_paths(self) -> List[int]:
        return [i for i, d in enumerate(self.deltas) if d > 1e-9]


def improving_exchange(
    system: ConstraintSystem, rates: Sequence[float], tol: float = 1e-6
) -> Optional[Exchange]:
    """Find the best joint rate exchange from ``rates``, or None at the optimum.

    The exchange is obtained by re-solving the max-throughput LP and taking
    the difference to the current allocation; a Pareto-optimal but suboptimal
    point (like the paper's 'fill Path 2 first' state) yields an exchange that
    lowers some rates while raising others for a net gain.
    """
    if not system.is_feasible(rates, tol):
        raise ModelError("rates are not feasible")
    optimum = max_total_throughput(system)
    gain = optimum.total - float(sum(rates))
    if gain <= tol:
        return None
    deltas = [opt - cur for opt, cur in zip(optimum.rates, rates)]
    return Exchange(deltas=deltas, total_gain=gain, new_rates=list(optimum.rates))


def optimality_gap(system: ConstraintSystem, rates: Sequence[float]) -> float:
    """Absolute gap between ``sum(rates)`` and the LP optimum (>= 0)."""
    optimum = max_total_throughput(system)
    return max(optimum.total - float(sum(rates)), 0.0)


def pareto_frontier_2d(
    system: ConstraintSystem, fixed_index: int, fixed_values: Sequence[float]
) -> List[List[float]]:
    """Trace the maximum total throughput as one path's rate is swept.

    Useful for visualising why holding the default path at its bottleneck
    capacity caps the achievable total: for each value ``v`` of path
    ``fixed_index`` the remaining paths are optimised by the LP.
    """
    results: List[List[float]] = []
    n = system.path_count
    a = system.matrix()
    c = system.rhs()
    for value in fixed_values:
        # Fix x[fixed_index] = value by subtracting its contribution from c.
        reduced_c = c - a[:, fixed_index] * value
        if np.any(reduced_c < -1e-9) or value < 0:
            continue
        remaining = [i for i in range(n) if i != fixed_index]
        sub_system = _reduced_system(system, remaining, reduced_c)
        sub_optimum = max_total_throughput(sub_system)
        rates = [0.0] * n
        rates[fixed_index] = value
        for position, original_index in enumerate(remaining):
            rates[original_index] = sub_optimum.rates[position]
        results.append(rates)
    return results


def _reduced_system(system: ConstraintSystem, keep: List[int], new_rhs: np.ndarray) -> ConstraintSystem:
    """Restrict the system to the ``keep`` paths with an updated RHS."""
    from .bottleneck import Constraint

    index_map = {original: position for position, original in enumerate(keep)}
    constraints = []
    for row, constraint in enumerate(system.constraints):
        indices = tuple(index_map[i] for i in constraint.path_indices if i in index_map)
        if not indices:
            continue
        constraints.append(
            Constraint(link=constraint.link, capacity=float(new_rhs[row]), path_indices=indices)
        )
    paths = [system.paths[i] for i in keep]
    return ConstraintSystem(paths, constraints)
