"""Throughput-constraint extraction (the inequalities of Fig. 1c).

Given a topology and a set of paths, every link used by at least one path
contributes one inequality ``sum of the rates of the paths crossing it <=
capacity``.  The resulting :class:`ConstraintSystem` (``A x <= c``, ``x >= 0``)
is the feasible throughput region the MPTCP load balancer implicitly explores
and the input to every solver in :mod:`repro.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ModelError
from ..netsim.topology import Topology
from .paths import Edge, Path, PathSet


@dataclass(frozen=True)
class Constraint:
    """One capacity constraint: ``sum(rates[i] for i in path_indices) <= capacity``."""

    link: Edge
    capacity: float
    path_indices: Tuple[int, ...]

    def usage(self, rates: Sequence[float]) -> float:
        return sum(rates[i] for i in self.path_indices)

    def slack(self, rates: Sequence[float]) -> float:
        return self.capacity - self.usage(rates)

    def is_tight(self, rates: Sequence[float], tol: float = 1e-6) -> bool:
        return self.slack(rates) <= tol

    def __str__(self) -> str:
        terms = " + ".join(f"x{i + 1}" for i in self.path_indices)
        return f"{terms} <= {self.capacity:g}   [{self.link[0]}-{self.link[1]}]"


class ConstraintSystem:
    """The linear throughput constraints of a path set on a topology."""

    def __init__(self, paths: Sequence[Path], constraints: Sequence[Constraint]) -> None:
        self.paths = list(paths)
        self.constraints = list(constraints)

    # ------------------------------------------------------------------
    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def capacities(self) -> List[float]:
        return [c.capacity for c in self.constraints]

    def matrix(self) -> np.ndarray:
        """Constraint matrix ``A`` with one row per constraint, one column per path."""
        a = np.zeros((len(self.constraints), len(self.paths)))
        for row, constraint in enumerate(self.constraints):
            for index in constraint.path_indices:
                a[row, index] = 1.0
        return a

    def rhs(self) -> np.ndarray:
        """Right-hand-side capacity vector ``c``."""
        return np.asarray(self.capacities, dtype=float)

    # ------------------------------------------------------------------
    def is_feasible(self, rates: Sequence[float], tol: float = 1e-6) -> bool:
        """True if ``rates`` satisfies every constraint and non-negativity."""
        if len(rates) != len(self.paths):
            raise ModelError(
                f"expected {len(self.paths)} rates, got {len(rates)}"
            )
        if any(rate < -tol for rate in rates):
            return False
        return all(constraint.slack(rates) >= -tol for constraint in self.constraints)

    def tight_constraints(self, rates: Sequence[float], tol: float = 1e-6) -> List[Constraint]:
        return [c for c in self.constraints if c.is_tight(rates, tol)]

    def slack_vector(self, rates: Sequence[float]) -> List[float]:
        return [c.slack(rates) for c in self.constraints]

    def max_rate_for_path(self, index: int, rates: Sequence[float]) -> float:
        """Largest value path ``index`` could take with the other rates fixed."""
        limit = float("inf")
        for constraint in self.constraints:
            if index not in constraint.path_indices:
                continue
            others = sum(rates[i] for i in constraint.path_indices if i != index)
            limit = min(limit, constraint.capacity - others)
        return max(limit, 0.0)

    def validate(self) -> None:
        """Check that every path is bounded by at least one capacity constraint.

        A path that crosses no constraint makes every throughput objective
        unbounded; the LP then fails with an opaque solver message ("HiGHS
        model_status is Unbounded") and progressive filling with a vague
        error.  This raises a :class:`~repro.errors.ModelError` naming the
        offending path(s) instead, so solvers and grid expansions can fail
        with the actual misconfiguration.
        """
        if not self.paths:
            raise ModelError("constraint system has no paths")
        covered = set()
        for constraint in self.constraints:
            covered.update(constraint.path_indices)
        unconstrained = [i for i in range(len(self.paths)) if i not in covered]
        if unconstrained:
            labels = ", ".join(self._path_label(i) for i in unconstrained)
            raise ModelError(
                f"unbounded allocation: {labels} cross(es) no capacity constraint; "
                "every path needs at least one link-capacity bound"
            )

    def _path_label(self, index: int) -> str:
        path = self.paths[index]
        name = getattr(path, "name", "") or f"path {index + 1}"
        return f"{name} (index {index})"

    def shared_constraints(self) -> List[Constraint]:
        """Constraints on links shared by at least two paths (the interesting ones)."""
        return [c for c in self.constraints if len(c.path_indices) >= 2]

    def pretty(self) -> str:
        """Human-readable rendering of the inequality system (as in Fig. 1c)."""
        lines = [str(c) for c in self.constraints]
        lines.append("x_i >= 0 for every path i")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConstraintSystem(paths={len(self.paths)}, constraints={len(self.constraints)})"


def build_constraints(
    topology: Topology,
    paths: PathSet | Sequence[Path],
    *,
    include_private_links: bool = True,
) -> ConstraintSystem:
    """Derive the constraint system of ``paths`` on ``topology``.

    Parameters
    ----------
    include_private_links:
        When False, links used by a single path are skipped unless they are
        that path's bottleneck, producing the compact system shown in the
        paper (only the three shared links matter on the paper topology).
    """
    path_list = list(paths)
    if not path_list:
        raise ModelError("need at least one path")

    usage: Dict[Edge, List[int]] = {}
    for index, path in enumerate(path_list):
        for edge in path.links:
            usage.setdefault(edge, []).append(index)

    constraints: List[Constraint] = []
    for edge, indices in usage.items():
        capacity = topology.capacity_of(*edge)
        if not include_private_links and len(indices) < 2:
            path = path_list[indices[0]]
            if capacity > path.capacity(topology) + 1e-12:
                continue
        constraints.append(Constraint(link=edge, capacity=capacity, path_indices=tuple(indices)))

    # Deterministic ordering: shared links first (by capacity), then private.
    constraints.sort(key=lambda c: (-len(c.path_indices), c.capacity, c.link))
    return ConstraintSystem(path_list, constraints)


def shared_bottleneck_summary(system: ConstraintSystem) -> List[Tuple[Edge, float, Tuple[int, ...]]]:
    """(link, capacity, path indices) for every link shared by 2+ paths."""
    return [(c.link, c.capacity, c.path_indices) for c in system.shared_constraints()]
