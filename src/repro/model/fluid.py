"""Fluid (differential-equation) models of MPTCP congestion control.

The packet-level simulator reproduces the measured dynamics; the fluid model
complements it with a cheap, deterministic approximation of the *equilibrium*
rates each congestion-control family settles at on a set of overlapping
paths.  Links generate a loss signal once the offered load approaches their
capacity, and every path's window follows the increase/decrease rules of the
chosen algorithm in expectation:

* ``uncoupled`` -- per-path AIMD (Reno-like; a proxy for independent CUBIC)
* ``lia``       -- RFC 6356 coupled increase, per-path halving
* ``olia``      -- Khalili et al.'s increase term (without the alpha
  rebalancing, which needs loss history), per-path halving

The model is deliberately simple -- its role is to show who *under-utilises*
the network at equilibrium, which matches the ordering observed in the paper
(uncoupled > OLIA > LIA on aggregate throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..units import DEFAULT_MSS, bytes_to_bits
from .bottleneck import ConstraintSystem


@dataclass
class FluidResult:
    """Trajectory and equilibrium of a fluid-model run.

    ``times`` is a 1-D array of log timestamps and ``rates_mbps`` a 2-D array
    with one row per logged step and one column per path.  Both are
    preallocated by :meth:`FluidModel.run` instead of growing per step.
    """

    times: np.ndarray
    rates_mbps: np.ndarray  # one row per time step, one column per path
    algorithm: str = "uncoupled"

    @property
    def final_rates(self) -> List[float]:
        return [float(v) for v in self.rates_mbps[-1]]

    @property
    def final_total(self) -> float:
        return float(sum(self.rates_mbps[-1]))

    def mean_rates(self, last_fraction: float = 0.25) -> List[float]:
        """Average per-path rate over the last ``last_fraction`` of the run.

        The averaging window always covers at least the final logged row, so
        a ``last_fraction`` smaller than one logging step (including 0.0)
        degrades to :attr:`final_rates` instead of averaging an empty slice.
        """
        rows = len(self.rates_mbps)
        if rows == 0:
            return []
        start = min(int(rows * (1.0 - last_fraction)), rows - 1)
        window = np.asarray(self.rates_mbps[max(start, 0):])
        return [float(v) for v in window.mean(axis=0)]

    def mean_total(self, last_fraction: float = 0.25) -> float:
        return float(sum(self.mean_rates(last_fraction)))


class FluidModel:
    """Discrete-time fluid simulation of coupled/uncoupled MPTCP.

    Parameters
    ----------
    system:
        The link-capacity constraint system (capacities in Mbps).
    rtts:
        Per-path round-trip times in seconds (default 10 ms each).
    mss:
        Segment size in bytes used to convert windows to rates.
    loss_sharpness:
        How quickly the loss signal grows once a link exceeds capacity.
    """

    def __init__(
        self,
        system: ConstraintSystem,
        rtts: Optional[Sequence[float]] = None,
        *,
        mss: int = DEFAULT_MSS,
        loss_sharpness: float = 20.0,
    ) -> None:
        self.system = system
        self.n = system.path_count
        if rtts is None:
            rtts = [0.01] * self.n
        if len(rtts) != self.n:
            raise ModelError("rtts length must match the number of paths")
        self.rtts = [float(r) for r in rtts]
        self.mss = mss
        self.loss_sharpness = loss_sharpness
        self._a = system.matrix()
        self._capacity_mbps = system.rhs()

    # ------------------------------------------------------------------
    def _window_to_mbps(self, windows: np.ndarray) -> np.ndarray:
        packets_per_second = windows / np.asarray(self.rtts)
        return packets_per_second * bytes_to_bits(self.mss) / 1e6

    def _loss_probability(self, rates_mbps: np.ndarray) -> np.ndarray:
        """Per-path loss probability from link overload.

        A link that receives more traffic than it can carry drops the excess
        fraction ``(load - capacity) / load``; ``loss_sharpness`` steepens the
        onset so that the equilibrium sits close to full utilisation.
        """
        link_load = self._a @ rates_mbps
        with np.errstate(divide="ignore", invalid="ignore"):
            excess_fraction = np.where(
                link_load > 0,
                np.maximum(link_load - self._capacity_mbps, 0.0) / np.maximum(link_load, 1e-9),
                0.0,
            )
        link_loss = np.minimum(excess_fraction * max(self.loss_sharpness / 20.0, 1.0), 1.0)
        # A path's loss probability is approximately the sum over its links.
        path_loss = self._a.T @ link_loss
        return np.minimum(path_loss, 1.0)

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: str = "uncoupled",
        *,
        duration: float = 20.0,
        dt: float = 0.005,
        initial_window: float = 2.0,
    ) -> FluidResult:
        """Integrate the window dynamics and return the rate trajectory."""
        algorithm = algorithm.lower()
        if algorithm not in ("uncoupled", "reno", "cubic", "lia", "olia"):
            raise ModelError(f"unknown fluid algorithm {algorithm!r}")
        steps = int(duration / dt)
        windows = np.full(self.n, float(initial_window))
        rtts = np.asarray(self.rtts)
        # Preallocated trajectory log: one row per logged step (every 10th).
        log_size = (steps + 9) // 10
        times = np.empty(log_size, dtype=np.float64)
        rates_log = np.empty((log_size, self.n), dtype=np.float64)
        logged = 0

        for step in range(steps):
            rates_mbps = self._window_to_mbps(windows)
            loss = self._loss_probability(rates_mbps)
            acks_per_second = windows * (1.0 - loss) / rtts
            increase = self._increase_per_ack(algorithm, windows, rtts) * acks_per_second
            loss_events_per_second = windows * loss / rtts
            decrease = loss_events_per_second * windows / 2.0
            windows = np.maximum(windows + dt * (increase - decrease), 1.0)

            if step % 10 == 0:
                times[logged] = step * dt
                rates_log[logged] = self._window_to_mbps(windows)
                logged += 1

        return FluidResult(
            times=times[:logged], rates_mbps=rates_log[:logged], algorithm=algorithm
        )

    # ------------------------------------------------------------------
    def _increase_per_ack(self, algorithm: str, windows: np.ndarray, rtts: np.ndarray) -> np.ndarray:
        if algorithm in ("uncoupled", "reno", "cubic"):
            return 1.0 / windows
        total_rate = float(np.sum(windows / rtts))
        if total_rate <= 0:
            return 1.0 / np.maximum(windows, 1.0)
        if algorithm == "lia":
            alpha = float(np.sum(windows)) * float(np.max(windows / rtts ** 2)) / (total_rate ** 2)
            coupled = alpha / float(np.sum(windows))
            return np.minimum(coupled, 1.0 / windows)
        if algorithm == "olia":
            return (windows / rtts ** 2) / (total_rate ** 2)
        raise ModelError(f"unknown fluid algorithm {algorithm!r}")  # pragma: no cover


def compare_equilibria(
    system: ConstraintSystem,
    algorithms: Sequence[str] = ("uncoupled", "lia", "olia"),
    *,
    rtts: Optional[Sequence[float]] = None,
    duration: float = 30.0,
) -> Dict[str, FluidResult]:
    """Run the fluid model for several algorithms on the same constraint system."""
    model = FluidModel(system, rtts)
    return {name: model.run(name, duration=duration) for name in algorithms}
