"""Greedy sequential filling -- the strategy the paper shows is suboptimal.

"In the above settings the simplest greedy approach to increase the rates
independently would give a suboptimal solution" (Section 2.1).  The greedy
strategy models what an MPTCP connection does right after start-up: it first
fills the default (shortest) path up to its bottleneck, then fills every
additional path as far as the already-committed rates allow.  The result is
Pareto-optimal (no single rate can grow) but globally suboptimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ModelError
from .bottleneck import ConstraintSystem


@dataclass
class GreedyResult:
    """Outcome of greedy sequential filling."""

    rates: List[float]
    total: float
    order: List[int]


def greedy_fill(
    system: ConstraintSystem,
    order: Optional[Sequence[int]] = None,
    *,
    start_rates: Optional[Sequence[float]] = None,
) -> GreedyResult:
    """Fill paths one at a time, each to the maximum the previous ones allow.

    Parameters
    ----------
    order:
        Path indices in filling order; the first entry plays the role of the
        default path.  Defaults to ``0, 1, ..., n-1``.
    start_rates:
        Optional starting allocation (defaults to all-zero).
    """
    n = system.path_count
    if order is None:
        order = list(range(n))
    order = list(order)
    if sorted(order) != list(range(n)):
        raise ModelError(f"order must be a permutation of 0..{n - 1}, got {order!r}")
    rates = list(start_rates) if start_rates is not None else [0.0] * n
    if len(rates) != n:
        raise ModelError("start_rates length must match the number of paths")
    if not system.is_feasible(rates):
        raise ModelError("start_rates is not feasible")

    for index in order:
        rates[index] = max(rates[index], system.max_rate_for_path(index, rates))
    return GreedyResult(rates=rates, total=float(sum(rates)), order=order)


def best_greedy_order(system: ConstraintSystem) -> GreedyResult:
    """Try every filling order and return the best greedy outcome.

    Even the best order can be suboptimal relative to the LP, but on many
    topologies the greedy gap depends strongly on which path goes first --
    mirroring the paper's observation that OLIA only found the optimum when
    Path 2 was the default path.
    """
    import itertools

    best: Optional[GreedyResult] = None
    for order in itertools.permutations(range(system.path_count)):
        candidate = greedy_fill(system, list(order))
        if best is None or candidate.total > best.total:
            best = candidate
    assert best is not None
    return best


def worst_greedy_order(system: ConstraintSystem) -> GreedyResult:
    """Try every filling order and return the worst greedy outcome."""
    import itertools

    worst: Optional[GreedyResult] = None
    for order in itertools.permutations(range(system.path_count)):
        candidate = greedy_fill(system, list(order))
        if worst is None or candidate.total < worst.total:
            worst = candidate
    assert worst is not None
    return worst
