"""Vertex enumeration of the feasible throughput region (Fig. 1c).

For the small path counts of the paper (three paths) the feasible region
``{x : A x <= c, x >= 0}`` can be described exactly by its vertices: every
vertex is the intersection of ``n`` linearly independent active constraints.
This module enumerates them by brute force, which doubles as a dependency-free
linear-program solver (the optimum of a bounded LP is attained at a vertex).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

import numpy as np

from ..errors import ModelError
from .bottleneck import ConstraintSystem


def enumerate_vertices(system: ConstraintSystem, tol: float = 1e-9) -> List[List[float]]:
    """All vertices of the feasible region, deduplicated, in deterministic order.

    Raises :class:`ModelError` if the region is unbounded in some coordinate
    (which cannot happen when every path crosses at least one finite-capacity
    link).
    """
    n = system.path_count
    a = system.matrix()
    c = system.rhs()

    for index in range(n):
        if not np.any(a[:, index] > 0):
            raise ModelError(
                f"path {index} crosses no capacity constraint; the region is unbounded"
            )

    # Stack the capacity constraints with the non-negativity constraints -x_i <= 0.
    full_a = np.vstack([a, -np.eye(n)])
    full_c = np.concatenate([c, np.zeros(n)])

    vertices: List[List[float]] = []
    seen: set = set()
    for rows in itertools.combinations(range(full_a.shape[0]), n):
        sub_a = full_a[list(rows)]
        sub_c = full_c[list(rows)]
        if abs(np.linalg.det(sub_a)) < tol:
            continue
        point = np.linalg.solve(sub_a, sub_c)
        if np.any(full_a @ point > full_c + 1e-7):
            continue
        key = tuple(round(float(v), 7) for v in point)
        if key in seen:
            continue
        seen.add(key)
        vertices.append([float(v) for v in point])
    vertices.sort()
    return vertices


def maximize_over_vertices(
    system: ConstraintSystem, weights: Sequence[float] | None = None
) -> List[float]:
    """Return the vertex maximising ``weights . x`` (uniform weights by default)."""
    vertices = enumerate_vertices(system)
    if not vertices:
        raise ModelError("the feasible region has no vertices (empty system?)")
    if weights is None:
        weights = [1.0] * system.path_count
    if len(weights) != system.path_count:
        raise ModelError("weights length must match the number of paths")
    return max(vertices, key=lambda v: sum(w * x for w, x in zip(weights, v)))


def feasible_region_volume(system: ConstraintSystem, samples: int = 20000, seed: int = 0) -> float:
    """Monte-Carlo estimate of the feasible region's volume (for visualisation).

    The bounding box is ``[0, max_rate_i]`` per path; the volume is the box
    volume times the fraction of uniformly sampled points that are feasible.
    """
    rng = np.random.default_rng(seed)
    n = system.path_count
    upper = np.array([system.max_rate_for_path(i, [0.0] * n) for i in range(n)])
    if np.any(upper <= 0):
        return 0.0
    points = rng.uniform(0.0, upper, size=(samples, n))
    a = system.matrix()
    c = system.rhs()
    feasible = np.all(points @ a.T <= c + 1e-9, axis=1)
    box_volume = float(np.prod(upper))
    return box_volume * float(np.count_nonzero(feasible)) / samples
