"""Topology generators for scenarios beyond the paper's example network.

These cover the other situations discussed in the paper's introduction and
the standard scenarios of the MPTCP literature:

* :func:`shared_bottleneck` -- every path crosses one common link (the
  fairness scenario coupled congestion control was designed for);
* :func:`disjoint_paths` / :func:`wifi_cellular` -- fully disjoint paths
  ("the primary use case of MPTCP ... both Wi-Fi and cellular networks");
* :func:`parking_lot` -- the classic chain topology with progressively
  overlapping paths;
* :func:`pairwise_overlap` -- the generalisation of the paper's construction
  to ``n`` paths where every pair shares its own bottleneck link;
* :func:`two_bottleneck_diamond` -- a small diamond with two partially
  overlapping paths.

Every generator returns ``(Topology, PathSet)`` ready to be passed to the
experiment harness.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..model.paths import Path, PathSet
from ..netsim.topology import Topology
from ..units import DEFAULT_LINK_DELAY, DEFAULT_QUEUE_PACKETS

Scenario = Tuple[Topology, PathSet]


def shared_bottleneck(
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    *,
    delay: float = DEFAULT_LINK_DELAY,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Scenario:
    """All paths traverse one shared bottleneck link.

    The paths differ only in their access segment, so a coupled controller
    should use no more of the bottleneck than a single TCP flow would.
    """
    if n_paths < 1:
        raise ConfigurationError("need at least one path")
    topology = Topology("shared-bottleneck")
    topology.add_host("s")
    topology.add_host("d")
    topology.add_router("agg")
    topology.add_router("core")
    topology.add_link("agg", "core", bottleneck_mbps, delay, queue_packets)
    topology.add_link("core", "d", access_mbps * n_paths, delay, queue_packets)

    paths: List[Path] = []
    for index in range(n_paths):
        access = f"a{index + 1}"
        topology.add_router(access)
        topology.add_link("s", access, access_mbps, delay, queue_packets)
        topology.add_link(access, "agg", access_mbps, delay, queue_packets)
        paths.append(
            Path(["s", access, "agg", "core", "d"], tag=index + 1, name=f"Path {index + 1}")
        )
    return topology, PathSet(paths)


def disjoint_paths(
    capacities_mbps: Sequence[float] = (50.0, 20.0),
    delays: Optional[Sequence[float]] = None,
    *,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Scenario:
    """Fully disjoint paths, one per capacity value."""
    if not capacities_mbps:
        raise ConfigurationError("need at least one path capacity")
    if delays is None:
        delays = [DEFAULT_LINK_DELAY] * len(capacities_mbps)
    if len(delays) != len(capacities_mbps):
        raise ConfigurationError("delays and capacities must have equal length")
    topology = Topology("disjoint")
    topology.add_host("s")
    topology.add_host("d")
    paths: List[Path] = []
    for index, (capacity, delay) in enumerate(zip(capacities_mbps, delays)):
        relay = f"r{index + 1}"
        topology.add_router(relay)
        topology.add_link("s", relay, capacity, delay, queue_packets)
        topology.add_link(relay, "d", capacity * 2, delay, queue_packets)
        paths.append(Path(["s", relay, "d"], tag=index + 1, name=f"Path {index + 1}"))
    return topology, PathSet(paths)


def wifi_cellular(
    wifi_mbps: float = 50.0,
    cellular_mbps: float = 20.0,
    *,
    wifi_delay: float = 0.005,
    cellular_delay: float = 0.030,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Scenario:
    """The multi-homed host use case: independent Wi-Fi and cellular paths."""
    topology = Topology("wifi-cellular")
    topology.add_host("client")
    topology.add_host("server")
    topology.add_router("wifi_ap")
    topology.add_router("lte_bs")
    topology.add_link("client", "wifi_ap", wifi_mbps, wifi_delay, queue_packets)
    topology.add_link("wifi_ap", "server", wifi_mbps * 2, wifi_delay, queue_packets)
    topology.add_link("client", "lte_bs", cellular_mbps, cellular_delay, queue_packets)
    topology.add_link("lte_bs", "server", cellular_mbps * 2, cellular_delay, queue_packets)
    paths = PathSet(
        [
            Path(["client", "wifi_ap", "server"], tag=1, name="Wi-Fi"),
            Path(["client", "lte_bs", "server"], tag=2, name="Cellular"),
        ]
    )
    return topology, paths


def parking_lot(
    segments: int = 3,
    segment_mbps: float = 50.0,
    *,
    delay: float = DEFAULT_LINK_DELAY,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Scenario:
    """The parking-lot chain: a long path overlapping several short hops.

    Path 1 traverses the whole chain; path ``i > 1`` enters at hop ``i - 1``
    and leaves at hop ``i``, so it crosses exactly the segment
    ``chain[i-1] -> chain[i]`` and nothing else of the chain, while the long
    path shares every segment.  Because all paths here connect the same
    source and destination pair (as MPTCP requires), each short path uses a
    private entry and exit detour (over-provisioned so that only its own
    chain segment constrains it).
    """
    if segments < 2:
        raise ConfigurationError("need at least two segments")
    topology = Topology("parking-lot")
    topology.add_host("s")
    topology.add_host("d")
    chain = [f"c{i}" for i in range(segments + 1)]
    for node in chain:
        topology.add_router(node)
    topology.add_link("s", chain[0], segment_mbps * 4, delay, queue_packets)
    topology.add_link(chain[-1], "d", segment_mbps * 4, delay, queue_packets)
    for a, b in zip(chain, chain[1:]):
        topology.add_link(a, b, segment_mbps, delay, queue_packets)

    paths: List[Path] = [Path(["s", *chain, "d"], tag=1, name="Path 1 (long)")]
    for index in range(1, segments):
        entry, exit_node = f"b{index}", f"e{index}"
        topology.add_router(entry)
        topology.add_router(exit_node)
        topology.add_link("s", entry, segment_mbps * 4, delay, queue_packets)
        topology.add_link(entry, chain[index], segment_mbps * 4, delay, queue_packets)
        topology.add_link(chain[index + 1], exit_node, segment_mbps * 4, delay, queue_packets)
        topology.add_link(exit_node, "d", segment_mbps * 4, delay, queue_packets)
        nodes = ["s", entry, chain[index], chain[index + 1], exit_node, "d"]
        paths.append(Path(nodes, tag=index + 1, name=f"Path {index + 1}"))
    return topology, PathSet(paths)


def pairwise_overlap(
    n_paths: int = 3,
    capacities: Optional[Sequence[float]] = None,
    *,
    default_capacity: float = 200.0,
    delay: float = DEFAULT_LINK_DELAY,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
    seed: int = 0,
) -> Scenario:
    """Generalise the paper's construction: every pair of paths shares a link.

    For ``n_paths = 3`` and capacities ``(40, 60, 80)`` this is structurally
    the paper's network.  Larger ``n`` gives progressively harder instances of
    the same optimisation problem (``n(n-1)/2`` coupled constraints).
    """
    if n_paths < 2:
        raise ConfigurationError("need at least two paths")
    pairs = [(i, j) for i in range(n_paths) for j in range(i + 1, n_paths)]
    if capacities is None:
        rng = random.Random(seed)
        capacities = [float(rng.randrange(30, 100, 10)) for _ in pairs]
    if len(capacities) != len(pairs):
        raise ConfigurationError(f"need {len(pairs)} capacities, got {len(capacities)}")

    topology = Topology(f"pairwise-overlap-{n_paths}")
    topology.add_host("s")
    topology.add_host("d")
    # One dedicated shared link per pair of paths.
    shared_link: dict = {}
    for pair, capacity in zip(pairs, capacities):
        a, b = f"p{pair[0]}{pair[1]}a", f"p{pair[0]}{pair[1]}b"
        topology.add_router(a)
        topology.add_router(b)
        topology.add_link(a, b, capacity, delay, queue_packets)
        shared_link[pair] = (a, b)

    paths: List[Path] = []
    for index in range(n_paths):
        # Path i traverses the shared link of every pair it belongs to; a
        # private access and exit segment keep the shared links the only
        # overlap between any two paths.
        access, exit_node = f"in{index}", f"out{index}"
        topology.add_router(access)
        topology.add_router(exit_node)
        topology.add_link("s", access, default_capacity, delay, queue_packets)
        topology.add_link(exit_node, "d", default_capacity, delay, queue_packets)
        hops: List[str] = ["s", access]
        for pair in pairs:
            if index in pair:
                a, b = shared_link[pair]
                previous = hops[-1]
                if not topology.has_link(previous, a):
                    topology.add_link(previous, a, default_capacity, delay, queue_packets)
                hops.extend([a, b])
        if not topology.has_link(hops[-1], exit_node):
            topology.add_link(hops[-1], exit_node, default_capacity, delay, queue_packets)
        hops.extend([exit_node, "d"])
        paths.append(Path(hops, tag=index + 1, name=f"Path {index + 1}"))
    return topology, PathSet(paths)


def two_bottleneck_diamond(
    top_mbps: float = 30.0,
    bottom_mbps: float = 60.0,
    shared_mbps: float = 80.0,
    *,
    delay: float = DEFAULT_LINK_DELAY,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Scenario:
    """A diamond where two paths share the first hop then split."""
    topology = Topology("diamond")
    topology.add_host("s")
    topology.add_host("d")
    for router in ("in", "up", "down"):
        topology.add_router(router)
    topology.add_link("s", "in", shared_mbps, delay, queue_packets)
    topology.add_link("in", "up", top_mbps, delay, queue_packets)
    topology.add_link("in", "down", bottom_mbps, delay, queue_packets)
    topology.add_link("up", "d", top_mbps * 2, delay, queue_packets)
    topology.add_link("down", "d", bottom_mbps * 2, delay, queue_packets)
    paths = PathSet(
        [
            Path(["s", "in", "up", "d"], tag=1, name="Path 1 (top)"),
            Path(["s", "in", "down", "d"], tag=2, name="Path 2 (bottom)"),
        ]
    )
    return topology, paths
