"""Topology builders: the paper's network (Fig. 1a) and generic scenarios."""

from .generators import (
    disjoint_paths,
    pairwise_overlap,
    parking_lot,
    shared_bottleneck,
    two_bottleneck_diamond,
    wifi_cellular,
)
from .paper import (
    PAPER_DEFAULT_PATH_INDEX,
    PAPER_OPTIMAL_RATES,
    PAPER_OPTIMAL_TOTAL,
    PAPER_SHARED_CAPACITIES,
    build_paper_topology,
    paper_paths,
    paper_scenario,
    paper_shared_link,
    paper_variants,
)

__all__ = [
    "PAPER_DEFAULT_PATH_INDEX",
    "PAPER_OPTIMAL_RATES",
    "PAPER_OPTIMAL_TOTAL",
    "PAPER_SHARED_CAPACITIES",
    "build_paper_topology",
    "disjoint_paths",
    "pairwise_overlap",
    "paper_paths",
    "paper_scenario",
    "paper_shared_link",
    "paper_variants",
    "parking_lot",
    "shared_bottleneck",
    "two_bottleneck_diamond",
    "wifi_cellular",
]
