"""The paper's example network (Fig. 1a) and its three overlapping paths.

Six nodes (``s``, ``v1``..``v4``, ``d``) and three paths from ``s`` to ``d``
such that every pair of paths shares exactly one link.  The shared links get
the capacities 40, 60 and 80 Mbps and every other link keeps the default
100 Mbps, producing the constraint system of Fig. 1c:

* ``as_stated`` variant (the inequalities printed in Section 2.1)::

      x1 + x2 <= 40      x2 + x3 <= 60      x1 + x3 <= 80

  whose unique optimum is ``(30, 10, 50)``, total 90 Mbps.

* ``as_solution`` variant (the labelling consistent with the optimum the
  paper reports, ``(10, 30, 50)``)::

      x1 + x2 <= 40      x1 + x3 <= 60      x2 + x3 <= 80

Both variants are the same network up to a relabelling of two links; the
total optimum is 90 Mbps either way.  Link delays are chosen so that Path 2
has the smallest round-trip time, because the paper designates Path 2 as the
connection's "default shortest path".
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..model.paths import Path, PathSet
from ..netsim.topology import Topology
from ..units import DEFAULT_QUEUE_PACKETS

#: Total optimal throughput of the paper's example (Mbps).
PAPER_OPTIMAL_TOTAL = 90.0

#: Optimal per-path rates for each capacity labelling.
PAPER_OPTIMAL_RATES = {
    "as_stated": (30.0, 10.0, 50.0),
    "as_solution": (10.0, 30.0, 50.0),
}

#: Capacity of the pairwise shared links, keyed by the path pair, per variant.
PAPER_SHARED_CAPACITIES: Dict[str, Dict[Tuple[int, int], float]] = {
    "as_stated": {(1, 2): 40.0, (2, 3): 60.0, (1, 3): 80.0},
    "as_solution": {(1, 2): 40.0, (2, 3): 80.0, (1, 3): 60.0},
}

#: The index (0-based) of the paper's default path, Path 2.
PAPER_DEFAULT_PATH_INDEX = 1

#: Node lists of the three paths (Fig. 1b).
_PATH_NODES = (
    ("s", "v1", "v4", "d"),          # Path 1
    ("s", "v1", "v2", "v3", "d"),    # Path 2 (default / shortest RTT)
    ("s", "v2", "v3", "v4", "d"),    # Path 3
)

#: Which physical link carries each pairwise constraint.
_SHARED_LINKS: Dict[Tuple[int, int], Tuple[str, str]] = {
    (1, 2): ("s", "v1"),
    (2, 3): ("v2", "v3"),
    (1, 3): ("v4", "d"),
}

#: Per-link one-way delays (seconds); chosen so Path 2 has the smallest RTT.
_LINK_DELAYS: Dict[Tuple[str, str], float] = {
    ("s", "v1"): 0.001,
    ("s", "v2"): 0.001,
    ("v1", "v2"): 0.0003,
    ("v1", "v4"): 0.001,
    ("v2", "v3"): 0.0003,
    ("v3", "v4"): 0.001,
    ("v3", "d"): 0.001,
    ("v4", "d"): 0.001,
}


def paper_variants() -> Tuple[str, ...]:
    """The supported capacity labellings."""
    return tuple(PAPER_SHARED_CAPACITIES)


def build_paper_topology(
    variant: str = "as_stated",
    *,
    default_capacity: float = 100.0,
    queue_packets: int = DEFAULT_QUEUE_PACKETS,
) -> Topology:
    """Build the Fig. 1a topology with the requested capacity labelling."""
    if variant not in PAPER_SHARED_CAPACITIES:
        raise ConfigurationError(
            f"unknown paper-topology variant {variant!r}; choose from {paper_variants()}"
        )
    shared = PAPER_SHARED_CAPACITIES[variant]

    topology = Topology(name=f"paper-{variant}")
    topology.add_host("s")
    topology.add_host("d")
    for router in ("v1", "v2", "v3", "v4"):
        topology.add_router(router)

    capacities: Dict[Tuple[str, str], float] = {
        link: default_capacity for link in _LINK_DELAYS
    }
    for pair, link in _SHARED_LINKS.items():
        capacities[link] = shared[pair]

    for (a, b), delay in _LINK_DELAYS.items():
        topology.add_link(
            a,
            b,
            capacity_mbps=capacities[(a, b)],
            delay=delay,
            queue_packets=queue_packets,
        )
    return topology


def paper_paths() -> PathSet:
    """The three tagged paths of Fig. 1b (tags 1, 2, 3)."""
    return PathSet(
        [
            Path(nodes, tag=index + 1, name=f"Path {index + 1}")
            for index, nodes in enumerate(_PATH_NODES)
        ]
    )


def paper_scenario(
    variant: str = "as_stated", *, queue_packets: int = DEFAULT_QUEUE_PACKETS
) -> Tuple[Topology, PathSet]:
    """Topology and paths together -- the usual entry point for experiments."""
    return build_paper_topology(variant, queue_packets=queue_packets), paper_paths()


def paper_shared_link(pair: Tuple[int, int]) -> Tuple[str, str]:
    """Physical link shared by a pair of paths, e.g. ``(1, 2) -> ("s", "v1")``."""
    key = tuple(sorted(pair))
    try:
        return _SHARED_LINKS[key]  # type: ignore[index]
    except KeyError:
        raise ConfigurationError(f"paths {pair} do not share a link") from None
