"""MPTCP path managers: the subflow lifecycle of a connection.

The path manager decides how many subflows a connection opens, which path
each one is pinned to, and -- since the network learned to change under a
running connection (:mod:`repro.netsim.dynamics`) -- how the subflow set
evolves when paths fail and recover.  The lifecycle is:

* :meth:`PathManager.initial_subflows` produces the subflow descriptors the
  connection opens before the first packet (the old one-shot
  ``build_subflows``, kept as an alias);
* :meth:`PathManager.on_path_down` runs when a link on a subflow's path goes
  down; returning a :class:`~repro.model.paths.Path` tells the connection to
  open a replacement subflow on it at runtime (handover);
* :meth:`PathManager.on_path_up` runs when a failed path heals.

The paper modifies the ``ndiffports`` path manager so that every subflow's
packets carry a distinct tag ("the exact tags and the number of subflows is
given as an argument for our path-manager module"); :class:`TagPathManager`
reproduces that module.  The stock ``ndiffports`` (all subflows on the
default route), a full-mesh manager for multi-homed hosts and the
failure-driven :class:`FailoverPathManager` (mobile handover) are provided
for comparison and dynamics scenarios.
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import ConfigurationError
from ..model.paths import Path, PathSet
from .subflow import Subflow

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.network import Network
    from .connection import MptcpConnection


class PathManager(ABC):
    """Produces and maintains the subflow descriptors (path + tag) of a connection.

    Subclasses implement :meth:`initial_subflows`; legacy subclasses that
    only override the old one-shot :meth:`build_subflows` keep working --
    each method's default delegates to the other, so exactly one must be
    overridden.
    """

    name = "base"

    def initial_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        """Return the subflows opened at connection setup (no transport yet)."""
        if type(self).build_subflows is PathManager.build_subflows:
            raise NotImplementedError(
                f"{type(self).__name__} must implement initial_subflows()"
            )
        return self.build_subflows(network, src, dst)

    def build_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        """Backwards-compatible alias for :meth:`initial_subflows`."""
        return self.initial_subflows(network, src, dst)

    # ------------------------------------------------------------------ lifecycle
    def on_path_down(
        self, connection: "MptcpConnection", subflow: Subflow
    ) -> Optional[Path]:
        """React to ``subflow``'s path losing a link.

        Return a :class:`Path` to open a replacement subflow on it, or None
        to ride out the outage on the surviving subflows.  The connection has
        already marked the subflow down and re-injected its unacknowledged
        data before calling this hook.
        """
        return None

    def on_path_up(self, connection: "MptcpConnection", subflow: Subflow) -> None:
        """React to ``subflow``'s path healing (it is active again)."""


class TagPathManager(PathManager):
    """The paper's modified ``ndiffports``: one tagged subflow per given path.

    Parameters
    ----------
    paths:
        The pre-selected paths.  Tags default to the paths' own tags or to
        ``1..n`` when unset.
    default_index:
        Which path is the connection's default ("shortest") path; its subflow
        is created first and its route is installed as the untagged default.
    """

    name = "tag"

    def __init__(self, paths: Sequence[Path] | PathSet, default_index: int = 0) -> None:
        path_list = list(paths)
        if not path_list:
            raise ConfigurationError("TagPathManager needs at least one path")
        if not 0 <= default_index < len(path_list):
            raise ConfigurationError(
                f"default_index {default_index} out of range for {len(path_list)} paths"
            )
        self.paths = path_list
        self.default_index = default_index

    def initial_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        subflows: List[Subflow] = []
        for index, path in enumerate(self.paths):
            if path.src != src or path.dst != dst:
                raise ConfigurationError(
                    f"path {path} does not connect {src!r} to {dst!r}"
                )
            tag = path.tag if path.tag is not None else index + 1
            is_default = index == self.default_index
            network.install_path(path.nodes, tag, as_default=is_default)
            subflows.append(
                Subflow(subflow_id=index, path=path, tag=tag, is_default=is_default)
            )
        # The default subflow is listed first so that it starts first, like
        # the initial MPTCP subflow on the default route.
        subflows.sort(key=lambda sf: (not sf.is_default, sf.subflow_id))
        return subflows


class NdiffportsPathManager(PathManager):
    """Stock ``ndiffports``: ``n`` subflows that all follow the default route.

    Because every subflow shares the same path, this is the degenerate
    overlapping case: all subflows compete for the same bottleneck.
    """

    name = "ndiffports"

    def __init__(self, subflow_count: int = 2, default_path: Optional[Path] = None) -> None:
        if subflow_count < 1:
            raise ConfigurationError("need at least one subflow")
        self.subflow_count = subflow_count
        self.default_path = default_path

    def initial_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        if self.default_path is not None:
            path = self.default_path
        else:
            nodes = network.topology.shortest_path(src, dst)
            path = Path(nodes, tag=None, name="default")
        network.install_path(path.nodes, None, as_default=True)
        return [
            Subflow(subflow_id=i, path=path, tag=None, is_default=(i == 0))
            for i in range(self.subflow_count)
        ]


class FullMeshPathManager(PathManager):
    """One subflow per available path, discovered from the topology.

    Models the full-mesh path manager of a multi-homed host (e.g. Wi-Fi and
    cellular): the ``k`` shortest simple paths between the endpoints each get
    a subflow and a tag.
    """

    name = "fullmesh"

    def __init__(self, max_subflows: int = 4) -> None:
        if max_subflows < 1:
            raise ConfigurationError("need at least one subflow")
        self.max_subflows = max_subflows

    def initial_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        node_lists = network.topology.k_shortest_paths(src, dst, self.max_subflows)
        subflows: List[Subflow] = []
        for index, nodes in enumerate(node_lists):
            tag = index + 1
            path = Path(nodes, tag=tag, name=f"Path {index + 1}")
            network.install_path(nodes, tag, as_default=(index == 0))
            subflows.append(
                Subflow(subflow_id=index, path=path, tag=tag, is_default=(index == 0))
            )
        return subflows


class FailoverPathManager(PathManager):
    """Failure-driven handover: open backup subflows only when paths die.

    Starts on the primary path alone (the first of ``paths``).  Each time an
    active subflow's path fails, the next unused backup path gets a new
    subflow opened at runtime -- the mobile-handover lifecycle (e.g. Wi-Fi
    drops, a cellular subflow joins mid-connection).  Healed paths simply
    resume; already-opened subflows are never closed by this manager.

    The manager tracks which backups it has handed out, so it is meant to
    drive a single connection.
    """

    name = "failover"

    def __init__(self, paths: Sequence[Path] | PathSet) -> None:
        path_list = list(paths)
        if not path_list:
            raise ConfigurationError("FailoverPathManager needs at least one path")
        self.paths = path_list
        self._next_backup = 1

    def initial_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        primary = self.paths[0]
        if primary.src != src or primary.dst != dst:
            raise ConfigurationError(
                f"path {primary} does not connect {src!r} to {dst!r}"
            )
        self._next_backup = 1
        tag = primary.tag if primary.tag is not None else 1
        network.install_path(primary.nodes, tag, as_default=True)
        return [Subflow(subflow_id=0, path=primary, tag=tag, is_default=True)]

    def on_path_down(
        self, connection: "MptcpConnection", subflow: Subflow
    ) -> Optional[Path]:
        while self._next_backup < len(self.paths):
            backup = self.paths[self._next_backup]
            self._next_backup += 1
            if connection.network.path_is_up(backup.nodes):
                return backup
        return None
