"""MPTCP path managers.

The path manager decides how many subflows a connection opens and which path
each one is pinned to.  The paper modifies the ``ndiffports`` path manager so
that every subflow's packets carry a distinct tag ("the exact tags and the
number of subflows is given as an argument for our path-manager module");
:class:`TagPathManager` reproduces that module.  The stock ``ndiffports``
(all subflows on the default route) and a full-mesh manager for multi-homed
hosts are provided for comparison scenarios.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import ConfigurationError
from ..model.paths import Path, PathSet
from .subflow import Subflow

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.network import Network


class PathManager(ABC):
    """Produces the subflow descriptors (path + tag) for a connection."""

    name = "base"

    @abstractmethod
    def build_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        """Return the subflows (without transport agents attached yet)."""


class TagPathManager(PathManager):
    """The paper's modified ``ndiffports``: one tagged subflow per given path.

    Parameters
    ----------
    paths:
        The pre-selected paths.  Tags default to the paths' own tags or to
        ``1..n`` when unset.
    default_index:
        Which path is the connection's default ("shortest") path; its subflow
        is created first and its route is installed as the untagged default.
    """

    name = "tag"

    def __init__(self, paths: Sequence[Path] | PathSet, default_index: int = 0) -> None:
        path_list = list(paths)
        if not path_list:
            raise ConfigurationError("TagPathManager needs at least one path")
        if not 0 <= default_index < len(path_list):
            raise ConfigurationError(
                f"default_index {default_index} out of range for {len(path_list)} paths"
            )
        self.paths = path_list
        self.default_index = default_index

    def build_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        subflows: List[Subflow] = []
        for index, path in enumerate(self.paths):
            if path.src != src or path.dst != dst:
                raise ConfigurationError(
                    f"path {path} does not connect {src!r} to {dst!r}"
                )
            tag = path.tag if path.tag is not None else index + 1
            is_default = index == self.default_index
            network.install_path(path.nodes, tag, as_default=is_default)
            subflows.append(
                Subflow(subflow_id=index, path=path, tag=tag, is_default=is_default)
            )
        # The default subflow is listed first so that it starts first, like
        # the initial MPTCP subflow on the default route.
        subflows.sort(key=lambda sf: (not sf.is_default, sf.subflow_id))
        return subflows


class NdiffportsPathManager(PathManager):
    """Stock ``ndiffports``: ``n`` subflows that all follow the default route.

    Because every subflow shares the same path, this is the degenerate
    overlapping case: all subflows compete for the same bottleneck.
    """

    name = "ndiffports"

    def __init__(self, subflow_count: int = 2, default_path: Optional[Path] = None) -> None:
        if subflow_count < 1:
            raise ConfigurationError("need at least one subflow")
        self.subflow_count = subflow_count
        self.default_path = default_path

    def build_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        if self.default_path is not None:
            path = self.default_path
        else:
            nodes = network.topology.shortest_path(src, dst)
            path = Path(nodes, tag=None, name="default")
        network.install_path(path.nodes, None, as_default=True)
        return [
            Subflow(subflow_id=i, path=path, tag=None, is_default=(i == 0))
            for i in range(self.subflow_count)
        ]


class FullMeshPathManager(PathManager):
    """One subflow per available path, discovered from the topology.

    Models the full-mesh path manager of a multi-homed host (e.g. Wi-Fi and
    cellular): the ``k`` shortest simple paths between the endpoints each get
    a subflow and a tag.
    """

    name = "fullmesh"

    def __init__(self, max_subflows: int = 4) -> None:
        if max_subflows < 1:
            raise ConfigurationError("need at least one subflow")
        self.max_subflows = max_subflows

    def build_subflows(self, network: "Network", src: str, dst: str) -> List[Subflow]:
        node_lists = network.topology.k_shortest_paths(src, dst, self.max_subflows)
        subflows: List[Subflow] = []
        for index, nodes in enumerate(node_lists):
            tag = index + 1
            path = Path(nodes, tag=tag, name=f"Path {index + 1}")
            network.install_path(nodes, tag, as_default=(index == 0))
            subflows.append(
                Subflow(subflow_id=index, path=path, tag=tag, is_default=(index == 0))
            )
        return subflows
