"""MPTCP over overlapping paths -- the paper's primary subject.

Public surface:

* :class:`MptcpConnection` -- the multipath connection object
* :class:`Subflow` -- one tagged TCP session along one path
* path managers -- :class:`TagPathManager` (the paper's modified
  ``ndiffports``), :class:`NdiffportsPathManager`, :class:`FullMeshPathManager`
* schedulers -- :class:`MinRttScheduler`, :class:`RoundRobinScheduler`,
  :class:`RedundantScheduler`
* coupled congestion control -- LIA, OLIA, BALIA, wVegas and the uncoupled
  CUBIC/Reno wrappers, created via :func:`make_multipath_congestion_control`
"""

from .connection import MptcpConnection
from .coupled import (
    BaliaCongestionControl,
    CoupledCongestionControl,
    CouplingGroup,
    LiaCongestionControl,
    MULTIPATH_ALGORITHMS,
    OliaCongestionControl,
    PAPER_ALGORITHMS,
    UncoupledCubic,
    UncoupledReno,
    WVegasCongestionControl,
    make_multipath_congestion_control,
)
from .options import DsnAllocator, DsnReassembler
from .path_manager import (
    FailoverPathManager,
    FullMeshPathManager,
    NdiffportsPathManager,
    PathManager,
    TagPathManager,
)
from .scheduler import (
    MinRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from .subflow import Subflow

__all__ = [
    "BaliaCongestionControl",
    "CoupledCongestionControl",
    "CouplingGroup",
    "DsnAllocator",
    "DsnReassembler",
    "FailoverPathManager",
    "FullMeshPathManager",
    "LiaCongestionControl",
    "MULTIPATH_ALGORITHMS",
    "MinRttScheduler",
    "MptcpConnection",
    "NdiffportsPathManager",
    "OliaCongestionControl",
    "PAPER_ALGORITHMS",
    "PathManager",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "Subflow",
    "TagPathManager",
    "UncoupledCubic",
    "UncoupledReno",
    "WVegasCongestionControl",
    "make_multipath_congestion_control",
    "make_scheduler",
]
