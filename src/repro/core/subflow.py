"""Subflow: one TCP session pinned to one tagged path.

"MPTCP extends TCP so that a single connection can be striped across multiple
sub-flows, each being a TCP session along a unique path" (paper, §1).  A
:class:`Subflow` bundles the per-path sender, receiver and congestion-control
instance together with the :class:`~repro.model.paths.Path` it is pinned to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..model.paths import Path
from ..units import throughput_mbps

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.cc.base import CongestionControl
    from ..tcp.receiver import TcpReceiver
    from ..tcp.sender import TcpSender


class Subflow:
    """One MPTCP subflow and its simulation objects.

    A plain ``__slots__`` class (not a dataclass): ``acked_bytes`` is bumped
    and ``sender`` dereferenced once per acknowledged segment of every
    subflow, and slotted attribute access keeps that hot path lean.
    """

    __slots__ = (
        "subflow_id",
        "path",
        "tag",
        "is_default",
        "sender",
        "receiver",
        "cc",
        "started_at",
        "acked_bytes",
        "state",
    )

    #: Lifecycle states: ``"active"`` (usable), ``"down"`` (its path lost a
    #: link; the subflow survives and resumes when the path heals) and
    #: ``"closed"`` (removed at runtime; never comes back).
    STATES = ("active", "down", "closed")

    def __init__(
        self,
        subflow_id: int,
        path: Path,
        tag: Optional[int],
        is_default: bool = False,
        sender: "TcpSender" = None,  # type: ignore[assignment]
        receiver: "TcpReceiver" = None,  # type: ignore[assignment]
        cc: "CongestionControl" = None,  # type: ignore[assignment]
        started_at: Optional[float] = None,
        acked_bytes: int = 0,
        state: str = "active",
    ) -> None:
        self.subflow_id = subflow_id
        self.path = path
        self.tag = tag
        self.is_default = is_default
        self.sender = sender
        self.receiver = receiver
        self.cc = cc
        self.started_at = started_at
        self.acked_bytes = acked_bytes
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Subflow(subflow_id={self.subflow_id!r}, path={self.path!r}, "
            f"tag={self.tag!r}, is_default={self.is_default!r}, "
            f"started_at={self.started_at!r}, acked_bytes={self.acked_bytes!r})"
        )

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while the subflow may carry data (not down, not closed)."""
        return self.state == "active"

    @property
    def name(self) -> str:
        return self.path.name or f"subflow-{self.subflow_id}"

    @property
    def cwnd_segments(self) -> float:
        return self.cc.cwnd if self.cc is not None else 0.0

    @property
    def srtt(self) -> Optional[float]:
        if self.sender is None:
            return None
        return self.sender.rtt.srtt

    @property
    def retransmissions(self) -> int:
        return self.sender.stats.retransmissions if self.sender is not None else 0

    def mean_throughput_mbps(self, now: float) -> float:
        """Mean subflow goodput since it started, in Mbps."""
        if self.started_at is None or now <= self.started_at:
            return 0.0
        return throughput_mbps(self.acked_bytes, now - self.started_at)

    def __str__(self) -> str:
        role = " (default)" if self.is_default else ""
        return f"{self.name}{role} [tag={self.tag}]"
