"""Subflow: one TCP session pinned to one tagged path.

"MPTCP extends TCP so that a single connection can be striped across multiple
sub-flows, each being a TCP session along a unique path" (paper, §1).  A
:class:`Subflow` bundles the per-path sender, receiver and congestion-control
instance together with the :class:`~repro.model.paths.Path` it is pinned to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..model.paths import Path
from ..units import throughput_mbps

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.cc.base import CongestionControl
    from ..tcp.receiver import TcpReceiver
    from ..tcp.sender import TcpSender


@dataclass
class Subflow:
    """One MPTCP subflow and its simulation objects."""

    subflow_id: int
    path: Path
    tag: Optional[int]
    is_default: bool = False
    sender: "TcpSender" = field(default=None, repr=False)  # type: ignore[assignment]
    receiver: "TcpReceiver" = field(default=None, repr=False)  # type: ignore[assignment]
    cc: "CongestionControl" = field(default=None, repr=False)  # type: ignore[assignment]
    started_at: Optional[float] = None
    acked_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.path.name or f"subflow-{self.subflow_id}"

    @property
    def cwnd_segments(self) -> float:
        return self.cc.cwnd if self.cc is not None else 0.0

    @property
    def srtt(self) -> Optional[float]:
        if self.sender is None:
            return None
        return self.sender.rtt.srtt

    @property
    def retransmissions(self) -> int:
        return self.sender.stats.retransmissions if self.sender is not None else 0

    def mean_throughput_mbps(self, now: float) -> float:
        """Mean subflow goodput since it started, in Mbps."""
        if self.started_at is None or now <= self.started_at:
            return 0.0
        return throughput_mbps(self.acked_bytes, now - self.started_at)

    def __str__(self) -> str:
        role = " (default)" if self.is_default else ""
        return f"{self.name}{role} [tag={self.tag}]"
