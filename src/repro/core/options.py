"""Data-sequence-number (DSS) bookkeeping.

MPTCP stripes one byte stream across subflows; every transmitted segment
carries a *data sequence number* (DSN) mapping its payload back into the
connection-level stream.  :class:`DsnAllocator` hands out DSN ranges to the
scheduler and :class:`DsnReassembler` rebuilds the in-order stream at the
receiver, tolerating the duplicates produced by retransmissions and by the
redundant scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class DsnAllocator:
    """Allocates contiguous DSN ranges for new application data.

    Parameters
    ----------
    total_bytes:
        Size of the transfer; ``None`` models an unbounded (iperf-like) source.
    send_buffer_bytes:
        Optional cap on unacknowledged connection-level data.  When set, the
        allocator refuses new ranges until enough data has been acknowledged,
        which is when the choice of scheduler starts to matter.
    """

    def __init__(
        self,
        total_bytes: Optional[int] = None,
        send_buffer_bytes: Optional[int] = None,
    ) -> None:
        self.total_bytes = total_bytes
        self.send_buffer_bytes = send_buffer_bytes
        self.next_dsn = 0
        self.acked_bytes = 0

    # ------------------------------------------------------------------
    @property
    def outstanding_bytes(self) -> int:
        """Connection-level bytes handed to subflows but not yet acknowledged."""
        return self.next_dsn - self.acked_bytes

    def available(self, max_bytes: int) -> int:
        """How many new bytes may be allocated right now (0 if none)."""
        grant = max_bytes
        if self.total_bytes is not None:
            grant = min(grant, self.total_bytes - self.next_dsn)
        if self.send_buffer_bytes is not None:
            grant = min(grant, self.send_buffer_bytes - self.outstanding_bytes)
        return max(grant, 0)

    def allocate(self, max_bytes: int) -> Optional[Tuple[int, int]]:
        """Reserve up to ``max_bytes`` new bytes; return ``(dsn, length)`` or None."""
        # Per-segment hot path: ``available`` is inlined (same clamping, no
        # property round-trips).
        grant = max_bytes
        dsn = self.next_dsn
        total = self.total_bytes
        if total is not None:
            remaining = total - dsn
            if remaining < grant:
                grant = remaining
        send_buffer = self.send_buffer_bytes
        if send_buffer is not None:
            room = send_buffer - (dsn - self.acked_bytes)
            if room < grant:
                grant = room
        if grant <= 0:
            return None
        self.next_dsn = dsn + grant
        return dsn, grant

    def on_acked(self, length: int) -> None:
        """Record ``length`` connection-level bytes as acknowledged."""
        self.acked_bytes += length

    @property
    def finished(self) -> bool:
        """True when a finite transfer has been fully allocated and acknowledged."""
        if self.total_bytes is None:
            return False
        return self.acked_bytes >= self.total_bytes


class DsnReassembler:
    """Connection-level in-order reassembly of DSN ranges.

    Duplicate deliveries (subflow retransmissions, redundant scheduling) are
    detected and ignored so goodput is never counted twice.
    """

    def __init__(self) -> None:
        self.data_ack = 0
        self._pending: Dict[int, int] = {}  # dsn -> length
        self.duplicate_bytes = 0
        self.delivered_bytes = 0
        #: (time, cumulative in-order bytes) appended whenever data_ack advances.
        self.goodput_records: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    def deliver(self, dsn: int, length: int, now: float) -> int:
        """Deliver a DSN range; return the updated cumulative data ACK."""
        if length <= 0:
            return self.data_ack
        if dsn == self.data_ack and not self._pending:
            # Fast path: the in-order range with no reassembly holes -- the
            # overwhelmingly common case on the per-segment hot path.
            data_ack = dsn + length
            self.data_ack = data_ack
            self.delivered_bytes += length
            self.goodput_records.append((now, data_ack))
            return data_ack
        end = dsn + length
        if end <= self.data_ack:
            self.duplicate_bytes += length
            return self.data_ack
        if dsn < self.data_ack:
            # Partial overlap with already-delivered data.
            self.duplicate_bytes += self.data_ack - dsn
            length = end - self.data_ack
            dsn = self.data_ack
        if dsn in self._pending:
            self.duplicate_bytes += length
            return self.data_ack
        self._pending[dsn] = max(self._pending.get(dsn, 0), length)
        self._advance(now)
        return self.data_ack

    def _advance(self, now: float) -> None:
        advanced = False
        while self.data_ack in self._pending:
            length = self._pending.pop(self.data_ack)
            self.data_ack += length
            self.delivered_bytes += length
            advanced = True
        if advanced:
            self.goodput_records.append((now, self.data_ack))

    # ------------------------------------------------------------------
    @property
    def out_of_order_bytes(self) -> int:
        """Bytes received above the cumulative data ACK, waiting for holes."""
        return sum(self._pending.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DsnReassembler(data_ack={self.data_ack}, pending={len(self._pending)}, "
            f"duplicates={self.duplicate_bytes})"
        )
