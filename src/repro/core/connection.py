"""The MPTCP connection: subflows, data striping and connection statistics.

:class:`MptcpConnection` is the library's top-level protocol object -- the
equivalent of an MPTCP socket opened by iperf in the paper's measurements.
It asks a path manager for the subflows (one tagged TCP session per
pre-selected path), couples their congestion controllers through a shared
:class:`~repro.core.coupled.CouplingGroup`, stripes a bulk byte stream across
them according to the configured scheduler and reassembles the stream at the
destination host.

The subflow set is no longer fixed at setup: the connection listens for
network dynamics events and survives path failures.  When a link on a
subflow's path goes down, the subflow is marked ``"down"``, its
unacknowledged DSN ranges are re-injected on the sibling subflows (the MPTCP
re-injection mechanism) and the path manager may open a replacement subflow
at runtime (:meth:`add_subflow`); when the path heals, the subflow resumes.
:meth:`close_subflow` removes a subflow for good, keeping the coupling
group's membership caches consistent.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..model.paths import Path, PathSet
from ..netsim.network import Network
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from ..units import DEFAULT_MSS, throughput_mbps
from .coupled import CouplingGroup, make_multipath_congestion_control
from .options import DsnAllocator, DsnReassembler
from .path_manager import PathManager, TagPathManager
from .scheduler import MinRttScheduler, RoundRobinScheduler, Scheduler, make_scheduler
from .subflow import Subflow

_flow_ids = itertools.count(1000)


def _path_uses_link(path: Path, a: str, b: str) -> bool:
    """True when ``path`` traverses the link between ``a`` and ``b`` (either way)."""
    nodes = path.nodes
    for x, y in zip(nodes, nodes[1:]):
        if (x == a and y == b) or (x == b and y == a):
            return True
    return False


class MptcpConnection:
    """A multipath TCP connection between two hosts of a built network.

    Parameters
    ----------
    network:
        The instantiated :class:`~repro.netsim.network.Network`.
    src, dst:
        Host names of the sender and the receiver.
    paths:
        The pre-selected paths (a :class:`PathSet`, a list of
        :class:`~repro.model.paths.Path` or raw node lists).  Ignored when an
        explicit ``path_manager`` is given.
    congestion_control:
        ``"cubic"``, ``"reno"``, ``"lia"``, ``"olia"``, ``"balia"`` or ``"wvegas"``.
    scheduler:
        ``"minrtt"`` (default), ``"roundrobin"`` or ``"redundant"``.
    default_path_index:
        Which of ``paths`` is the default (shortest) path; the paper's
        measurements use Path 2 as the default.
    total_bytes:
        Size of the transfer; ``None`` means a greedy, unbounded source.
    send_buffer_bytes:
        Optional connection-level send-buffer bound.
    join_delay:
        Delay in seconds between the start of the default subflow and the
        start of each additional subflow (MP_JOIN establishment).
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        paths: Union[PathSet, Sequence[Path], Sequence[Sequence[str]], None] = None,
        *,
        congestion_control: str = "lia",
        scheduler: Union[str, Scheduler] = "minrtt",
        path_manager: Optional[PathManager] = None,
        default_path_index: int = 0,
        mss: int = DEFAULT_MSS,
        ecn: bool = False,
        total_bytes: Optional[int] = None,
        send_buffer_bytes: Optional[int] = None,
        join_delay: float = 0.0,
        flow_id: Optional[int] = None,
    ) -> None:
        if src == dst:
            raise ConfigurationError("source and destination must differ")
        self.network = network
        self.src = src
        self.dst = dst
        self.mss = int(mss)
        self.ecn = bool(ecn)
        self.flow_id = flow_id if flow_id is not None else next(_flow_ids)
        self.congestion_control_name = congestion_control.lower()
        self.join_delay = float(join_delay)

        if path_manager is None:
            if paths is None:
                raise ConfigurationError("either paths or a path_manager is required")
            path_objects = self._coerce_paths(paths)
            path_manager = TagPathManager(path_objects, default_index=default_path_index)
        self.path_manager = path_manager

        self.scheduler: Scheduler = (
            scheduler if isinstance(scheduler, Scheduler) else make_scheduler(scheduler)
        )
        self.allocator = DsnAllocator(total_bytes, send_buffer_bytes)
        self.reassembler = DsnReassembler()
        self.coupling_group = CouplingGroup()

        self.subflows: List[Subflow] = self.path_manager.initial_subflows(network, src, dst)
        self._senders: Dict[int, Subflow] = {}
        self._build_transport()
        self._start_time: Optional[float] = None
        self._starved_subflows: set[int] = set()
        self._next_subflow_id = max(sf.subflow_id for sf in self.subflows) + 1
        #: Unacknowledged DSN ranges rescued from failed/closed subflows,
        #: handed out ahead of fresh allocations (MPTCP re-injection).
        self._reinject: Deque[Tuple[int, int]] = deque()
        #: FIFO of (stream end offset, callback) per queued sized transfer.
        self._transfer_watchers: Deque[Tuple[int, object]] = deque()
        network.add_dynamics_listener(self._on_network_event)
        # O(1) dispatch for the dominant configuration: with an unbounded
        # greedy source both stock work-conserving schedulers grant every
        # request straight from the allocator (data is never scarce), so the
        # per-segment scheduler indirection and starvation bookkeeping can be
        # skipped entirely.  Scheduler subclasses keep the full dispatch.
        self._fast_allocate = (
            type(self.scheduler) in (MinRttScheduler, RoundRobinScheduler)
            and total_bytes is None
            and send_buffer_bytes is None
        )

    # ------------------------------------------------------------------ build
    @staticmethod
    def _coerce_paths(paths) -> List[Path]:
        if isinstance(paths, PathSet):
            return list(paths)
        coerced: List[Path] = []
        for index, item in enumerate(paths):
            if isinstance(item, Path):
                coerced.append(item)
            else:
                coerced.append(Path(list(item), tag=index + 1, name=f"Path {index + 1}"))
        return coerced

    def _build_transport(self) -> None:
        for subflow in self.subflows:
            self._attach_transport(subflow)

    def _attach_transport(self, subflow: Subflow) -> None:
        """Create and register the sender/receiver/cc triple of one subflow."""
        src_host = self.network.host(self.src)
        dst_host = self.network.host(self.dst)
        cc = make_multipath_congestion_control(
            self.congestion_control_name, mss=self.mss, group=self.coupling_group
        )
        sender = TcpSender(
            src_host,
            self.dst,
            self.flow_id,
            subflow.subflow_id,
            cc=cc,
            data_provider=self,
            tag=subflow.tag,
            mss=self.mss,
            ecn=self.ecn,
        )
        receiver = TcpReceiver(
            dst_host,
            self.src,
            self.flow_id,
            subflow.subflow_id,
            tag=subflow.tag,
            connection_sink=self,
        )
        src_host.register_agent(self.flow_id, subflow.subflow_id, sender)
        dst_host.register_agent(self.flow_id, subflow.subflow_id, receiver)
        subflow.sender = sender
        subflow.receiver = receiver
        subflow.cc = cc
        self._senders[subflow.subflow_id] = subflow

    # ------------------------------------------------------------------ DataProvider protocol
    def request_data(self, sender: TcpSender, max_bytes: int) -> Optional[Tuple[int, int]]:
        """Called by a subflow sender with free window; delegates to the scheduler."""
        if sender.path_down:
            # A failed path gets no data: anything granted here (fresh or
            # re-injected) would be stranded behind the dead link.
            return None
        reinject = self._reinject
        if reinject:
            # Rescued ranges from a failed/closed subflow go out first, on
            # whichever sibling asks -- ahead of scheduler policy, exactly
            # like the Linux re-injection queue.
            dsn, length = reinject.popleft()
            if length > max_bytes:
                reinject.appendleft((dsn + max_bytes, length - max_bytes))
                return dsn, max_bytes
            return dsn, length
        if self._fast_allocate:
            # Unconstrained source: the grant is always the full request (the
            # exact outcome MinRtt/RoundRobin produce via the allocator), so
            # the subflow can never starve and no bookkeeping is needed.
            if max_bytes <= 0:
                return None
            allocator = self.allocator
            dsn = allocator.next_dsn
            allocator.next_dsn = dsn + max_bytes
            return dsn, max_bytes
        subflow = self._senders[sender.subflow_id]
        grant = self.scheduler.allocate(self, subflow, max_bytes)
        if grant is None:
            # Remember the refusal: a subflow with nothing in flight receives
            # no more ACKs, so it must be woken explicitly once data frees up.
            self._starved_subflows.add(subflow.subflow_id)
        else:
            self._starved_subflows.discard(subflow.subflow_id)
        return grant

    def on_data_acked(self, sender: TcpSender, dsn: int, length: int, now: float) -> None:
        """Subflow-level acknowledgement of a DSN range."""
        self._senders[sender.subflow_id].acked_bytes += length
        allocator = self.allocator
        allocator.acked_bytes += length
        if self._starved_subflows:
            self._wake_starved_subflows()
        if self._transfer_watchers:
            watchers = self._transfer_watchers
            while watchers and allocator.acked_bytes >= watchers[0][0]:
                _, callback = watchers.popleft()
                callback(now)

    def queue_transfer(self, size_bytes: int, on_complete=None) -> None:
        """Append a sized transfer to a bounded connection's byte stream.

        The multipath counterpart of
        :meth:`repro.tcp.connection.TransferQueueAdapter.enqueue`: the
        connection must have been created with ``total_bytes`` set (``0``
        for a pure request/response source), each call extends the stream by
        ``size_bytes`` and ``on_complete(now)`` fires once the transfer's
        last byte is acknowledged at connection level.  Subflows that went
        quiescent after draining the previous transfer are kicked awake.
        """
        if size_bytes <= 0:
            raise ConfigurationError("transfer size must be positive")
        allocator = self.allocator
        if allocator.total_bytes is None:
            raise ConfigurationError(
                "queue_transfer requires a bounded connection (total_bytes is None)"
            )
        allocator.total_bytes += size_bytes
        if on_complete is not None:
            self._transfer_watchers.append((allocator.total_bytes, on_complete))
        self._kick_active_subflows()

    def _wake_starved_subflows(self) -> None:
        """Let previously refused subflows ask the scheduler again."""
        if not self._starved_subflows:
            return
        waiting = [self._senders[sid] for sid in sorted(self._starved_subflows)]
        self._starved_subflows.clear()
        for subflow in waiting:
            if subflow.sender is not None:
                self.network.sim.schedule(0.0, subflow.sender.resume)

    # ------------------------------------------------------------------ ConnectionSink protocol
    def on_subflow_data(self, subflow_id: int, dsn: int, length: int, now: float) -> int:
        """Receiver-side delivery of a DSN range from one subflow."""
        return self.reassembler.deliver(dsn, length, now)

    # ------------------------------------------------------------------ subflow lifecycle
    def add_subflow(
        self,
        path: Union[Path, Sequence[str]],
        *,
        tag: Optional[int] = None,
        is_default: bool = False,
        start: bool = True,
    ) -> Subflow:
        """Open a new subflow on ``path`` at runtime (MP_JOIN mid-connection).

        Installs the path's tag forwarding state, attaches a fresh
        sender/receiver/congestion-control triple (registered with the
        connection's coupling group, whose membership caches invalidate on
        registration) and, with ``start=True``, begins transmitting on the
        next event-loop tick.
        """
        if not isinstance(path, Path):
            path = Path(list(path), tag=tag, name=f"Path {self._next_subflow_id + 1}")
        if tag is None:
            tag = path.tag if path.tag is not None else self._next_subflow_id + 1
        self.network.install_path(path.nodes, tag)
        subflow = Subflow(
            subflow_id=self._next_subflow_id, path=path, tag=tag, is_default=is_default
        )
        self._next_subflow_id += 1
        self._attach_transport(subflow)
        self.subflows.append(subflow)
        if start:
            sim = self.network.sim
            subflow.started_at = sim.now
            sim.schedule(0.0, subflow.sender.start)
        return subflow

    def close_subflow(self, subflow: Subflow, *, reinject: bool = True) -> None:
        """Remove ``subflow`` for good (runtime teardown).

        The sender stops transmitting and its retransmission timer is
        cancelled, both transport agents are unregistered from their hosts,
        the congestion controller leaves the coupling group (invalidating the
        per-type membership caches) and -- unless ``reinject=False`` -- the
        subflow's unacknowledged DSN ranges are re-injected so the sibling
        subflows deliver them.
        """
        if subflow.state == "closed":
            return
        sender = subflow.sender
        if reinject and sender is not None and subflow.state != "down":
            # A down subflow's ranges were already re-injected when its path
            # failed (the frozen sender's queue is unchanged since); a second
            # copy would waste failover-window capacity on duplicates.
            self._reinject.extend(sender.unacked_ranges())
        subflow.state = "closed"
        if sender is not None:
            sender.close()
        self.network.host(self.src).unregister_agent(self.flow_id, subflow.subflow_id)
        self.network.host(self.dst).unregister_agent(self.flow_id, subflow.subflow_id)
        if subflow.cc is not None:
            self.coupling_group.unregister(subflow.cc)
        self._starved_subflows.discard(subflow.subflow_id)
        if self._reinject:
            self._kick_active_subflows()

    def _kick_active_subflows(self) -> None:
        """Give every active, started subflow a chance to transmit soon."""
        sim = self.network.sim
        for subflow in self.subflows:
            if subflow.state == "active" and subflow.sender is not None and subflow.sender.started:
                sim.schedule(0.0, subflow.sender.resume)

    # ------------------------------------------------------------------ dynamics
    def _on_network_event(self, kind: str, a: str, b: str) -> None:
        """Network dynamics listener: track which subflow paths are usable."""
        if kind == "link_down":
            for subflow in list(self.subflows):
                if subflow.state == "active" and _path_uses_link(subflow.path, a, b):
                    self._handle_path_down(subflow)
        elif kind == "link_up":
            network = self.network
            for subflow in self.subflows:
                if (
                    subflow.state == "down"
                    and _path_uses_link(subflow.path, a, b)
                    and network.path_is_up(subflow.path.nodes)
                ):
                    self._handle_path_up(subflow)

    def _handle_path_down(self, subflow: Subflow) -> None:
        subflow.state = "down"
        sender = subflow.sender
        if sender is not None:
            sender.path_down = True
            # MPTCP re-injection: the ranges stranded on the dead path are
            # re-sent on the siblings so connection-level delivery continues.
            self._reinject.extend(sender.unacked_ranges())
        if subflow.cc is not None:
            # A dead path must not throttle the survivors: its stale
            # cwnd/RTT would otherwise keep dominating the coupled increase
            # terms.  Leaving the group invalidates the per-type membership
            # caches; the controller rejoins when the path heals.
            self.coupling_group.unregister(subflow.cc)
        replacement = self.path_manager.on_path_down(self, subflow)
        if replacement is not None:
            self.add_subflow(replacement)
        self._kick_active_subflows()

    def _handle_path_up(self, subflow: Subflow) -> None:
        subflow.state = "active"
        sender = subflow.sender
        if subflow.cc is not None:
            self.coupling_group.register(subflow.cc)
        if sender is not None:
            sender.path_down = False
            sender.on_path_restored()
            if sender.started:
                # A subflow that was idle when its path failed has no ACK
                # clock and nothing outstanding to retransmit: without an
                # explicit resume it would stay silent forever.
                self.network.sim.schedule(0.0, sender.resume)
        self.path_manager.on_path_up(self, subflow)

    # ------------------------------------------------------------------ control
    def start(self, at: float = 0.0) -> None:
        """Schedule the transfer: default subflow at ``at``, others after ``join_delay``."""
        self._start_time = at
        sim = self.network.sim
        extra_started = 0
        for subflow in self.subflows:
            if subflow.is_default:
                start_at = at
            else:
                extra_started += 1
                start_at = at + self.join_delay * extra_started
            subflow.started_at = start_at
            sim.schedule_at(start_at, subflow.sender.start)

    # ------------------------------------------------------------------ views
    @property
    def active_subflows(self) -> List[Subflow]:
        """The subflows currently able to carry data."""
        return [sf for sf in self.subflows if sf.state == "active"]

    def subflow_states(self) -> Dict[int, str]:
        """Lifecycle state per subflow id (``active`` / ``down`` / ``closed``)."""
        return {sf.subflow_id: sf.state for sf in self.subflows}

    @property
    def default_subflow(self) -> Subflow:
        for subflow in self.subflows:
            if subflow.is_default:
                return subflow
        return self.subflows[0]

    def subflow_by_tag(self, tag: int) -> Subflow:
        for subflow in self.subflows:
            if subflow.tag == tag:
                return subflow
        raise ConfigurationError(f"no subflow with tag {tag}")

    @property
    def bytes_delivered(self) -> int:
        """Connection-level bytes delivered in order at the receiver."""
        return self.reassembler.delivered_bytes

    @property
    def bytes_acked(self) -> int:
        """Connection-level bytes acknowledged at subflow level."""
        return self.allocator.acked_bytes

    def total_throughput_mbps(self, duration: Optional[float] = None) -> float:
        """Mean connection goodput in Mbps over ``duration`` (default: elapsed)."""
        start = self._start_time or 0.0
        if duration is None:
            duration = max(self.network.sim.now - start, 1e-9)
        return throughput_mbps(self.bytes_delivered, duration)

    def subflow_throughputs_mbps(self, duration: Optional[float] = None) -> Dict[int, float]:
        """Mean per-subflow goodput in Mbps keyed by subflow id."""
        now = self.network.sim.now
        result: Dict[int, float] = {}
        for subflow in self.subflows:
            if duration is not None:
                result[subflow.subflow_id] = throughput_mbps(subflow.acked_bytes, duration)
            else:
                result[subflow.subflow_id] = subflow.mean_throughput_mbps(now)
        return result

    def total_retransmissions(self) -> int:
        return sum(sf.retransmissions for sf in self.subflows)

    def summary(self) -> Dict[str, object]:
        """A dictionary summarising the connection state (for reports/tests)."""
        now = self.network.sim.now
        return {
            "flow_id": self.flow_id,
            "congestion_control": self.congestion_control_name,
            "scheduler": self.scheduler.name,
            "subflows": len(self.subflows),
            "bytes_delivered": self.bytes_delivered,
            "bytes_acked": self.bytes_acked,
            "retransmissions": self.total_retransmissions(),
            "total_throughput_mbps": self.total_throughput_mbps(),
            "per_subflow_mbps": {
                sf.name: round(sf.mean_throughput_mbps(now), 3) for sf in self.subflows
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MptcpConnection({self.src}->{self.dst}, cc={self.congestion_control_name}, "
            f"subflows={len(self.subflows)}, scheduler={self.scheduler.name})"
        )
