"""Uncoupled per-subflow congestion control.

This is the configuration the paper calls "CUBIC (the default in Linux)":
every MPTCP subflow runs an ordinary single-path congestion controller and
there is *no interaction between the individual TCP congestion control
actions* (Section 3 of the paper).  The classes below simply reuse the
single-path algorithms while still registering with the coupling group so
that connection-level statistics and the other subflows can observe them.
"""

from __future__ import annotations

from typing import Optional

from ...tcp.cc.cubic import CubicCongestionControl
from ...tcp.cc.reno import RenoCongestionControl
from .base import CouplingGroup


class UncoupledCubic(CubicCongestionControl):
    """Per-subflow CUBIC with no coupling (the paper's default setup)."""

    name = "cubic"

    __slots__ = ("group",)

    def __init__(self, *args, group: Optional[CouplingGroup] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group = group if group is not None else CouplingGroup()
        self.group.register(self)  # type: ignore[arg-type]

    def rtt_or_default(self, default: float = 0.01) -> float:
        return self.srtt if self.srtt and self.srtt > 0 else default


class UncoupledReno(RenoCongestionControl):
    """Per-subflow Reno with no coupling."""

    name = "reno"

    __slots__ = ("group",)

    def __init__(self, *args, group: Optional[CouplingGroup] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group = group if group is not None else CouplingGroup()
        self.group.register(self)  # type: ignore[arg-type]

    def rtt_or_default(self, default: float = 0.01) -> float:
        return self.srtt if self.srtt and self.srtt > 0 else default
