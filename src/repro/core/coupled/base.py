"""Coupling infrastructure shared by multipath congestion-control algorithms.

Coupled algorithms (LIA, OLIA, BALIA, wVegas) adapt each subflow's
congestion-avoidance increase using the state of *all* subflows of the MPTCP
connection.  A :class:`CouplingGroup` is created per connection and every
per-subflow congestion-control instance registers with it, mirroring how the
Linux MPTCP implementation walks ``mptcp_for_each_sk`` inside the coupled
``cong_avoid`` handlers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...tcp.cc.base import CongestionControl


class CouplingGroup:
    """Shared state of the subflow congestion controllers of one connection."""

    def __init__(self) -> None:
        self._members: List["CoupledCongestionControl"] = []
        # type -> members of that type, in registration order.  The coupled
        # algorithms filter the group by their own class on every ACK; the
        # membership only changes on register/unregister, so the filtered
        # lists are cached here and invalidated on mutation.
        self._typed_cache: dict = {}

    # ------------------------------------------------------------------
    def register(self, member: "CoupledCongestionControl") -> None:
        if member not in self._members:
            self._members.append(member)
            self._typed_cache.clear()

    def unregister(self, member: "CoupledCongestionControl") -> None:
        if member in self._members:
            self._members.remove(member)
            self._typed_cache.clear()

    def members_of(self, cls: type) -> List["CoupledCongestionControl"]:
        """The registered members that are instances of ``cls`` (cached).

        Read-only by convention, like :attr:`members_view`.
        """
        cached = self._typed_cache.get(cls)
        if cached is None:
            cached = [m for m in self._members if isinstance(m, cls)]
            self._typed_cache[cls] = cached
        return cached

    @property
    def members(self) -> List["CoupledCongestionControl"]:
        """A defensive copy of the registered members."""
        return list(self._members)

    @property
    def members_view(self) -> List["CoupledCongestionControl"]:
        """The live member list, NOT copied — read-only by convention.

        The coupled algorithms iterate this on every ACK; mutating it
        corrupts the group (use register/unregister instead).
        """
        return self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterable["CoupledCongestionControl"]:
        return iter(self._members)

    # ------------------------------------------------------------------ views
    def total_cwnd(self) -> float:
        """Sum of the member congestion windows, in segments."""
        return sum(m.cwnd for m in self._members)

    def total_cwnd_bytes(self) -> float:
        return sum(m.cwnd_bytes for m in self._members)

    def total_rate(self) -> float:
        """Sum of cwnd/RTT across members (segments per second)."""
        return sum(m.cwnd / m.rtt_or_default() for m in self._members)

    def max_cwnd(self) -> float:
        return max((m.cwnd for m in self._members), default=0.0)

    def best_rate_member(self) -> Optional["CoupledCongestionControl"]:
        """Member with the largest cwnd/RTT² term (the LIA numerator)."""
        best = None
        best_value = -1.0
        for member in self._members:
            value = member.cwnd / (member.rtt_or_default() ** 2)
            if value > best_value:
                best_value = value
                best = member
        return best


class CoupledCongestionControl(CongestionControl):
    """Base class for algorithms that need a view of their sibling subflows."""

    name = "coupled-base"

    __slots__ = ("group",)

    def __init__(self, *args, group: Optional[CouplingGroup] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group = group if group is not None else CouplingGroup()
        self.group.register(self)

    # ------------------------------------------------------------------
    def rtt_or_default(self, default: float = 0.01) -> float:
        """Smoothed RTT of this subflow, falling back to ``default`` seconds."""
        return self.srtt if self.srtt and self.srtt > 0 else default

    def _congestion_avoidance(self, acked_segments: float, srtt: float, now: float) -> None:
        raise NotImplementedError
