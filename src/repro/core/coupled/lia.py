"""LIA -- the Linked Increases Algorithm (RFC 6356, Wischik et al. NSDI'11).

LIA couples the congestion-avoidance increase of the subflows so that the
aggregate is no more aggressive than a single TCP flow on the best path.
For each ACK of ``acked`` segments on subflow *i* the window grows by::

    min( alpha * acked / cwnd_total ,  acked / cwnd_i )

with::

    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / ( sum_i cwnd_i / rtt_i )^2

The decrease on loss is the standard halving.  The paper finds that "the more
stable LIA never could reach the optimum" total throughput on the overlapping
paths topology; the coupled (and capped) increase is exactly why.
"""

from __future__ import annotations

from .base import CoupledCongestionControl


class LiaCongestionControl(CoupledCongestionControl):
    """RFC 6356 coupled congestion control."""

    name = "lia"

    __slots__ = ()

    def alpha(self) -> float:
        """The LIA aggressiveness factor computed over all subflows."""
        members = self.group.members_view
        total_cwnd = sum(m.cwnd for m in members)
        if total_cwnd <= 0:
            return 1.0
        denominator = sum(m.cwnd / m.rtt_or_default() for m in members) ** 2
        if denominator <= 0:
            return 1.0
        numerator = max(m.cwnd / (m.rtt_or_default() ** 2) for m in members)
        return total_cwnd * numerator / denominator

    def _congestion_avoidance(self, acked_segments: float, srtt: float, now: float) -> None:
        # Fused per-ACK pass: the shared aggregates (total cwnd, sum of
        # cwnd/rtt, max cwnd/rtt^2) are computed in ONE walk over the group
        # instead of the four separate walks total_cwnd() + alpha() used to
        # make.  Accumulation order and per-member expressions are unchanged,
        # so every float is bit-identical to the multi-pass result.
        members = self.group.members_view
        total_cwnd = 0
        rate_sum = 0
        numerator = None
        for m in members:
            member_cwnd = m.cwnd
            total_cwnd = total_cwnd + member_cwnd
            rtt = m.rtt_or_default()
            rate_sum = rate_sum + member_cwnd / rtt
            term = member_cwnd / (rtt ** 2)
            if numerator is None or term > numerator:
                numerator = term
        cwnd = self.cwnd
        if total_cwnd <= 0 or cwnd <= 0:
            self.cwnd = max(cwnd, 1.0)
            return
        denominator = rate_sum ** 2
        if denominator <= 0:
            alpha = 1.0
        else:
            alpha = total_cwnd * numerator / denominator
        coupled_increase = alpha * acked_segments / total_cwnd
        uncoupled_increase = acked_segments / cwnd
        self.cwnd = cwnd + min(coupled_increase, uncoupled_increase)
