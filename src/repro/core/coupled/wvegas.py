"""wVegas -- weighted Vegas, a delay-based multipath congestion control.

Included as an *extension*: unlike the loss-based algorithms the paper
measures, wVegas (Cao, Xu, Fu; ICNP 2012) reacts to queueing delay and shifts
traffic away from paths whose RTT grows, which on the overlapping-path
topology gives a qualitatively different search dynamic for the optimum.

Each subflow keeps the classic Vegas ``diff`` -- the number of segments
queued in the network, estimated as ``cwnd * (1 - baseRTT / RTT)`` -- and
compares it against its share ``alpha_r`` of a total backlog target.  The
share is proportional to the subflow's achieved rate, which is how wVegas
couples the paths.
"""

from __future__ import annotations

from .base import CoupledCongestionControl


class WVegasCongestionControl(CoupledCongestionControl):
    """Weighted Vegas delay-based multipath congestion control."""

    name = "wvegas"

    __slots__ = ("base_rtt",)

    #: Total backlog target across the connection, in segments.
    TOTAL_ALPHA = 10.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.base_rtt: float | None = None

    # ------------------------------------------------------------------
    def _weight(self) -> float:
        """This subflow's share of the backlog target (rate-proportional)."""
        # Cached type-filtered member list + one fused accumulation pass per
        # ACK (bit-identical to the historical list-comp + sum()).
        members = self.group.members_of(WVegasCongestionControl)
        total_rate = 0
        for m in members:
            total_rate = total_rate + m.cwnd / m.rtt_or_default()
        if total_rate <= 0:
            return 1.0 / max(len(members), 1)
        return (self.cwnd / self.rtt_or_default()) / total_rate

    def _congestion_avoidance(self, acked_segments: float, srtt: float, now: float) -> None:
        rtt = max(srtt, 1e-4)
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt
        queued_segments = self.cwnd * (1.0 - self.base_rtt / rtt)
        target = self.TOTAL_ALPHA * self._weight()
        if queued_segments < target:
            self.cwnd += acked_segments / self.cwnd
        elif queued_segments > target + 1.0:
            self.cwnd = max(1.0, self.cwnd - acked_segments / self.cwnd)
        # Otherwise the backlog is on target: hold the window.

    def _loss_decrease(self, now: float) -> None:
        # Delay-based, but it must still back off on real loss.  Clamp to one
        # segment like the congestion-avoidance decrease: repeated losses must
        # never drive the window below the minimum sending unit.
        self.cwnd = max(1.0, self.cwnd / 2.0)
