"""Multipath wrappers for the signal-driven controller families.

SFC and telehaptic are per-subflow controllers (their state is the path's
own signal history, not a coupled aggregate), so like
:mod:`repro.core.coupled.uncoupled` they reuse the single-path
implementations and only register with the coupling group so that
connection-level statistics and the sibling subflows can observe them.
"""

from __future__ import annotations

from typing import Optional

from ...tcp.cc.sfc import SfcCongestionControl
from ...tcp.cc.telehaptic import TelehapticCongestionControl
from .base import CouplingGroup


class MultipathSfc(SfcCongestionControl):
    """Per-subflow SFC pushback pacing on an MPTCP connection."""

    name = "sfc"

    __slots__ = ("group",)

    def __init__(self, *args, group: Optional[CouplingGroup] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group = group if group is not None else CouplingGroup()
        self.group.register(self)  # type: ignore[arg-type]

    def rtt_or_default(self, default: float = 0.01) -> float:
        return self.srtt if self.srtt and self.srtt > 0 else default


class MultipathTelehaptic(TelehapticCongestionControl):
    """Per-subflow telehaptic delay-gradient control on an MPTCP connection."""

    name = "telehaptic"

    __slots__ = ("group",)

    def __init__(self, *args, group: Optional[CouplingGroup] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group = group if group is not None else CouplingGroup()
        self.group.register(self)  # type: ignore[arg-type]

    def rtt_or_default(self, default: float = 0.01) -> float:
        return self.srtt if self.srtt and self.srtt > 0 else default
