"""BALIA -- Balanced Linked Adaptation (Peng, Walid, Hwang, Low; ToN 2016).

BALIA is a later coupled algorithm designed to balance TCP-friendliness,
responsiveness and window oscillation; it is included as an *extension*
beyond the three algorithms measured in the paper so that the benchmark
harness can compare a fourth design point on the overlapping-path topology.

Per ACK on path *r* (rates ``x_p = cwnd_p / rtt_p``)::

    cwnd_r += ( x_r / rtt_r ) / ( sum_p x_p )^2 * (1 + alpha_r)/2 * (4 + alpha_r)/5 * acked

with ``alpha_r = max_p(x_p) / x_r``.  On loss::

    cwnd_r -= cwnd_r / 2 * min(alpha_r, 1.5)
"""

from __future__ import annotations

from .base import CoupledCongestionControl


class BaliaCongestionControl(CoupledCongestionControl):
    """Balanced Linked Adaptation multipath congestion control."""

    name = "balia"

    __slots__ = ()

    def _rate(self) -> float:
        return self.cwnd / self.rtt_or_default()

    def _alpha(self) -> float:
        rates = [m.cwnd / m.rtt_or_default() for m in self.group.members_view]
        own = self._rate()
        if own <= 0 or not rates:
            return 1.0
        return max(rates) / own

    def _congestion_avoidance(self, acked_segments: float, srtt: float, now: float) -> None:
        # Fused per-ACK pass: total and maximum member rate in one walk
        # instead of the two sum/max walks of _alpha() + the CA sum; the
        # per-member expression and accumulation order are unchanged, so the
        # result is bit-identical.
        members = self.group.members_view
        total_rate = 0
        max_rate = None
        for m in members:
            rate = m.cwnd / m.rtt_or_default()
            total_rate = total_rate + rate
            if max_rate is None or rate > max_rate:
                max_rate = rate
        cwnd = self.cwnd
        if total_rate <= 0 or cwnd <= 0:
            self.cwnd = max(cwnd, 1.0)
            return
        rtt = self.rtt_or_default()
        own = cwnd / rtt
        alpha = 1.0 if own <= 0 else max_rate / own
        increase = (
            (cwnd / rtt / rtt)
            / (total_rate ** 2)
            * ((1.0 + alpha) / 2.0)
            * ((4.0 + alpha) / 5.0)
            * acked_segments
        )
        self.cwnd = cwnd + increase

    def _loss_decrease(self, now: float) -> None:
        alpha = min(self._alpha(), 1.5)
        self.cwnd = self.cwnd - (self.cwnd / 2.0) * alpha
