"""Multipath congestion-control algorithms and the per-connection factory.

The paper measures three algorithms: uncoupled CUBIC (the Linux default),
LIA and OLIA.  BALIA and wVegas are provided as extensions.  Use
:func:`make_multipath_congestion_control` to build per-subflow instances that
share one :class:`CouplingGroup` per MPTCP connection.
"""

from __future__ import annotations

from typing import Optional

from ...errors import ConfigurationError
from ...tcp.cc.base import CongestionControl
from .balia import BaliaCongestionControl
from .base import CoupledCongestionControl, CouplingGroup
from .lia import LiaCongestionControl
from .olia import OliaCongestionControl
from .signal import MultipathSfc, MultipathTelehaptic
from .uncoupled import UncoupledCubic, UncoupledReno
from .wvegas import WVegasCongestionControl

#: Algorithms the paper measures plus the extensions, keyed by the names used
#: throughout the experiment configurations.
MULTIPATH_ALGORITHMS = {
    "cubic": UncoupledCubic,
    "reno": UncoupledReno,
    "lia": LiaCongestionControl,
    "olia": OliaCongestionControl,
    "balia": BaliaCongestionControl,
    "wvegas": WVegasCongestionControl,
    "sfc": MultipathSfc,
    "telehaptic": MultipathTelehaptic,
}

#: The three algorithms evaluated in the paper's measurements.
PAPER_ALGORITHMS = ("cubic", "lia", "olia")


def make_multipath_congestion_control(
    name: str,
    *,
    mss: int,
    group: Optional[CouplingGroup] = None,
    **kwargs,
) -> CongestionControl:
    """Create one per-subflow congestion controller registered with ``group``."""
    try:
        cls = MULTIPATH_ALGORITHMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown multipath congestion control {name!r}; "
            f"choose from {sorted(MULTIPATH_ALGORITHMS)}"
        ) from None
    return cls(mss=mss, group=group, **kwargs)


__all__ = [
    "BaliaCongestionControl",
    "CoupledCongestionControl",
    "CouplingGroup",
    "LiaCongestionControl",
    "MULTIPATH_ALGORITHMS",
    "MultipathSfc",
    "MultipathTelehaptic",
    "OliaCongestionControl",
    "PAPER_ALGORITHMS",
    "UncoupledCubic",
    "UncoupledReno",
    "WVegasCongestionControl",
    "make_multipath_congestion_control",
]
