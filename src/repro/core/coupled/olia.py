"""OLIA -- the Opportunistic Linked Increases Algorithm (Khalili et al. 2013).

OLIA was designed to fix LIA's non-Pareto-optimality.  For each ACK on path
*r* the window grows by::

    ( (cwnd_r / rtt_r^2) / (sum_p cwnd_p / rtt_p)^2  +  alpha_r / cwnd_r ) * acked

The first term is the optimal coupled increase; the ``alpha_r`` term shifts
traffic towards "best" paths that currently have small windows:

* ``collected`` paths: best paths (largest ``l_r^2 / rtt_r``) that do *not*
  have the largest window -> ``alpha_r = +1 / (n * |collected|)``
* paths with the largest window, when collected paths exist ->
  ``alpha_r = -1 / (n * |max-window paths|)``
* all other paths -> ``alpha_r = 0``

``l_r`` is the number of bytes acknowledged between the last two losses (or
since the last loss, whichever is larger), i.e. an estimate of the path's
achievable rate.  Loss response is the standard halving.

The paper observes that OLIA "was able to reach the optimum in many
measurements, but only if Path 2 was the default shortest path" and that it
had the slowest convergence -- behaviour that emerges from the small
``1/(n |collected|)`` rebalancing steps.
"""

from __future__ import annotations

from typing import List

from .base import CoupledCongestionControl


class OliaCongestionControl(CoupledCongestionControl):
    """Opportunistic Linked Increases Algorithm."""

    name = "olia"

    __slots__ = ("_bytes_since_loss", "_bytes_between_losses")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Bytes acknowledged since the last loss (l1) and between the two
        # previous losses (l2); OLIA's rate proxy is max(l1, l2).
        self._bytes_since_loss = 0.0
        self._bytes_between_losses = 0.0

    # ------------------------------------------------------------------ rate proxy
    @property
    def loss_interval_bytes(self) -> float:
        """OLIA's ``l_r``: the larger of the last two inter-loss byte counts."""
        return max(self._bytes_since_loss, self._bytes_between_losses, float(self.mss))

    def _rate_estimate(self) -> float:
        """``l_r^2 / rtt_r`` -- the quality metric used to pick best paths."""
        return (self.loss_interval_bytes ** 2) / self.rtt_or_default()

    # ------------------------------------------------------------------ alpha
    def _alpha(self) -> float:
        # Per-ACK fused pass over the (cached) OLIA members: qualities, the
        # best quality and the largest window are collected in one walk, and
        # the collected/max-window *sets* are reduced to counts plus
        # self-membership flags -- the only facts the formula needs.  Every
        # comparison and division matches the historical list-building
        # implementation bit for bit.
        members: List[OliaCongestionControl] = self.group.members_of(OliaCongestionControl)
        n = len(members)
        if n <= 1:
            return 0.0
        epsilon = 1e-9
        # One rate estimate per member per ACK; the quality metric is
        # deterministic at a given instant, so reusing it is exact.
        qualities = []
        append_quality = qualities.append
        best_quality = None
        max_cwnd = None
        for m in members:
            quality = m._rate_estimate()
            append_quality(quality)
            if best_quality is None or quality > best_quality:
                best_quality = quality
            member_cwnd = m.cwnd
            if max_cwnd is None or member_cwnd > max_cwnd:
                max_cwnd = member_cwnd
        cwnd_threshold = max_cwnd - epsilon
        quality_threshold = best_quality - epsilon
        max_window_count = 0
        collected_count = 0
        self_in_max_window = False
        self_in_collected = False
        for m, quality in zip(members, qualities):
            if m.cwnd >= cwnd_threshold:
                max_window_count += 1
                if m is self:
                    self_in_max_window = True
            elif quality >= quality_threshold:
                collected_count += 1
                if m is self:
                    self_in_collected = True
        if collected_count == 0:
            return 0.0
        if self_in_collected:
            return 1.0 / (n * collected_count)
        if self_in_max_window:
            return -1.0 / (n * max_window_count)
        return 0.0

    # ------------------------------------------------------------------ events
    def _congestion_avoidance(self, acked_segments: float, srtt: float, now: float) -> None:
        self._bytes_since_loss += acked_segments * self.mss
        members = self.group.members_view
        rate_sum = 0
        for m in members:
            rate_sum = rate_sum + m.cwnd / m.rtt_or_default()
        cwnd = self.cwnd
        if rate_sum <= 0 or cwnd <= 0:
            self.cwnd = max(cwnd, 1.0)
            return
        rtt = self.rtt_or_default()
        coupled_term = (cwnd / (rtt ** 2)) / (rate_sum ** 2)
        alpha_term = self._alpha() / cwnd
        increase = (coupled_term + alpha_term) * acked_segments
        # The window never shrinks during congestion avoidance faster than the
        # negative alpha term allows, and never below one segment.
        self.cwnd = max(1.0, cwnd + increase)

    def on_ack(self, acked_bytes: int, srtt: float, now: float) -> None:
        if self.in_slow_start and acked_bytes > 0:
            self._bytes_since_loss += acked_bytes
        super().on_ack(acked_bytes, srtt, now)

    def _loss_decrease(self, now: float) -> None:
        self._bytes_between_losses = self._bytes_since_loss
        self._bytes_since_loss = 0.0
        super()._loss_decrease(now)

    def _after_timeout(self, now: float) -> None:
        self._bytes_between_losses = self._bytes_since_loss
        self._bytes_since_loss = 0.0
