"""MPTCP data schedulers.

The scheduler decides which subflow carries the next chunk of application
data.  The paper uses "the default MPTCP scheduler" -- lowest-RTT-first --
which is implemented by :class:`MinRttScheduler`.  With a greedy bulk source
and an unlimited send buffer every subflow is congestion-window limited and
the scheduler has little influence; once the connection-level send buffer is
bounded the choice starts to matter, which is what the scheduler ablation
benchmark explores.

Schedulers operate in a *pull* model: a subflow with free congestion window
asks the connection for data and the scheduler either grants a DSN range or
refuses (because another subflow should send it first).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .connection import MptcpConnection
    from .subflow import Subflow


class Scheduler(ABC):
    """Decides which subflow may transmit the next connection-level bytes."""

    name = "base"

    @abstractmethod
    def allocate(
        self, connection: "MptcpConnection", subflow: "Subflow", max_bytes: int
    ) -> Optional[Tuple[int, int]]:
        """Grant a ``(dsn, length)`` range to ``subflow`` or return None."""


def _is_unconstrained(allocator) -> bool:
    """True when data is never scarce (greedy source, unlimited send buffer)."""
    return allocator.send_buffer_bytes is None and allocator.total_bytes is None


def _subflow_can_send(subflow) -> bool:
    """True when the subflow is established and has window space for a segment."""
    if subflow.state != "active":
        return False
    sender = subflow.sender
    return (
        sender is not None
        and sender.started
        and sender.flight_size + sender.mss <= sender.effective_window
    )


class MinRttScheduler(Scheduler):
    """Lowest-SRTT-first scheduler (the Linux MPTCP default).

    When the send buffer is unconstrained every requesting subflow is served.
    When data is scarce (bounded send buffer or finite transfer) only the
    subflow with the smallest smoothed RTT among those that can currently
    send is granted data.
    """

    name = "minrtt"

    def allocate(self, connection, subflow, max_bytes):
        allocator = connection.allocator
        if allocator.send_buffer_bytes is None and allocator.total_bytes is None:
            return allocator.allocate(max_bytes)
        # Data is scarce: give it to the fastest path that has window space.
        # Single pass, no candidate list: ties keep the earliest subflow,
        # exactly like min() over the filtered list did.  Down/closed
        # subflows never win the turn (they could not use it, and granting
        # them would starve the live paths).
        best = None
        best_srtt = 0.0
        for sf in connection.subflows:
            sender = sf.sender
            if sender is None or sf.state != "active":
                continue
            cc = sender.cc
            if sender.snd_nxt - sender.snd_una + sender.mss > cc.cwnd * cc.mss:
                continue
            srtt = sender.rtt.srtt
            if srtt is None:
                srtt = float("inf")
            if best is None or srtt < best_srtt:
                best = sf
                best_srtt = srtt
        if best is None:
            return allocator.allocate(max_bytes)
        if best is not subflow:
            return None
        return allocator.allocate(max_bytes)


class RoundRobinScheduler(Scheduler):
    """Rotation across subflows when data is scarce.

    The rotation skips subflows that cannot currently send (window-limited or
    not yet established): a stalled subflow at the head of the rotation must
    not block every other subflow until it recovers (head-of-line stall).  It
    regains its turn as soon as it has window space again.
    """

    name = "roundrobin"

    def __init__(self) -> None:
        self._next_index = 0

    def allocate(self, connection, subflow, max_bytes):
        allocator = connection.allocator
        if _is_unconstrained(allocator):
            return allocator.allocate(max_bytes)
        subflows = connection.subflows
        if not subflows:
            return None
        count = len(subflows)
        # The turn belongs to the first subflow in rotation order that is able
        # to send.  The requester itself is always eligible: it asked because
        # it has free window.
        offset = 0
        chosen = None
        for offset in range(count):
            candidate = subflows[(self._next_index + offset) % count]
            if candidate is subflow or _subflow_can_send(candidate):
                chosen = candidate
                break
        if chosen is not subflow:
            return None
        grant = allocator.allocate(max_bytes)
        if grant is not None:
            self._next_index = (self._next_index + offset + 1) % count
        return grant


class RedundantScheduler(Scheduler):
    """Send every byte on every subflow (latency-oriented redundancy).

    Each subflow keeps its own cursor into the connection byte stream, so the
    same DSN range is (re)transmitted on all paths; the connection-level
    reassembler discards the duplicates.  Useful as an ablation: it wastes
    capacity on the overlapping-path topology by construction.
    """

    name = "redundant"

    def __init__(self) -> None:
        self._cursors: Dict[int, int] = {}

    def allocate(self, connection, subflow, max_bytes):
        allocator = connection.allocator
        cursor = self._cursors.get(subflow.subflow_id, 0)
        frontier = allocator.next_dsn
        if cursor < frontier:
            # Duplicate data already allocated to the stream on this subflow.
            length = min(max_bytes, frontier - cursor)
            self._cursors[subflow.subflow_id] = cursor + length
            return cursor, length
        grant = allocator.allocate(max_bytes)
        if grant is None:
            return None
        dsn, length = grant
        self._cursors[subflow.subflow_id] = dsn + length
        return dsn, length


_SCHEDULERS = {
    "minrtt": MinRttScheduler,
    "lowest-rtt": MinRttScheduler,
    "default": MinRttScheduler,
    "roundrobin": RoundRobinScheduler,
    "redundant": RedundantScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name (``minrtt``, ``roundrobin``, ``redundant``)."""
    try:
        cls = _SCHEDULERS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; choose from {sorted(set(_SCHEDULERS))}"
        ) from None
    return cls()
