"""Backend-agnostic workload specifications.

A :class:`WorkloadSpec` describes a *population* of users as a seeded,
deterministic generator: heavy-tailed transfer sizes, open-loop arrivals
(Poisson or lognormal inter-arrival times) and HTTP-like request/response
sessions with think times, idle timeouts and connection reuse.

The spec itself knows nothing about simulation backends.  :meth:`WorkloadSpec.compile`
expands it -- with a single :class:`random.Random` stream in a fixed draw
order -- into a :class:`WorkloadPlan`: plain data (sessions of sized
transfers with explicit dependency edges) that both fidelities lower from:

* the packet backend drives each session's transfers over a real TCP/MPTCP
  connection (:mod:`repro.workload.packet`);
* the flow-level backend lowers each transfer to a
  :class:`~repro.flowsim.engine.FlowDescriptor`, adding dependent transfers
  when their parent completes (:mod:`repro.workload.flowlevel`).

Because both backends consume the *same* compiled plan, the flow population
(sizes, arrival times, dependency structure) is identical across backends by
construction -- :meth:`WorkloadPlan.signature` pins that in tests.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..errors import ConfigurationError

SIZE_KINDS = ("pareto", "lognormal", "fixed")
ARRIVAL_KINDS = ("poisson", "lognormal")


@dataclass(frozen=True)
class SizeDistribution:
    """A transfer-size distribution with a configurable mean.

    ``pareto`` is the heavy-tailed default (most transfers are mice, most
    bytes live in elephants); ``lognormal`` gives a milder tail; ``fixed``
    always returns ``mean_bytes``.  The scale parameters are solved so the
    requested mean holds exactly.
    """

    kind: str = "pareto"
    mean_bytes: float = 2_000_000.0
    #: Pareto tail index; must exceed 1 for the mean to exist.
    alpha: float = 1.5
    #: Lognormal shape (sigma of the underlying normal).
    sigma: float = 1.0
    min_bytes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in SIZE_KINDS:
            raise ConfigurationError(
                f"unknown size distribution {self.kind!r}; choose from {SIZE_KINDS}"
            )
        if self.mean_bytes <= 0:
            raise ConfigurationError("mean transfer size must be positive")
        if self.kind == "pareto" and self.alpha <= 1.0:
            raise ConfigurationError("pareto alpha must exceed 1 for a finite mean")
        if self.kind == "lognormal" and self.sigma <= 0:
            raise ConfigurationError("lognormal sigma must be positive")
        if self.min_bytes < 1:
            raise ConfigurationError("min_bytes must be at least 1")

    def sample(self, rng: random.Random) -> int:
        """Draw one transfer size in bytes (always >= ``min_bytes``)."""
        if self.kind == "fixed":
            return max(self.min_bytes, int(self.mean_bytes))
        if self.kind == "pareto":
            scale = self.mean_bytes * (self.alpha - 1.0) / self.alpha
            return max(self.min_bytes, int(scale * rng.paretovariate(self.alpha)))
        # lognormal: mean = exp(mu + sigma^2 / 2)  =>  solve mu for the mean.
        import math

        mu = math.log(self.mean_bytes) - 0.5 * self.sigma * self.sigma
        return max(self.min_bytes, int(rng.lognormvariate(mu, self.sigma)))


@dataclass(frozen=True)
class ArrivalProcess:
    """Open-loop session inter-arrival process (mean gap ``1 / rate_per_s``)."""

    kind: str = "poisson"
    rate_per_s: float = 100.0
    #: Lognormal shape (ignored for poisson).
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival process {self.kind!r}; choose from {ARRIVAL_KINDS}"
            )
        if self.rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.kind == "lognormal" and self.sigma <= 0:
            raise ConfigurationError("lognormal sigma must be positive")

    def next_gap(self, rng: random.Random) -> float:
        """Draw the gap to the next session arrival, in seconds."""
        if self.kind == "poisson":
            return rng.expovariate(self.rate_per_s)
        import math

        mu = math.log(1.0 / self.rate_per_s) - 0.5 * self.sigma * self.sigma
        return rng.lognormvariate(mu, self.sigma)


@dataclass(frozen=True)
class RequestResponseSpec:
    """One user session: a sequence of request/response pages.

    Each page is one main response transfer, optionally followed by
    ``subresources`` parallel transfers that start when the main response
    completes (the page-load pattern).  Consecutive pages are separated by
    an exponential think time; a think gap exceeding ``idle_timeout_s``
    closes the (reused) connection, so the next request pays a fresh start.
    """

    requests_per_session: int = 1
    response_size: SizeDistribution = field(default_factory=SizeDistribution)
    #: Mean of the exponential think time between consecutive pages.
    think_time_s: float = 0.0
    #: Parallel transfers fetched after each page's main response.
    subresources: int = 0
    subresource_size: Optional[SizeDistribution] = None
    #: A think gap longer than this closes the idle connection.
    idle_timeout_s: Optional[float] = None
    #: Reuse one connection for all requests of a session (packet backend);
    #: when False every page opens a fresh connection.
    reuse_connection: bool = True

    def __post_init__(self) -> None:
        if self.requests_per_session < 1:
            raise ConfigurationError("a session needs at least one request")
        if self.think_time_s < 0:
            raise ConfigurationError("think time must be non-negative")
        if self.subresources < 0:
            raise ConfigurationError("subresources must be non-negative")
        if self.subresources and self.subresource_size is None:
            raise ConfigurationError("subresources need a subresource_size distribution")
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ConfigurationError("idle timeout must be positive")


# ------------------------------------------------------------------- the plan
@dataclass(frozen=True)
class TransferPlan:
    """One sized transfer inside a session.

    ``after`` is the index of the transfer this one depends on (``-1`` means
    the session start); the transfer begins ``delay`` seconds after its
    dependency completes (think time, 0 for subresources).
    """

    index: int
    size_bytes: int
    after: int = -1
    delay: float = 0.0
    #: Page (request) number inside the session, for page-load-time grouping.
    page: int = 0
    #: The think gap exceeded the idle timeout (or reuse is off): the packet
    #: backend opens a fresh connection for this transfer.
    new_connection: bool = False


@dataclass(frozen=True)
class SessionPlan:
    """One user session: an arrival time, a path choice and its transfers."""

    name: str
    index: int
    start: float
    path_index: int
    transfers: Tuple[TransferPlan, ...]

    @property
    def total_bytes(self) -> int:
        return sum(t.size_bytes for t in self.transfers)


@dataclass(frozen=True)
class WorkloadPlan:
    """The fully expanded, backend-agnostic flow population."""

    name: str
    seed: int
    sessions: Tuple[SessionPlan, ...]

    @property
    def total_transfers(self) -> int:
        return sum(len(s.transfers) for s in self.sessions)

    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.sessions)

    def signature(self) -> str:
        """Content hash of the population structure.

        Covers every session's arrival time and path choice and every
        transfer's size, dependency edge and delay -- two plans with equal
        signatures describe identical populations.  The determinism tests
        compare this across runs and across backends.
        """
        digest = hashlib.sha256()
        for session in self.sessions:
            digest.update(
                f"{session.name}|{session.start!r}|{session.path_index}\n".encode()
            )
            for t in session.transfers:
                digest.update(
                    f"  {t.index}|{t.size_bytes}|{t.after}|{t.delay!r}|"
                    f"{t.page}|{t.new_connection}\n".encode()
                )
        return digest.hexdigest()


# ------------------------------------------------------------------- the spec
@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded population of user sessions (see module docstring)."""

    name: str = "workload"
    seed: int = 1
    sessions: int = 100
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    request: RequestResponseSpec = field(default_factory=RequestResponseSpec)
    #: Per-path weights for the session path choice (uniform when None).
    path_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigurationError("a workload needs at least one session")

    def with_overrides(self, **kwargs) -> "WorkloadSpec":
        return replace(self, **kwargs)

    def scaled(self, *, load: float = 1.0, size: float = 1.0) -> "WorkloadSpec":
        """A copy with the arrival rate and/or mean sizes scaled.

        ``load`` multiplies the session arrival rate, ``size`` the mean of
        every size distribution -- the two campaign sweep axes.
        """
        if load <= 0 or size <= 0:
            raise ConfigurationError("load/size scale factors must be positive")
        spec = self
        if load != 1.0:
            spec = replace(
                spec,
                arrival=replace(spec.arrival, rate_per_s=spec.arrival.rate_per_s * load),
            )
        if size != 1.0:
            request = replace(
                spec.request,
                response_size=replace(
                    spec.request.response_size,
                    mean_bytes=spec.request.response_size.mean_bytes * size,
                ),
            )
            if request.subresource_size is not None:
                request = replace(
                    request,
                    subresource_size=replace(
                        request.subresource_size,
                        mean_bytes=request.subresource_size.mean_bytes * size,
                    ),
                )
            spec = replace(spec, request=request)
        return spec

    # ------------------------------------------------------------------
    def compile(self, n_paths: int) -> WorkloadPlan:
        """Expand the spec into a deterministic :class:`WorkloadPlan`.

        One :class:`random.Random` stream seeded with ``self.seed`` drives
        every draw in a fixed order (arrival gap, path choice, then per page:
        think time, response size, subresource sizes), so the same
        ``(spec, n_paths)`` always yields the same population.
        """
        if n_paths < 1:
            raise ConfigurationError("workload needs at least one path")
        if self.path_weights is not None and len(self.path_weights) != n_paths:
            raise ConfigurationError(
                f"got {len(self.path_weights)} path weights for {n_paths} paths"
            )
        request = self.request
        rng = random.Random(self.seed)
        weights = list(self.path_weights) if self.path_weights is not None else None
        path_indices = range(n_paths)

        plans: List[SessionPlan] = []
        clock = 0.0
        for session_index in range(self.sessions):
            clock += self.arrival.next_gap(rng)
            if weights is None:
                path_index = rng.randrange(n_paths)
            else:
                path_index = rng.choices(path_indices, weights=weights)[0]
            transfers: List[TransferPlan] = []
            previous_main = -1
            for page in range(request.requests_per_session):
                if page == 0 or request.think_time_s <= 0:
                    think = 0.0
                else:
                    think = rng.expovariate(1.0 / request.think_time_s)
                fresh = page > 0 and (
                    not request.reuse_connection
                    or (
                        request.idle_timeout_s is not None
                        and think > request.idle_timeout_s
                    )
                )
                main_index = len(transfers)
                transfers.append(
                    TransferPlan(
                        index=main_index,
                        size_bytes=request.response_size.sample(rng),
                        after=previous_main,
                        delay=think,
                        page=page,
                        new_connection=fresh,
                    )
                )
                for _ in range(request.subresources):
                    transfers.append(
                        TransferPlan(
                            index=len(transfers),
                            size_bytes=request.subresource_size.sample(rng),
                            after=main_index,
                            delay=0.0,
                            page=page,
                        )
                    )
                previous_main = main_index
            plans.append(
                SessionPlan(
                    name=f"{self.name}-{session_index:05d}",
                    index=session_index,
                    start=clock,
                    path_index=path_index,
                    transfers=tuple(transfers),
                )
            )
        return WorkloadPlan(name=self.name, seed=self.seed, sessions=tuple(plans))
