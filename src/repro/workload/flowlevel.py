"""Lower a compiled :class:`~repro.workload.spec.WorkloadPlan` to the flow-level engine.

Each transfer becomes one sized :class:`~repro.flowsim.engine.FlowDescriptor`
on the session's path.  Transfers that depend on the session start are added
up front; dependent transfers are added *mid-run* from the parent's
completion callback (``think delay`` after the parent finishes) -- the
dependency edges of the plan realised through
:meth:`~repro.flowsim.engine.FlowLevelSim.on_flow_complete`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..flowsim.engine import FlowCompletion, FlowDescriptor, FlowLevelSim
from ..measure.fct import FctRecord
from ..model.paths import Path
from .spec import SessionPlan, TransferPlan, WorkloadPlan


class FlowLevelWorkloadRun:
    """Installs a plan on a :class:`FlowLevelSim` and collects FCT records.

    Usage::

        run = FlowLevelWorkloadRun(sim, plan, paths)
        run.install()
        sim.run(duration)
        run.records  # FctRecord per completed transfer
    """

    def __init__(
        self,
        sim: FlowLevelSim,
        plan: WorkloadPlan,
        paths: Sequence[Path],
        *,
        prefix: str = "",
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.prefix = prefix
        self.records: List[FctRecord] = []
        self._routes: List[Tuple[Tuple[str, ...], ...]] = [
            (tuple(path.nodes),) for path in paths
        ]
        self._tags: List[Tuple[int, ...]] = [
            (path.tag if path.tag is not None else index + 1,)
            for index, path in enumerate(paths)
        ]
        #: (session index, parent transfer index) -> dependent transfers.
        self._children: Dict[Tuple[int, int], List[TransferPlan]] = {}

    # ------------------------------------------------------------------
    def flow_name(self, session: SessionPlan, transfer: TransferPlan) -> str:
        return f"{self.prefix}{session.name}/t{transfer.index}"

    def install(self) -> None:
        """Add every session's root transfers and index the dependency edges."""
        for session in self.plan.sessions:
            for transfer in session.transfers:
                if transfer.after >= 0:
                    key = (session.index, transfer.after)
                    self._children.setdefault(key, []).append(transfer)
            for transfer in session.transfers:
                if transfer.after < 0:
                    self._add_transfer(session, transfer, session.start + transfer.delay)

    def _add_transfer(self, session: SessionPlan, transfer: TransferPlan, start: float) -> None:
        name = self.flow_name(session, transfer)
        self.sim.add_flow(
            FlowDescriptor(
                name=name,
                routes=self._routes[session.path_index],
                start=start,
                size_bytes=transfer.size_bytes,
                tags=self._tags[session.path_index],
                kind="workload",
            )
        )
        self.sim.on_flow_complete(
            name,
            lambda completion, _s=session, _t=transfer: self._completed(_s, _t, completion),
        )

    def _completed(
        self, session: SessionPlan, transfer: TransferPlan, completion: FlowCompletion
    ) -> None:
        self.records.append(
            FctRecord(
                name=completion.name,
                size_bytes=transfer.size_bytes,
                start=completion.start,
                finish=completion.finish,
                session=session.name,
                page=transfer.page,
            )
        )
        for child in self._children.get((session.index, transfer.index), ()):
            self._add_transfer(session, child, completion.finish + child.delay)
