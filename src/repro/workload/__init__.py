"""Backend-agnostic workloads: one spec, two fidelities.

A :class:`~repro.workload.spec.WorkloadSpec` describes *offered load* --
seeded session arrivals, HTTP-like request/response sequences with think
times and idle timeouts, heavy-tailed sized transfers -- independent of how
it is simulated.  :meth:`~repro.workload.spec.WorkloadSpec.compile` turns it
into a deterministic :class:`~repro.workload.spec.WorkloadPlan` (every size,
arrival time and dependency edge fixed by the seed), and
:func:`~repro.workload.runner.run_workload` executes that *same plan* on
either engine:

* packet level -- :class:`~repro.workload.packet.PacketWorkloadDriver` over
  real TCP/MPTCP connections;
* flow level -- :class:`~repro.workload.flowlevel.FlowLevelWorkloadRun` on
  the fluid engine.

Also here: the packet traffic sources (:mod:`~repro.workload.sources`,
formerly ``repro.traffic``), flat flow populations
(:mod:`~repro.workload.population`, formerly ``repro.flowsim.workload``) and
named scenarios (:mod:`~repro.workload.scenarios`) behind
``repro.cli workload``.
"""

from .population import distribution_sampler, heavy_tailed_workload, pareto_size_sampler
from .spec import (
    ArrivalProcess,
    RequestResponseSpec,
    SessionPlan,
    SizeDistribution,
    TransferPlan,
    WorkloadPlan,
    WorkloadSpec,
)

__all__ = [
    "ArrivalProcess",
    "FlowLevelWorkloadRun",
    "PacketWorkloadDriver",
    "RequestResponseSpec",
    "SessionPlan",
    "SizeDistribution",
    "TransferPlan",
    "WORKLOAD_SCENARIOS",
    "WorkloadConfig",
    "WorkloadPlan",
    "WorkloadResult",
    "WorkloadSpec",
    "conferencing_load",
    "distribution_sampler",
    "heavy_tailed_workload",
    "pareto_size_sampler",
    "run_workload",
    "web_page_load",
]

#: Lazily imported attribute -> defining submodule.  The runner/driver
#: modules pull in the packet and flow-level engines; importing them eagerly
#: from here would cycle through ``repro.flowsim`` (whose package __init__
#: re-exports :func:`heavy_tailed_workload` from this package).
_LAZY = {
    "FlowLevelWorkloadRun": "flowlevel",
    "PacketWorkloadDriver": "packet",
    "WORKLOAD_SCENARIOS": "scenarios",
    "WorkloadConfig": "runner",
    "WorkloadResult": "runner",
    "conferencing_load": "scenarios",
    "run_workload": "runner",
    "web_page_load": "scenarios",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
