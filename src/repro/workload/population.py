"""Seeded flat flow populations (sized transfers, no dependencies).

The original home of this code was :mod:`repro.flowsim.workload`; it moved
here when the backend-agnostic workload layer landed (the old module remains
as a re-export shim).  :func:`heavy_tailed_workload` generates a flat list of
independent sized transfers -- heavy-tailed sizes, Poisson arrivals -- ready
for the flow-level engine; for request/response sessions with dependency
edges see :class:`repro.workload.spec.WorkloadSpec`.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..model.paths import PathSet
from .spec import SizeDistribution


def pareto_size_sampler(
    mean_bytes: float,
    *,
    alpha: float = 1.5,
    min_bytes: int = 1,
) -> Callable[[random.Random], int]:
    """A bounded-mean Pareto sampler: heavy tail, finite mean.

    ``alpha`` must exceed 1 for the mean to exist; the scale is solved from
    ``mean = x_m * alpha / (alpha - 1)`` so the requested mean holds exactly.
    """
    if alpha <= 1.0:
        raise ConfigurationError("pareto alpha must exceed 1 for a finite mean")
    if mean_bytes <= 0:
        raise ConfigurationError("mean flow size must be positive")
    scale = mean_bytes * (alpha - 1.0) / alpha

    def sample(rng: random.Random) -> int:
        return max(min_bytes, int(scale * rng.paretovariate(alpha)))

    return sample


def distribution_sampler(distribution: SizeDistribution) -> Callable[[random.Random], int]:
    """Adapt a :class:`SizeDistribution` to the sampler-callable protocol."""
    return distribution.sample


def heavy_tailed_workload(
    paths: PathSet,
    *,
    flows: int,
    seed: int,
    mean_size_bytes: float = 2_000_000.0,
    alpha: float = 1.5,
    arrival_rate_per_s: float = 500.0,
    name_prefix: str = "flow",
    size_sampler: Optional[Callable[[random.Random], int]] = None,
    path_weights: Optional[Sequence[float]] = None,
) -> list:
    """Generate ``flows`` sized transfers over the given paths.

    Sizes are heavy-tailed (Pareto, mean ``mean_size_bytes``), arrivals are
    Poisson with rate ``arrival_rate_per_s``, and each flow picks one path
    (uniformly, or by ``path_weights``).  Deterministic for a fixed seed.
    Returns a list of :class:`~repro.flowsim.engine.FlowDescriptor`.
    """
    # Imported here, not at module top: repro.flowsim's package __init__
    # re-exports this function, so a top-level engine import would be cyclic.
    from ..flowsim.engine import FlowDescriptor

    if flows <= 0:
        raise ConfigurationError("workload needs at least one flow")
    if arrival_rate_per_s <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if not len(paths):
        raise ConfigurationError("workload needs at least one path")
    if path_weights is not None and len(path_weights) != len(paths):
        raise ConfigurationError(
            f"got {len(path_weights)} path weights for {len(paths)} paths"
        )
    sampler = size_sampler or pareto_size_sampler(mean_size_bytes, alpha=alpha)
    rng = random.Random(seed)
    routes: Tuple[Tuple[str, ...], ...] = tuple(tuple(p.nodes) for p in paths)
    tags = tuple(p.tag for p in paths)
    weights = list(path_weights) if path_weights is not None else None

    descriptors: List[FlowDescriptor] = []
    clock = 0.0
    for index in range(flows):
        clock += rng.expovariate(arrival_rate_per_s)
        if weights is None:
            choice = rng.randrange(len(routes))
        else:
            choice = rng.choices(range(len(routes)), weights=weights)[0]
        descriptors.append(
            FlowDescriptor(
                name=f"{name_prefix}-{index:05d}",
                routes=(routes[choice],),
                start=clock,
                size_bytes=sampler(rng),
                tags=(tags[choice],),
                kind="workload",
            )
        )
    return descriptors
