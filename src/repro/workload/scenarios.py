"""Named, paper-adjacent workload scenarios.

Two application profiles from the paper's motivating use cases (Section 1's
"Tetris-like" interactive sessions and ordinary web browsing), pre-wired to
a shared-bottleneck topology so ``repro.cli workload <name>`` runs them
directly.  Both return a plain :class:`~repro.workload.runner.WorkloadConfig`
-- callers can override the backend, seed or scale with
:meth:`~repro.workload.runner.WorkloadConfig.with_overrides`.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..topologies.generators import shared_bottleneck
from .runner import WorkloadConfig
from .spec import ArrivalProcess, RequestResponseSpec, SizeDistribution, WorkloadSpec


def conferencing_load(
    *,
    sessions: int = 200,
    duration: float = 60.0,
    seed: int = 1,
    backend: str = "flowlevel",
) -> WorkloadConfig:
    """Interactive conferencing/gaming load: many small latency-bound messages.

    Each session is one participant exchanging ~20 small state updates
    (lognormal around 24 kB) separated by ~200 ms of think time over a warm
    connection -- the paper's Tetris-style interactive application, scaled
    to a population.  FCT percentiles here are the user-visible input lag.
    """
    spec = WorkloadSpec(
        name="conferencing",
        seed=seed,
        sessions=sessions,
        arrival=ArrivalProcess(kind="poisson", rate_per_s=sessions / max(duration / 2.0, 1.0)),
        request=RequestResponseSpec(
            requests_per_session=20,
            response_size=SizeDistribution(kind="lognormal", mean_bytes=24_000, sigma=0.8),
            think_time_s=0.2,
            reuse_connection=True,
        ),
    )
    return WorkloadConfig(
        name="conferencing_load",
        scenario=shared_bottleneck(2, 50.0, 100.0),
        spec=spec,
        duration=duration,
        backend=backend,
    )


def web_page_load(
    *,
    sessions: int = 50,
    duration: float = 30.0,
    seed: int = 1,
    backend: str = "flowlevel",
) -> WorkloadConfig:
    """Web browsing load: heavy-tailed pages with parallel subresources.

    Each session loads three pages; a page is one Pareto-sized main response
    (mean 600 kB, alpha 1.5 -- mice and elephants) plus eight ~40 kB
    subresources fetched once the main response lands.  One second of think
    time separates pages and a 500 ms server idle timeout forces a cold
    reconnect for most of them, so page-load times include fresh slow starts
    at packet fidelity.
    """
    spec = WorkloadSpec(
        name="web",
        seed=seed,
        sessions=sessions,
        arrival=ArrivalProcess(kind="lognormal", rate_per_s=sessions / max(duration / 2.0, 1.0)),
        request=RequestResponseSpec(
            requests_per_session=3,
            response_size=SizeDistribution(kind="pareto", mean_bytes=600_000, alpha=1.5),
            think_time_s=1.0,
            subresources=8,
            subresource_size=SizeDistribution(kind="lognormal", mean_bytes=40_000, sigma=1.0),
            idle_timeout_s=0.5,
            reuse_connection=True,
        ),
    )
    return WorkloadConfig(
        name="web_page_load",
        scenario=shared_bottleneck(2, 50.0, 100.0),
        spec=spec,
        duration=duration,
        backend=backend,
    )


WORKLOAD_SCENARIOS: Dict[str, Callable[..., WorkloadConfig]] = {
    "conferencing_load": conferencing_load,
    "web_page_load": web_page_load,
}
