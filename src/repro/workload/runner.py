"""Run one :class:`~repro.workload.spec.WorkloadSpec` at either fidelity.

This is the top of the workload stack: a :class:`WorkloadConfig` names a
scenario (topology + paths), a workload spec and a backend; :func:`run_workload`
compiles the spec once (so both backends execute the *identical* flow
population -- same sizes, same arrival times, same dependency edges) and
lowers it to the chosen engine:

* ``backend="packet"`` -- :class:`~repro.workload.packet.PacketWorkloadDriver`
  over real TCP/MPTCP connections (ground truth, minutes at scale);
* ``backend="flowlevel"`` -- :class:`~repro.workload.flowlevel.FlowLevelWorkloadRun`
  on the fluid engine (seconds for tens of thousands of transfers).

Either way the result is the same shape: the compiled plan, one
:class:`~repro.measure.fct.FctRecord` per completed transfer and an
aggregated :class:`~repro.measure.fct.FctReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..flowsim.engine import FlowLevelSim
from ..measure.fct import FctRecord, FctReport
from ..model.paths import PathSet
from ..netsim.network import Network
from ..netsim.topology import Topology
from .spec import WorkloadPlan, WorkloadSpec

ScenarioBuilder = Callable[[], Tuple[Topology, PathSet]]

#: Packet-level transports a workload can ride on.
TRANSPORTS = ("tcp", "mptcp")


@dataclass
class WorkloadConfig:
    """Configuration of one workload run."""

    name: str = "workload"
    scenario: Union[ScenarioBuilder, Tuple[Topology, PathSet], None] = None
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    duration: float = 10.0
    #: Simulation fidelity: ``"packet"`` (ground truth) or ``"flowlevel"``.
    backend: str = "flowlevel"
    #: Packet-level transport per session; ignored at flow level.
    transport: str = "tcp"
    #: Packet-level congestion control (defaults to cubic / lia by transport).
    congestion_control: Optional[str] = None
    #: Rate-sharing rule for the flow-level backend; ignored at packet level.
    flow_allocator: str = "maxmin"

    def __post_init__(self) -> None:
        from ..flowsim.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )

    def with_overrides(self, **kwargs) -> "WorkloadConfig":
        return replace(self, **kwargs)

    def build_scenario(self) -> Tuple[Topology, PathSet]:
        if self.scenario is None:
            from ..experiments.scenarios import paper_scenario

            return paper_scenario()
        if callable(self.scenario):
            return self.scenario()
        return self.scenario


@dataclass
class WorkloadResult:
    """Outcome of one workload run: the plan, raw records and the FCT report."""

    config: WorkloadConfig
    backend: str
    plan: WorkloadPlan
    records: List[FctRecord]
    fct: FctReport
    events_processed: int

    def summary(self) -> dict:
        return {
            "name": self.config.name,
            "backend": self.backend,
            "transport": self.config.transport if self.backend == "packet" else None,
            "duration": self.config.duration,
            "seed": self.plan.seed,
            "sessions": len(self.plan.sessions),
            "plan_signature": self.plan.signature(),
            "events_processed": self.events_processed,
            "fct": self.fct.as_dict(),
        }


def run_workload(config: WorkloadConfig) -> WorkloadResult:
    """Compile ``config.spec`` and execute it on the configured backend."""
    topology, paths = config.build_scenario()
    path_list = list(paths)
    plan = config.spec.compile(len(path_list))

    if config.backend == "flowlevel":
        from .flowlevel import FlowLevelWorkloadRun

        sim = FlowLevelSim(topology, allocator=config.flow_allocator)
        run = FlowLevelWorkloadRun(sim, plan, path_list)
        run.install()
        outcome = sim.run(config.duration)
        records = run.records
        events = outcome.transitions
    else:
        from .packet import PacketWorkloadDriver

        network = Network(topology)
        driver = PacketWorkloadDriver(
            network,
            plan,
            path_list,
            src=path_list[0].nodes[0],
            dst=path_list[0].nodes[-1],
            transport=config.transport,
            congestion_control=config.congestion_control,
        )
        driver.install()
        network.run(config.duration)
        records = driver.records
        events = network.sim.events_processed

    return WorkloadResult(
        config=config,
        backend=config.backend,
        plan=plan,
        records=records,
        fct=FctReport.from_records(records, offered=plan.total_transfers),
        events_processed=events,
    )
