"""Packet-level traffic sources: bulk iperf, CBR UDP and on-off bursts.

These are the *open-ended* traffic generators -- rate decided by a
congestion controller (iperf) or configured outright (UDP/on-off) -- as
opposed to the sized request/response transfers the rest of this package
compiles from a :class:`~repro.workload.spec.WorkloadSpec`.  They moved here
verbatim from the old ``repro.traffic`` package (which re-exports them for
compatibility) so every way of offering load to the packet engine lives
under one roof:

* :class:`IperfClient` -- the paper's measurement tool: a greedy bulk
  transfer over an existing (MP)TCP connection, reported as interval
  throughput;
* :class:`UdpConstantBitRate` / :class:`UdpSink` -- non-responsive
  cross-traffic at a fixed rate;
* :class:`OnOffSource` -- deterministic bursty cross-traffic built on the
  CBR source.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.connection import MptcpConnection
from ..errors import ConfigurationError
from ..measure.sampling import TimeSeries, throughput_timeseries
from ..netsim.capture import PacketCapture
from ..netsim.network import Network
from ..netsim.packet import Packet, acquire as _acquire_packet
from ..tcp.connection import TcpConnection
from ..units import DEFAULT_MSS, HEADER_SIZE, mbps, throughput_mbps

Connection = Union[MptcpConnection, TcpConnection]

_udp_flow_ids = itertools.count(50000)


# ---------------------------------------------------------------------- iperf
@dataclass
class IperfReport:
    """Summary of one bulk transfer (what ``iperf`` prints at the end)."""

    duration: float
    bytes_transferred: int
    mean_throughput_mbps: float
    interval_series: TimeSeries = field(default_factory=TimeSeries)
    retransmissions: int = 0

    def as_dict(self) -> dict:
        return {
            "duration_s": round(self.duration, 3),
            "bytes_transferred": self.bytes_transferred,
            "mean_throughput_mbps": round(self.mean_throughput_mbps, 3),
            "retransmissions": self.retransmissions,
            "intervals": [
                {"time_s": round(t, 3), "mbps": round(v, 3)} for t, v in self.interval_series
            ],
        }


class IperfClient:
    """Drives a greedy bulk transfer over an existing connection object."""

    def __init__(
        self,
        connection: Connection,
        *,
        capture: Optional[PacketCapture] = None,
        report_interval: float = 1.0,
    ) -> None:
        self.connection = connection
        self.capture = capture
        self.report_interval = report_interval
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        self._started_at = at
        self.connection.start(at)

    def report(self, duration: Optional[float] = None) -> IperfReport:
        """Build the final report after the simulation has run."""
        network = self.connection.network
        start = self._started_at or 0.0
        if duration is None:
            duration = max(network.sim.now - start, 1e-9)

        if isinstance(self.connection, MptcpConnection):
            transferred = self.connection.bytes_delivered
            throughput = self.connection.total_throughput_mbps(duration)
            retransmissions = self.connection.total_retransmissions()
        else:
            transferred = self.connection.bytes_acked
            throughput = self.connection.throughput_mbps(duration)
            retransmissions = self.connection.sender.stats.retransmissions

        series = TimeSeries()
        if self.capture is not None:
            series = throughput_timeseries(
                self.capture.filter(data_only=True),
                interval=self.report_interval,
                start=start,
                end=start + duration,
                label="iperf",
            )
        return IperfReport(
            duration=duration,
            bytes_transferred=transferred,
            mean_throughput_mbps=throughput,
            interval_series=series,
            retransmissions=retransmissions,
        )


# ------------------------------------------------------------------------ udp
class UdpSink:
    """Counts the datagrams delivered to it."""

    def __init__(self) -> None:
        self.packets_received = 0
        self.bytes_received = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None

    def handle_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.payload_len
        if self.first_arrival is None:
            self.first_arrival = packet.created_at
        self.last_arrival = packet.created_at
        packet.release()

    def throughput_mbps(self) -> float:
        if self.first_arrival is None or self.last_arrival is None:
            return 0.0
        duration = max(self.last_arrival - self.first_arrival, 1e-9)
        return throughput_mbps(self.bytes_received, duration)


class UdpConstantBitRate:
    """A CBR source sending ``rate_mbps`` towards a destination host.

    Packets are paced at a fixed inter-departure time; losses are ignored
    (there is no feedback), which is exactly the non-responsive cross-traffic
    used to stress congestion-control experiments.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_mbps: float,
        *,
        tag: Optional[int] = None,
        packet_size: int = DEFAULT_MSS,
        flow_id: Optional[int] = None,
    ) -> None:
        if rate_mbps <= 0:
            raise ConfigurationError("UDP rate must be positive")
        self.network = network
        self.src_host = network.host(src)
        self.dst = dst
        self.rate_bps = mbps(rate_mbps)
        self.tag = tag
        self.packet_size = packet_size
        self.flow_id = flow_id if flow_id is not None else next(_udp_flow_ids)
        self.sink = UdpSink()
        network.host(dst).register_agent(self.flow_id, 0, self.sink)
        self.packets_sent = 0
        self._stop_at: Optional[float] = None
        self._interval = (packet_size + HEADER_SIZE) * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin sending at time ``at``; optionally stop at ``stop_at``."""
        self._stop_at = stop_at
        self.network.sim.schedule_at(at, self._send_next)

    def _send_next(self) -> None:
        now = self.network.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        packet = _acquire_packet(
            self.src_host.name,
            self.dst,
            self.packet_size + HEADER_SIZE,
            self.tag,
            self.flow_id,
            0,  # subflow_id
            "udp",
            self.packets_sent,
            self.packet_size,
            False,  # is_ack
            0,  # ack
            0,  # dsn
            0,  # dack
            False,  # is_retransmission
            (),  # sack_blocks
            -1.0,  # ts_echo
            now,
        )
        self.packets_sent += 1
        self.src_host.send(packet)
        self.network.sim.schedule(self._interval, self._send_next)

    @property
    def delivery_ratio(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.sink.packets_received / self.packets_sent


# --------------------------------------------------------------------- on-off
class OnOffSource:
    """Deterministic on-off UDP traffic.

    Alternates deterministic ON periods (sending at a configured rate) and
    OFF periods (silent); used to study how bursty cross-traffic on a shared
    bottleneck perturbs MPTCP's search for the optimal rate split.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_mbps: float,
        *,
        on_duration: float = 0.5,
        off_duration: float = 0.5,
        tag: Optional[int] = None,
        packet_size: int = 1400,
        flow_id: Optional[int] = None,
    ) -> None:
        if on_duration <= 0 or off_duration < 0:
            raise ConfigurationError("on_duration must be positive and off_duration non-negative")
        self.network = network
        self.on_duration = on_duration
        self.off_duration = off_duration
        self._cbr = UdpConstantBitRate(
            network, src, dst, rate_mbps, tag=tag, packet_size=packet_size, flow_id=flow_id
        )
        self._stop_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def sink(self) -> UdpSink:
        return self._cbr.sink

    @property
    def flow_id(self) -> int:
        return self._cbr.flow_id

    @property
    def packets_sent(self) -> int:
        return self._cbr.packets_sent

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin the on-off pattern at ``at``; stop entirely at ``stop_at``."""
        self._stop_at = stop_at
        self.network.sim.schedule_at(at, self._begin_on_period)

    def _begin_on_period(self) -> None:
        now = self.network.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        burst_end = now + self.on_duration
        if self._stop_at is not None:
            burst_end = min(burst_end, self._stop_at)
        self._cbr.start(at=now, stop_at=burst_end)
        self.network.sim.schedule(self.on_duration + self.off_duration, self._begin_on_period)
