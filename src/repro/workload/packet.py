"""Run a compiled :class:`~repro.workload.spec.WorkloadPlan` at packet fidelity.

Each session becomes one transport connection between the workload's two
hosts; each transfer is a sized byte range on that connection's stream.
Transfer begin/complete times come from real segments crossing the simulated
network, so the resulting :class:`~repro.measure.fct.FctRecord` list carries
the full queueing/slow-start/loss dynamics the flow-level backend abstracts
away.

Transports
----------
``"tcp"`` (default)
    One single-path :class:`~repro.tcp.connection.TcpConnection` per session,
    pinned to the path the plan chose, fed by a
    :class:`~repro.tcp.connection.TransferQueueAdapter`.  All sessions share
    the driver's ``flow_id`` and take monotonically increasing subflow ids,
    so one host-side capture (``flow_id=driver.flow_id``) observes the whole
    population and reconnect incarnations never collide in the host dispatch
    tables.  A ``new_connection`` transfer (idle timeout expired in the
    plan) tears the warm connection down and opens a fresh incarnation --
    unless earlier transfers are still in flight, in which case the
    connection demonstrably was not idle and is reused.

``"mptcp"``
    One bounded :class:`~repro.core.connection.MptcpConnection` per session
    striping over *all* workload paths
    (:meth:`~repro.core.connection.MptcpConnection.queue_transfer`).
    ``new_connection`` is ignored: an MPTCP session keeps its subflow set.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.connection import MptcpConnection
from ..errors import ConfigurationError
from ..measure.fct import FctRecord
from ..model.paths import Path
from ..netsim.network import Network
from ..tcp.connection import TcpConnection, TransferQueueAdapter
from ..units import DEFAULT_MSS
from .spec import SessionPlan, TransferPlan, WorkloadPlan

#: Driver-level flow ids, clear of the TCP (1+), MPTCP (1000+) and UDP
#: (50000+) counters.
_driver_flow_ids = itertools.count(70000)


class _Session:
    """Mutable per-session state: the live connection and its adapter."""

    __slots__ = ("plan", "connection", "adapter")

    def __init__(self, plan: SessionPlan) -> None:
        self.plan = plan
        self.connection: Optional[object] = None
        self.adapter: Optional[TransferQueueAdapter] = None


class PacketWorkloadDriver:
    """Installs a workload plan on a packet-level :class:`Network`.

    Usage::

        driver = PacketWorkloadDriver(network, plan, paths, src="s", dst="d")
        driver.install()
        network.run(duration)
        driver.records  # FctRecord per completed transfer
    """

    def __init__(
        self,
        network: Network,
        plan: WorkloadPlan,
        paths: Sequence[Path],
        *,
        src: str,
        dst: str,
        transport: str = "tcp",
        congestion_control: Optional[str] = None,
        mss: int = DEFAULT_MSS,
        flow_id: Optional[int] = None,
        prefix: str = "",
    ) -> None:
        if transport not in ("tcp", "mptcp"):
            raise ConfigurationError(f"unknown workload transport {transport!r}")
        if not paths:
            raise ConfigurationError("workload needs at least one path")
        self.network = network
        self.plan = plan
        self.paths = list(paths)
        self.src = src
        self.dst = dst
        self.transport = transport
        self.congestion_control = congestion_control or (
            "lia" if transport == "mptcp" else "cubic"
        )
        self.mss = mss
        self.flow_id = flow_id if flow_id is not None else next(_driver_flow_ids)
        self.prefix = prefix
        self.records: List[FctRecord] = []
        self._sessions: Dict[int, _Session] = {}
        self._children: Dict[Tuple[int, int], List[TransferPlan]] = {}
        self._next_subflow_id = 0
        self._paths_installed = False

    # ------------------------------------------------------------------
    def flow_name(self, session: SessionPlan, transfer: TransferPlan) -> str:
        return f"{self.prefix}{session.name}/t{transfer.index}"

    def install(self) -> None:
        """Index dependency edges and schedule every session's start."""
        sim = self.network.sim
        for session in self.plan.sessions:
            for transfer in session.transfers:
                if transfer.after >= 0:
                    key = (session.index, transfer.after)
                    self._children.setdefault(key, []).append(transfer)
        for session in self.plan.sessions:
            sim.schedule_at(
                session.start, lambda _s=session: self._start_session(_s)
            )

    # ------------------------------------------------------------------
    def _install_paths(self) -> None:
        if self._paths_installed:
            return
        self._paths_installed = True
        for index, path in enumerate(self.paths):
            tag = path.tag if path.tag is not None else index + 1
            self.network.install_path(path.nodes, tag)

    def _path_tag(self, path_index: int) -> int:
        path = self.paths[path_index]
        return path.tag if path.tag is not None else path_index + 1

    def _open_connection(self, state: _Session) -> None:
        """Create a fresh transport incarnation for ``state`` and start it."""
        now = self.network.sim.now
        if self.transport == "mptcp":
            connection = MptcpConnection(
                self.network,
                self.src,
                self.dst,
                self.paths,
                congestion_control=self.congestion_control,
                total_bytes=0,
            )
            state.connection = connection
            state.adapter = None
            connection.start(at=now)
            return
        self._install_paths()
        adapter = TransferQueueAdapter()
        connection = TcpConnection(
            self.network,
            self.src,
            self.dst,
            cc=self.congestion_control,
            tag=self._path_tag(state.plan.path_index),
            mss=self.mss,
            flow_id=self.flow_id,
            subflow_id=self._next_subflow_id,
            data=adapter,
        )
        self._next_subflow_id += 1
        state.connection = connection
        state.adapter = adapter
        connection.start(at=now)

    def _start_session(self, session: SessionPlan) -> None:
        state = _Session(session)
        self._sessions[session.index] = state
        self._open_connection(state)
        now = self.network.sim.now
        for transfer in session.transfers:
            if transfer.after < 0:
                self._schedule_transfer(session, transfer, now + transfer.delay)

    def _schedule_transfer(self, session: SessionPlan, transfer: TransferPlan, at: float) -> None:
        sim = self.network.sim
        if at <= sim.now:
            self._begin_transfer(session, transfer)
        else:
            sim.schedule_at(
                at, lambda _s=session, _t=transfer: self._begin_transfer(_s, _t)
            )

    def _begin_transfer(self, session: SessionPlan, transfer: TransferPlan) -> None:
        state = self._sessions[session.index]
        start = self.network.sim.now
        if self.transport == "mptcp":
            state.connection.queue_transfer(
                transfer.size_bytes,
                lambda now, _s=session, _t=transfer, _b=start: self._completed(
                    _s, _t, _b, now
                ),
            )
            return
        adapter = state.adapter
        if transfer.new_connection and adapter.pending_transfers == 0:
            # The plan's idle timeout expired between the previous response
            # and this request: the server closed the warm connection, so
            # this request pays a fresh incarnation (new slow start).
            state.connection.close()
            self._open_connection(state)
            adapter = state.adapter
        adapter.enqueue(
            transfer.size_bytes,
            lambda now, _s=session, _t=transfer, _b=start: self._completed(
                _s, _t, _b, now
            ),
        )
        # The sender parks itself once the queue drains; a fresh transfer on
        # a warm connection needs an explicit nudge on the next tick.
        self.network.sim.schedule(0.0, state.connection.sender.resume)

    def _completed(
        self, session: SessionPlan, transfer: TransferPlan, start: float, finish: float
    ) -> None:
        self.records.append(
            FctRecord(
                name=self.flow_name(session, transfer),
                size_bytes=transfer.size_bytes,
                start=start,
                finish=finish,
                session=session.name,
                page=transfer.page,
            )
        )
        for child in self._children.get((session.index, transfer.index), ()):
            self._schedule_transfer(session, child, finish + child.delay)
