"""Multi-flow competition runner: several flows sharing one network.

The single-flow harness (:mod:`repro.experiments.harness`) reproduces the
paper's measurement: one MPTCP connection alone on the topology.  The
fairness questions behind coupled congestion control -- does an MPTCP
connection take more of a shared bottleneck than a single TCP flow?  how do
two MPTCP connections split capacity?  how does cross-traffic perturb the
rate search? -- need *competition*: several traffic sources placed on the
same network and measured per flow.

:class:`FlowSpec` declares one traffic source (MPTCP connection, single-path
TCP flow, constant-rate UDP or bursty on-off cross-traffic),
:class:`MultiFlowConfig` a set of them on a topology, and
:func:`run_multiflow` builds the network, gives every flow its own tag
namespace and receiver-side capture, runs the simulation and post-processes
per-flow throughput series plus a :class:`~repro.measure.fairness.FairnessReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.connection import MptcpConnection
from ..errors import ConfigurationError
from ..measure.fairness import FairnessReport, analyze_fairness
from ..measure.fct import FctReport
from ..measure.flowstats import ConnectionStats, connection_stats
from ..measure.sampling import TimeSeries, per_tag_timeseries, throughput_timeseries
from ..measure.signalplane import SignalPlaneReport, signal_plane_report
from ..model.bottleneck import build_constraints
from ..model.lp import max_total_throughput
from ..model.paths import Path, PathSet
from ..netsim.dynamics import DynamicsSpec
from ..netsim.network import Network
from ..netsim.topology import Topology
from ..tcp.connection import TcpConnection
from ..topologies.paper import paper_scenario
from ..units import DEFAULT_MSS
from ..workload.sources import OnOffSource, UdpConstantBitRate
from ..workload.spec import WorkloadSpec

ScenarioBuilder = Callable[[], Tuple[Topology, PathSet]]

FLOW_KINDS = ("mptcp", "tcp", "udp", "onoff", "workload")

#: Tag stride between flows: flow ``i`` installs its paths under tags
#: ``i * TAG_STRIDE + original_tag``, so two flows pinning *different* paths
#: between the same hosts can never collide in the shared tag-routing table.
TAG_STRIDE = 100


@dataclass
class FlowSpec:
    """Declarative description of one traffic source in a multi-flow run.

    Parameters
    ----------
    kind:
        ``"mptcp"`` (a multipath connection), ``"tcp"`` (single-path TCP),
        ``"udp"`` (constant-bit-rate cross-traffic), ``"onoff"`` (bursty
        cross-traffic) or ``"workload"`` (a whole session population
        compiled from ``workload``; session arrival times come from the
        workload spec, so ``start`` is ignored).
    name:
        Flow name used in results and fairness reports (auto-generated when
        empty).
    paths:
        For ``mptcp``: the subflow paths (defaults to the scenario's path
        set).  For the single-path kinds: at most one pinned path; when
        omitted the scenario path selected by ``path_index`` is used.
    path_index:
        For single-path kinds without explicit ``paths``: which of the
        scenario's paths carries this flow (default: the first).
    src, dst:
        Endpoints; default to the scenario path set's endpoints.
    start, stop:
        Start time, and stop time for the unreliable sources (``udp`` /
        ``onoff`` only; TCP-based flows are bounded by ``total_bytes``).
    rate_mbps, on_duration, off_duration:
        Source parameters for ``udp`` / ``onoff`` flows.
    """

    kind: str = "mptcp"
    name: str = ""
    paths: Union[PathSet, Sequence[Path], Sequence[Sequence[str]], None] = None
    path_index: int = 0
    src: Optional[str] = None
    dst: Optional[str] = None
    #: ``None`` picks the kind's default: "lia" for mptcp, "cubic" for tcp.
    congestion_control: Optional[str] = None
    scheduler: str = "minrtt"
    default_path_index: int = 0
    mss: int = DEFAULT_MSS
    total_bytes: Optional[int] = None
    send_buffer_bytes: Optional[int] = None
    join_delay: float = 0.0
    start: float = 0.0
    stop: Optional[float] = None
    rate_mbps: float = 10.0
    on_duration: float = 0.5
    off_duration: float = 0.5
    packet_size: int = DEFAULT_MSS
    #: The offered load of a ``kind="workload"`` flow.
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in FLOW_KINDS:
            raise ConfigurationError(
                f"unknown flow kind {self.kind!r}; choose from {FLOW_KINDS}"
            )
        if self.kind == "workload" and self.workload is None:
            raise ConfigurationError("a workload flow needs a WorkloadSpec")

    def with_overrides(self, **kwargs) -> "FlowSpec":
        return replace(self, **kwargs)


@dataclass
class MultiFlowConfig:
    """Configuration of one multi-flow competition run."""

    name: str = "multiflow"
    scenario: Union[ScenarioBuilder, Tuple[Topology, PathSet], None] = None
    flows: Sequence[FlowSpec] = field(default_factory=list)
    duration: float = 4.0
    sampling_interval: float = 0.1
    warmup: float = 0.0
    paper_variant: str = "as_stated"
    #: Optional ``(src, dst)`` link whose capacity anchors the fairness
    #: report's utilisation figure (the scenario's shared bottleneck).
    bottleneck_link: Optional[Tuple[str, str]] = None
    #: Optional time-varying network events applied before the run; an
    #: empty/None spec costs nothing (static runs stay byte-identical).
    dynamics: Optional[DynamicsSpec] = None
    #: Simulation fidelity: ``"packet"`` (ground truth) or ``"flowlevel"``
    #: (the fluid backend in :mod:`repro.flowsim`, for many-flow scale).
    backend: str = "packet"
    #: Rate-sharing rule for the flow-level backend; ignored at packet level.
    flow_allocator: str = "maxmin"
    #: Queue discipline forced onto every link (``None`` keeps the scenario's
    #: declared disciplines, drop-tail by default).
    queue_kind: Optional[str] = None
    #: ECN-capable transport for every TCP-based flow of the run.
    ecn: bool = False

    def __post_init__(self) -> None:
        from ..flowsim.backend import BACKENDS
        from ..netsim.queues import QUEUE_KINDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.queue_kind is not None and self.queue_kind not in QUEUE_KINDS:
            raise ConfigurationError(
                f"unknown queue discipline {self.queue_kind!r}; "
                f"choose from {QUEUE_KINDS}"
            )

    def with_overrides(self, **kwargs) -> "MultiFlowConfig":
        return replace(self, **kwargs)

    def build_scenario(self) -> Tuple[Topology, PathSet]:
        if self.scenario is None:
            return paper_scenario(self.paper_variant)
        if callable(self.scenario):
            return self.scenario()
        return self.scenario


@dataclass
class FlowResult:
    """Post-processed measurement of one flow."""

    spec: FlowSpec
    name: str
    kind: str
    flow_id: int
    series: TimeSeries
    per_path_series: Dict[int, TimeSeries]
    mean_mbps: float
    bytes_delivered: int
    retransmissions: int
    #: Original path tag -> tag installed in this flow's namespace.
    tag_map: Dict[int, int] = field(default_factory=dict)
    optimum_mbps: Optional[float] = None
    stats: Optional[ConnectionStats] = None
    #: FCT report of a ``kind="workload"`` flow (None for the other kinds).
    fct: Optional[FctReport] = None

    def summary(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "flow_id": self.flow_id,
            "mean_mbps": round(self.mean_mbps, 3),
            "bytes_delivered": self.bytes_delivered,
            "retransmissions": self.retransmissions,
            "optimum_mbps": None if self.optimum_mbps is None else round(self.optimum_mbps, 3),
            "fct": None if self.fct is None else self.fct.as_dict(),
        }


@dataclass
class MultiFlowResult:
    """Everything produced by one multi-flow run."""

    config: MultiFlowConfig
    flows: List[FlowResult]
    fairness: FairnessReport
    drops: int
    events_processed: int
    #: Congestion-signal counters of the run (ECN marks, early/full drops,
    #: queueing delay); None only for results predating the signal plane.
    signal_plane: Optional[SignalPlaneReport] = None

    def flow(self, name: str) -> FlowResult:
        for flow in self.flows:
            if flow.name == name:
                return flow
        raise KeyError(name)

    @property
    def jain_index(self) -> float:
        return self.fairness.jain_index

    def summary(self) -> dict:
        summary = {
            "name": self.config.name,
            "duration_s": self.config.duration,
            "flows": [flow.summary() for flow in self.flows],
            "fairness": self.fairness.as_dict(),
            "drops": self.drops,
            "events_processed": self.events_processed,
        }
        if self.config.queue_kind is not None:
            summary["queue_kind"] = self.config.queue_kind
        if self.config.ecn:
            summary["ecn"] = True
        if self.signal_plane is not None:
            summary["signal_plane"] = self.signal_plane.as_dict()
        return summary


# ---------------------------------------------------------------------- build
def _retag_paths(paths: Sequence[Path], base: int) -> List[Path]:
    """Copies of ``paths`` with tags moved into the flow's tag namespace."""
    retagged = []
    for index, path in enumerate(paths):
        tag = path.tag if path.tag is not None else index + 1
        if not 0 < tag < TAG_STRIDE:
            raise ConfigurationError(
                f"path tag {tag} does not fit the flow tag namespace "
                f"(must be in 1..{TAG_STRIDE - 1})"
            )
        retagged.append(Path(path.nodes, tag=base + tag, name=path.name))
    return retagged


#: Path coercion shared with the connection layer (PathSet / Path / node
#: lists -> List[Path] with tags defaulting to 1..n).
_coerce_path_objects = MptcpConnection._coerce_paths


def _single_path_for(spec: FlowSpec, base_paths: PathSet) -> Path:
    """The one pinned path of a tcp/udp/onoff flow."""
    if spec.paths is not None:
        candidates = _coerce_path_objects(spec.paths)
        if len(candidates) != 1:
            raise ConfigurationError(
                f"{spec.kind} flow {spec.name!r} needs exactly one path, got {len(candidates)}"
            )
        return candidates[0]
    if not 0 <= spec.path_index < len(base_paths):
        raise ConfigurationError(
            f"path_index {spec.path_index} out of range for {len(base_paths)} scenario paths"
        )
    return base_paths[spec.path_index]


class _BuiltFlow:
    """One instantiated flow: simulation objects plus measurement hooks."""

    def __init__(self, spec: FlowSpec, name: str, flow_id: int, tag_base: int) -> None:
        self.spec = spec
        self.name = name
        self.flow_id = flow_id
        self.tag_base = tag_base
        self.capture = None
        self.connection: Optional[MptcpConnection] = None
        self.tcp: Optional[TcpConnection] = None
        self.source = None  # udp / onoff
        self.workload_driver = None  # PacketWorkloadDriver of a workload flow
        self.workload_plan = None
        self.tag_map: Dict[int, int] = {}  # original tag -> namespaced tag
        self.optimum_mbps: Optional[float] = None


def run_multiflow(config: MultiFlowConfig) -> MultiFlowResult:
    """Run one multi-flow competition scenario and post-process it per flow.

    Dispatches on ``config.backend``: the packet-level simulator below, or
    the flow-level twin (:func:`repro.flowsim.backend.run_multiflow_flowlevel`)
    returning the same result shape at fluid fidelity.
    """
    if config.backend == "flowlevel":
        from ..flowsim.backend import run_multiflow_flowlevel

        return run_multiflow_flowlevel(config)
    if not config.flows:
        raise ConfigurationError("a multi-flow run needs at least one flow")
    topology, base_paths = config.build_scenario()
    if config.queue_kind is not None:
        topology.set_queue_kind(config.queue_kind)
    network = Network(topology)

    built: List[_BuiltFlow] = []
    for index, spec in enumerate(config.flows):
        name = spec.name or f"{spec.kind}-{index + 1}"
        if any(b.name == name for b in built):
            raise ConfigurationError(f"duplicate flow name {name!r}")
        flow = _BuiltFlow(spec, name, flow_id=index + 1, tag_base=index * TAG_STRIDE)
        _instantiate_flow(flow, network, base_paths, config)
        built.append(flow)

    if config.dynamics is not None:
        # After the flows: MPTCP connections register dynamics listeners at
        # construction and must see the events.  Empty specs register nothing.
        config.dynamics.apply(network)
    network.run(config.duration)

    start, end = config.warmup, config.duration
    interval = config.sampling_interval
    measured: List[Tuple[_BuiltFlow, TimeSeries, Dict[int, TimeSeries]]] = []
    for flow in built:
        series = throughput_timeseries(
            flow.capture, interval, start=start, end=end, label=flow.name
        )
        per_path: Dict[int, TimeSeries] = {}
        if flow.tag_map:
            namespaced = per_tag_timeseries(
                flow.capture, interval, start=start, end=end,
                tags=list(flow.tag_map.values()),
            )
            per_path = {
                original: namespaced[installed]
                for original, installed in flow.tag_map.items()
            }
        measured.append((flow, series, per_path))

    bottleneck_capacity = None
    if config.bottleneck_link is not None:
        bottleneck_capacity = topology.capacity_of(*config.bottleneck_link)
    fairness = analyze_fairness(
        {flow.name: series for flow, series, _ in measured},
        {flow.name: flow.spec.kind for flow, _, _ in measured},
        bottleneck_capacity_mbps=bottleneck_capacity,
    )
    # The fairness report is the single source of the per-flow (tail) means;
    # each FlowResult reads its mean back from there so the two never drift.
    results = [
        _flow_result(flow, series, per_path, config.duration, fairness.per_flow_mbps[flow.name])
        for flow, series, per_path in measured
    ]
    return MultiFlowResult(
        config=config,
        flows=results,
        fairness=fairness,
        drops=network.total_drops(),
        events_processed=network.sim.events_processed,
        signal_plane=signal_plane_report(network, config.duration),
    )


def _instantiate_flow(
    flow: _BuiltFlow,
    network: Network,
    base_paths: PathSet,
    config: MultiFlowConfig,
) -> None:
    spec = flow.spec
    src = spec.src or base_paths.src
    dst = spec.dst or base_paths.dst
    flow.capture = network.attach_capture(dst, data_only=True, flow_id=flow.flow_id)

    if spec.kind == "mptcp":
        raw = _coerce_path_objects(spec.paths) if spec.paths is not None else list(base_paths)
        paths = _retag_paths(raw, flow.tag_base)
        flow.tag_map = {
            (orig.tag if orig.tag is not None else i + 1): installed.tag
            for i, (orig, installed) in enumerate(zip(raw, paths))
        }
        flow.connection = MptcpConnection(
            network,
            src,
            dst,
            paths,
            congestion_control=spec.congestion_control or "lia",
            scheduler=spec.scheduler,
            default_path_index=spec.default_path_index,
            mss=spec.mss,
            ecn=config.ecn,
            total_bytes=spec.total_bytes,
            send_buffer_bytes=spec.send_buffer_bytes,
            join_delay=spec.join_delay,
            flow_id=flow.flow_id,
        )
        system = build_constraints(network.topology, paths)
        flow.optimum_mbps = max_total_throughput(system).total
        flow.connection.start(at=spec.start)
        return

    if spec.kind == "workload":
        from ..workload.packet import PacketWorkloadDriver

        raw = _coerce_path_objects(spec.paths) if spec.paths is not None else list(base_paths)
        paths = _retag_paths(raw, flow.tag_base)
        flow.tag_map = {
            (orig.tag if orig.tag is not None else i + 1): installed.tag
            for i, (orig, installed) in enumerate(zip(raw, paths))
        }
        plan = spec.workload.compile(len(paths))
        driver = PacketWorkloadDriver(
            network,
            plan,
            paths,
            src=src,
            dst=dst,
            transport="tcp",
            congestion_control=spec.congestion_control,
            mss=spec.mss,
            flow_id=flow.flow_id,
        )
        driver.install()
        flow.workload_driver = driver
        flow.workload_plan = plan
        flow.optimum_mbps = max_total_throughput(
            build_constraints(network.topology, paths)
        ).total
        return

    path = _single_path_for(spec, base_paths)
    tag = flow.tag_base + (path.tag if path.tag is not None else 1)
    network.install_path(path.nodes, tag)
    flow.tag_map = {(path.tag if path.tag is not None else 1): tag}

    if spec.kind == "tcp":
        flow.tcp = TcpConnection(
            network,
            src,
            dst,
            cc=spec.congestion_control or "cubic",
            tag=tag,
            mss=spec.mss,
            ecn=config.ecn,
            total_bytes=spec.total_bytes,
            flow_id=flow.flow_id,
        )
        flow.optimum_mbps = path.capacity(network.topology)
        flow.tcp.start(at=spec.start)
        return

    stop_at = spec.stop if spec.stop is not None else config.duration
    if spec.kind == "udp":
        flow.source = UdpConstantBitRate(
            network,
            src,
            dst,
            spec.rate_mbps,
            tag=tag,
            packet_size=spec.packet_size,
            flow_id=flow.flow_id,
        )
        flow.source.start(at=spec.start, stop_at=stop_at)
    else:  # onoff
        flow.source = OnOffSource(
            network,
            src,
            dst,
            spec.rate_mbps,
            on_duration=spec.on_duration,
            off_duration=spec.off_duration,
            tag=tag,
            packet_size=spec.packet_size,
            flow_id=flow.flow_id,
        )
        flow.source.start(at=spec.start, stop_at=stop_at)
    flow.optimum_mbps = min(spec.rate_mbps, path.capacity(network.topology))


def _flow_result(
    flow: _BuiltFlow,
    series: TimeSeries,
    per_path: Dict[int, TimeSeries],
    duration: float,
    mean: float,
) -> FlowResult:
    spec = flow.spec
    fct = None
    if flow.connection is not None:
        delivered = flow.connection.bytes_delivered
        retransmissions = flow.connection.total_retransmissions()
        stats = connection_stats(flow.connection, duration)
    elif flow.tcp is not None:
        delivered = flow.tcp.bytes_acked
        retransmissions = flow.tcp.sender.stats.retransmissions
        stats = None
    elif flow.workload_driver is not None:
        records = flow.workload_driver.records
        delivered = sum(record.size_bytes for record in records)
        retransmissions = 0
        stats = None
        fct = FctReport.from_records(
            records, offered=flow.workload_plan.total_transfers
        )
    else:
        delivered = flow.source.sink.bytes_received
        retransmissions = 0
        stats = None
    return FlowResult(
        spec=spec,
        name=flow.name,
        kind=spec.kind,
        flow_id=flow.flow_id,
        series=series,
        per_path_series=per_path,
        mean_mbps=mean,
        bytes_delivered=delivered,
        retransmissions=retransmissions,
        tag_map=dict(flow.tag_map),
        optimum_mbps=flow.optimum_mbps,
        stats=stats,
        fct=fct,
    )
