"""Terminal plotting of throughput time series.

The examples render the Fig. 2 panels directly in the terminal so a run of
``python examples/paper_topology.py`` shows the same qualitative picture as
the paper without needing matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..measure.sampling import TimeSeries

_MARKERS = "123456789*"


def ascii_chart(
    series: Sequence[TimeSeries],
    *,
    width: int = 72,
    height: int = 18,
    y_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render one or more time series as an ASCII chart.

    Each series is drawn with its own marker (``1``, ``2``, ...); overlapping
    points show the marker of the later series.
    """
    series = [s for s in series if len(s) > 0]
    if not series:
        return "(no data)"
    t_min = min(s.times[0] for s in series)
    t_max = max(s.times[-1] for s in series)
    if y_max is None:
        y_max = max(max(s.values) for s in series) or 1.0
    y_max *= 1.05

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for t, v in zip(s.times, s.values):
            if t_max == t_min:
                column = 0
            else:
                column = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = height - 1 - int(min(v, y_max) / y_max * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_max * (height - 1 - row_index) / (height - 1)
        lines.append(f"{y_value:7.1f} |{''.join(row)}")
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"{t_min:<10.2f}{'time [s]':^{max(width - 20, 10)}}{t_max:>10.2f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.label or f'series {i + 1}'}" for i, s in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def plot_figure(per_path: Dict[int, TimeSeries], total: TimeSeries, *, title: str = "") -> str:
    """Convenience wrapper: plot the per-path curves plus the total curve."""
    ordered = [per_path[tag] for tag in sorted(per_path)]
    for tag, s in zip(sorted(per_path), ordered):
        if not s.label:
            s.label = f"Path {tag}"
    total.label = total.label or "Total"
    return ascii_chart(ordered + [total], title=title)
