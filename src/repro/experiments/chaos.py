"""Deterministic fault injection for the campaign fabric.

Large sweeps die in ways unit tests of the happy path never exercise: a
worker process segfaults before flushing its result, a point wedges past any
reasonable wall-clock budget, a crashed writer leaves half a JSONL line at
the store's tail, or the simulation itself raises.  The fabric
(:mod:`repro.experiments.fabric`) recovers from all four -- and
:class:`ChaosSpec` exists so every one of those recovery paths is *driven* by
tests and CI rather than trusted.

A spec names grid-expansion indices per fault kind and fires deterministically:
the same spec against the same grid injects the same faults in the same
places, run after run.  Faults are attempt-aware -- by default a fault fires
only while a point has fewer than ``fire_attempts`` recorded failures, so a
retried point succeeds and the campaign converges; raising ``fire_attempts``
to the fabric's ``max_attempts`` exercises the quarantine path instead.

Fault kinds
-----------

``crash``
    The worker process exits hard (``os._exit``) *before* flushing its
    result: no record, no release -- exactly a killed container.
``hang``
    The worker sleeps past any per-point timeout; the fabric's watchdog must
    kill it and record ``status: "timeout"``.
``torn``
    The worker writes half a JSONL record (no newline) to the store's tail
    and then crashes, reproducing a mid-append death.
``error``
    The point fails with an injected exception -> ``status: "error"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import FabricError

#: Every fault kind a :class:`ChaosSpec` can inject, in severity order.
FAULT_KINDS = ("crash", "hang", "torn", "error")


def _normalized(indices: Sequence[int], kind: str) -> Tuple[int, ...]:
    cleaned = []
    for index in indices:
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise FabricError(
                f"chaos {kind} point index {index!r} must be a non-negative "
                "grid-expansion index"
            )
        cleaned.append(index)
    return tuple(sorted(set(cleaned)))


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded, deterministic fault-injection plan over a campaign grid.

    Point indices refer to the grid's expansion order
    (:meth:`~repro.experiments.campaign.CampaignSpec.expand`), which is
    stable for a given spec -- so a chaos plan addresses the same points on
    every invocation.  ``seed`` only matters for plans built with
    :meth:`sample`, which draws the faulted indices deterministically.
    """

    seed: int = 0
    crash_points: Tuple[int, ...] = ()
    hang_points: Tuple[int, ...] = ()
    torn_points: Tuple[int, ...] = ()
    error_points: Tuple[int, ...] = ()
    #: A fault fires while the point has fewer than this many recorded failed
    #: attempts; the default (1) faults only the first attempt, so retries
    #: succeed and the campaign converges to 100% completed.
    fire_attempts: int = 1
    #: How long an injected hang sleeps; must comfortably exceed the fabric's
    #: per-point timeout for the watchdog kill path to be the one exercised.
    hang_duration: float = 30.0
    _actions: Dict[int, str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.fire_attempts < 1:
            raise FabricError("chaos fire_attempts must be at least 1")
        if self.hang_duration <= 0:
            raise FabricError("chaos hang_duration must be positive")
        actions: Dict[int, str] = {}
        for kind in FAULT_KINDS:
            indices = _normalized(getattr(self, f"{kind}_points"), kind)
            object.__setattr__(self, f"{kind}_points", indices)
            for index in indices:
                if index in actions:
                    raise FabricError(
                        f"chaos point {index} is assigned both "
                        f"{actions[index]!r} and {kind!r}"
                    )
                actions[index] = kind
        object.__setattr__(self, "_actions", actions)

    # ------------------------------------------------------------------
    def action_for(self, index: int, attempt: int = 0) -> Optional[str]:
        """The fault (if any) to inject into this point's next execution.

        ``attempt`` is the point's number of already-recorded failed
        attempts; once it reaches ``fire_attempts`` the fault stops firing
        and the point runs clean.
        """
        if attempt >= self.fire_attempts:
            return None
        return self._actions.get(index)

    def faulted_indices(self) -> Tuple[int, ...]:
        """Every grid index this spec faults, across all kinds."""
        return tuple(sorted(self._actions))

    def describe(self) -> str:
        parts = [
            f"{kind}:{','.join(str(i) for i in getattr(self, f'{kind}_points'))}"
            for kind in FAULT_KINDS
            if getattr(self, f"{kind}_points")
        ]
        return "; ".join(parts) if parts else "no faults"

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        population: int,
        *,
        seed: int = 0,
        crashes: int = 0,
        hangs: int = 0,
        torn: int = 0,
        errors: int = 0,
        **overrides,
    ) -> "ChaosSpec":
        """Draw disjoint faulted indices deterministically from the seed.

        ``population`` is the grid size; the requested fault counts are
        sampled without replacement, so no point receives two faults.
        """
        total = crashes + hangs + torn + errors
        if total > population:
            raise FabricError(
                f"cannot fault {total} of {population} grid points"
            )
        picks = random.Random(seed).sample(range(population), total)
        cursor = 0
        groups = {}
        for kind, count in (
            ("crash", crashes),
            ("hang", hangs),
            ("torn", torn),
            ("error", errors),
        ):
            groups[f"{kind}_points"] = tuple(picks[cursor:cursor + count])
            cursor += count
        return cls(seed=seed, **groups, **overrides)

    @classmethod
    def parse(
        cls,
        entries: Sequence[str],
        *,
        seed: int = 0,
        fire_attempts: int = 1,
        hang_duration: float = 30.0,
    ) -> "ChaosSpec":
        """Build a spec from CLI-style ``kind=index`` entries.

        Example: ``["crash=0", "hang=2"]`` faults point 0 with a
        crash-before-flush and point 2 with a hang.
        """
        groups: Dict[str, list] = {kind: [] for kind in FAULT_KINDS}
        for entry in entries:
            kind, separator, raw_index = entry.partition("=")
            if not separator or kind not in FAULT_KINDS:
                raise FabricError(
                    f"bad chaos entry {entry!r}; expected KIND=INDEX with "
                    f"KIND one of {FAULT_KINDS}"
                )
            try:
                index = int(raw_index)
            except ValueError:
                raise FabricError(
                    f"bad chaos entry {entry!r}: index {raw_index!r} is not an integer"
                ) from None
            groups[kind].append(index)
        return cls(
            seed=seed,
            fire_attempts=fire_attempts,
            hang_duration=hang_duration,
            **{f"{kind}_points": tuple(indices) for kind, indices in groups.items()},
        )
