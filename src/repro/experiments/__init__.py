"""Experiment orchestration: harness, named scenarios and figure regeneration."""

from .ascii_plot import ascii_chart, plot_figure
from .figures import FigureData, fig2a_cubic, fig2b_olia, fig2c_fine, figure_with_algorithm
from .harness import (
    ExperimentConfig,
    ExperimentResult,
    paper_experiment,
    run_experiment,
    run_scenarios_parallel,
)
from .multiflow import (
    FlowResult,
    FlowSpec,
    MultiFlowConfig,
    MultiFlowResult,
    run_multiflow,
)
from .scenarios import (
    COMPETITION_SCENARIOS,
    DYNAMICS_SCENARIOS,
    capacity_step_tracking,
    cc_comparison,
    cross_traffic_perturbation,
    handover_subflow_migration,
    link_flap_failover,
    mptcp_vs_tcp_shared_bottleneck,
    olia_default_path_sweep,
    queue_size_sweep,
    scheduler_comparison,
    summarize_results,
    two_mptcp_competition,
    variant_comparison,
)

__all__ = [
    "COMPETITION_SCENARIOS",
    "DYNAMICS_SCENARIOS",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureData",
    "FlowResult",
    "FlowSpec",
    "MultiFlowConfig",
    "MultiFlowResult",
    "ascii_chart",
    "capacity_step_tracking",
    "cc_comparison",
    "cross_traffic_perturbation",
    "fig2a_cubic",
    "fig2b_olia",
    "fig2c_fine",
    "figure_with_algorithm",
    "handover_subflow_migration",
    "link_flap_failover",
    "mptcp_vs_tcp_shared_bottleneck",
    "olia_default_path_sweep",
    "paper_experiment",
    "plot_figure",
    "queue_size_sweep",
    "run_experiment",
    "run_multiflow",
    "run_scenarios_parallel",
    "scheduler_comparison",
    "summarize_results",
    "two_mptcp_competition",
    "variant_comparison",
]
