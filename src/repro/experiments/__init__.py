"""Experiment orchestration: harness, named scenarios and figure regeneration."""

from .ascii_plot import ascii_chart, plot_figure
from .figures import FigureData, fig2a_cubic, fig2b_olia, fig2c_fine, figure_with_algorithm
from .harness import (
    ExperimentConfig,
    ExperimentResult,
    paper_experiment,
    run_experiment,
    run_scenarios_parallel,
)
from .scenarios import (
    cc_comparison,
    olia_default_path_sweep,
    queue_size_sweep,
    scheduler_comparison,
    summarize_results,
    variant_comparison,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FigureData",
    "ascii_chart",
    "cc_comparison",
    "fig2a_cubic",
    "fig2b_olia",
    "fig2c_fine",
    "figure_with_algorithm",
    "olia_default_path_sweep",
    "paper_experiment",
    "plot_figure",
    "queue_size_sweep",
    "run_experiment",
    "run_scenarios_parallel",
    "scheduler_comparison",
    "summarize_results",
    "variant_comparison",
]
