"""Fault-tolerant campaign fabric: leases, watchdogs, retries, store merge.

:func:`~repro.experiments.campaign.run_campaign` assumes one well-behaved
process: a crashed worker strands its chunk, a hung point stalls the sweep
forever, error records retry unconditionally, and two concurrent invocations
race each other on the same store.  This module upgrades the same
content-hashed JSONL store to a cooperative *fabric* that many workers can
share:

* **Leases** (:class:`LeaseManager`): before executing a point, a worker
  appends a claim record (worker id + monotonic deadline) to the store.
  Live leases keep other workers off the point; a worker that dies stops
  renewing, its leases go stale, and the points become re-claimable.  Claim
  races resolve by append order -- ``O_APPEND`` gives every reader the same
  total order, so racing workers independently agree on the winner.
* **Watchdog timeouts**: each point runs under
  :func:`~repro.experiments.harness.run_scenarios_guarded` with an optional
  per-point wall-clock budget; hung points are killed and recorded as
  ``status: "timeout"``, crashed workers as a retryable ``error``.
* **Bounded retry**: failures back off exponentially with deterministic
  jitter (:func:`backoff_delay`) and re-run until ``max_attempts``, after
  which the point is quarantined -- terminal, surfaced in the summary, and
  never run again.
* **Merge/compaction** (:func:`merge_stores`): shard stores from many
  workers combine into one compacted store with one record per key --
  completed results beat quarantines beat retryable failures, ties resolve
  last-writer-wins, lease records are dropped.

Every recovery path is exercised deterministically through
:mod:`repro.experiments.chaos` rather than trusted.
"""

from __future__ import annotations

import os
import pathlib
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, FabricError, LeaseError
from .campaign import (
    LEASE_RECORD_TYPE,
    RETRYABLE_STATUSES,
    TERMINAL_STATUSES,
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    ResultStore,
    _chunks,
    _classify_existing,
    _execute_point,
    _finalize_record,
)
from .chaos import ChaosSpec
from .harness import run_scenarios_guarded

#: Exit code of a chaos-injected crash-before-flush (diagnosable in CI logs).
CHAOS_CRASH_EXIT = 23
#: Exit code of a chaos-injected torn-tail write followed by a crash.
CHAOS_TORN_EXIT = 24


# ------------------------------------------------------------------ config
@dataclass(frozen=True)
class FabricConfig:
    """Operational envelope of one fabric worker invocation."""

    #: Stable identity of this worker in lease records; empty means one is
    #: derived from the process id at run time.
    worker_id: str = ""
    #: Seconds a claim stays live without renewal; the watchdog heartbeat
    #: renews at ``lease_ttl / 3``, so a worker must miss two renewals
    #: before its points become re-claimable.
    lease_ttl: float = 30.0
    #: Total failed attempts (across invocations) before a point quarantines.
    max_attempts: int = 3
    #: Per-point wall-clock budget; ``None`` disables the kill path.
    point_timeout: Optional[float] = None
    #: First-retry backoff in seconds; doubles per failed attempt.
    backoff_base: float = 0.5
    #: Ceiling of the exponential backoff (before jitter).
    backoff_cap: float = 30.0
    #: Jitter fraction: the delay stretches by up to this fraction, drawn
    #: deterministically from ``(seed, point key, attempt)``.
    backoff_jitter: float = 0.5
    #: Seed of the deterministic backoff jitter.
    seed: int = 0
    #: Stop after this many claim/execute rounds even if retryable points
    #: remain (``None`` = run until every point is terminal).  One-round
    #: invocations suit cron-style drivers: each tick claims, executes, and
    #: leaves the rest for the next tick or another worker.
    max_rounds: Optional[int] = None
    #: Watchdog poll (and idle wait) granularity in seconds.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise LeaseError("lease_ttl must be positive")
        if self.max_attempts < 1:
            raise FabricError("max_attempts must be at least 1")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise FabricError("point_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_jitter < 0:
            raise FabricError("backoff parameters must be non-negative")
        if self.backoff_cap < self.backoff_base:
            raise FabricError("backoff_cap must be at least backoff_base")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise FabricError("max_rounds must be at least 1")

    def resolved_worker_id(self) -> str:
        return self.worker_id or f"worker-{os.getpid()}"


def backoff_delay(
    attempts: int,
    *,
    base: float,
    cap: float,
    jitter: float,
    seed: int = 0,
    key: str = "",
) -> float:
    """Exponential backoff with deterministic jitter.

    The un-jittered delay is ``base * 2**(attempts - 1)`` capped at ``cap``;
    jitter stretches it by up to ``jitter`` fraction, drawn from a RNG
    seeded with ``(seed, key, attempts)`` -- deterministic for tests, yet
    de-synchronised across points and attempts so retries do not stampede.
    """
    if base <= 0.0 or attempts < 1:
        return 0.0
    delay = min(cap, base * (2.0 ** (attempts - 1)))
    if jitter > 0.0:
        rng = random.Random(f"{seed}:{key}:{attempts}")
        delay *= 1.0 + jitter * rng.random()
    return delay


# ------------------------------------------------------------------ leases
class LeaseManager:
    """Cooperative lease records over one append-only JSONL store.

    A lease is the last ``record_type: "lease"`` line for a key: it names
    the owning ``worker`` and a clock ``deadline`` after which it is stale.
    All mutations are plain appends (``claim`` / ``renew`` / ``release``),
    so the protocol inherits the store's crash-safety: no in-place state, a
    dead worker simply stops renewing.  Deadlines come from an injectable
    monotonic clock shared by every worker on the host.
    """

    def __init__(
        self,
        store: ResultStore,
        worker_id: str,
        ttl: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl <= 0:
            raise LeaseError("lease ttl must be positive")
        if not worker_id:
            raise LeaseError("a lease needs a non-empty worker id")
        self.store = store
        self.worker_id = worker_id
        self.ttl = float(ttl)
        self.clock = clock
        self.held: set = set()

    # ------------------------------------------------------------------
    @staticmethod
    def is_live(lease: Optional[dict], now: float) -> bool:
        if lease is None or lease.get("op") == "release":
            return False
        return float(lease.get("deadline", 0.0)) > now

    def _claimable(self, lease: Optional[dict], now: float) -> bool:
        if lease is None or lease.get("worker") == self.worker_id:
            return True
        return not self.is_live(lease, now)  # stale leases are re-claimable

    def _append(self, key: str, op: str, deadline: float) -> None:
        self.store.append(
            {
                "record_type": LEASE_RECORD_TYPE,
                "key": key,
                "worker": self.worker_id,
                "op": op,
                "deadline": round(float(deadline), 6),
            }
        )

    # ------------------------------------------------------------------
    def live_leases(self) -> Dict[str, dict]:
        """Current live leases per key (stale and released ones excluded)."""
        now = self.clock()
        return {
            key: lease
            for key, lease in self.store.load_leases().items()
            if self.is_live(lease, now)
        }

    def claim(self, keys: Sequence[str]) -> List[str]:
        """Claim every key not live-leased by another worker.

        Appends claim records, then re-reads the store and keeps only the
        keys whose *winning* (last-appended) lease is ours: two workers
        racing on the same key both observe the same append order and agree
        on a single winner, so at most one proceeds.
        """
        now = self.clock()
        leases = self.store.load_leases()
        candidates = [key for key in keys if self._claimable(leases.get(key), now)]
        if not candidates:
            return []
        deadline = now + self.ttl
        for key in candidates:
            self._append(key, "claim", deadline)
        final = self.store.load_leases()
        won = [
            key
            for key in candidates
            if final.get(key, {}).get("worker") == self.worker_id
            and self.is_live(final[key], now)
        ]
        self.held.update(won)
        return won

    def renew(self, keys: Sequence[str], *, strict: bool = True) -> List[str]:
        """Heartbeat: extend the deadline of leases this worker still owns.

        Returns the renewed keys.  A key whose current lease belongs to
        another worker (ours expired and was reclaimed) raises
        :class:`LeaseError` when ``strict``; otherwise it is silently
        dropped from ``held`` -- the reclaiming worker owns it now.
        """
        now = self.clock()
        leases = self.store.load_leases()
        renewed = []
        for key in keys:
            current = leases.get(key)
            if current is None or current.get("worker") != self.worker_id:
                self.held.discard(key)
                if strict:
                    owner = current.get("worker") if current else "nobody"
                    raise LeaseError(
                        f"worker {self.worker_id!r} lost the lease on {key} "
                        f"to {owner!r}"
                    )
                continue
            self._append(key, "renew", now + self.ttl)
            renewed.append(key)
        return renewed

    def release(self, keys: Sequence[str]) -> None:
        for key in keys:
            self._append(key, "release", 0.0)
            self.held.discard(key)


class _Heartbeat:
    """Watchdog tick hook: renews the in-flight chunk's leases periodically."""

    def __init__(self, leases: LeaseManager, keys: Sequence[str]) -> None:
        self.leases = leases
        self.keys = set(keys)
        self.interval = leases.ttl / 3.0
        self.last = leases.clock()

    def __call__(self) -> None:
        now = self.leases.clock()
        if now - self.last < self.interval or not self.keys:
            return
        self.last = now
        renewed = self.leases.renew(sorted(self.keys), strict=False)
        self.keys &= set(renewed)


# ------------------------------------------------------------------ execution
@dataclass
class _FabricTask:
    """One point plus its chaos action, picklable for the guarded runner."""

    point: CampaignPoint
    chaos_action: Optional[str] = None
    hang_duration: float = 30.0
    store_path: str = ""
    timeout: Optional[float] = None


def _write_torn_tail(store_path: str, key: str) -> None:
    """Append half a JSONL record with no newline -- a mid-append crash."""
    fragment = '{"key": "%s", "status": "ok", "summary"' % key
    fd = os.open(store_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, fragment.encode("utf-8"))
    finally:
        os.close(fd)


def _error_record(point: CampaignPoint, status: str, message: str) -> dict:
    return {
        "key": point.key,
        "params": dict(point.params),
        "status": status,
        "error": message,
    }


def _execute_fabric_task(task: _FabricTask) -> dict:
    """Worker-process body: inject the chaos action, then run the point."""
    action = task.chaos_action
    if action == "crash":
        os._exit(CHAOS_CRASH_EXIT)  # crash-before-flush: no record, no release
    if action == "torn":
        _write_torn_tail(task.store_path, task.point.key)
        os._exit(CHAOS_TORN_EXIT)
    if action == "hang":
        time.sleep(task.hang_duration)  # the watchdog kills us first
    if action == "error":
        return _error_record(
            task.point, "error", "ChaosInjectedError: injected point failure"
        )
    return _execute_point(task.point)


def _execute_fabric_task_serial(task: _FabricTask) -> dict:
    """In-process fallback: simulate the fatal chaos actions instead of dying."""
    action = task.chaos_action
    if action == "crash":
        return _error_record(
            task.point, "error", "WorkerCrash: chaos crash (simulated in-process)"
        )
    if action == "torn":
        _write_torn_tail(task.store_path, task.point.key)
        return _error_record(
            task.point, "error", "WorkerCrash: chaos torn-tail crash (simulated)"
        )
    if action == "hang":
        if task.timeout is not None:
            return _timeout_record(task, task.timeout)
        time.sleep(task.hang_duration)
    if action == "error":
        return _error_record(
            task.point, "error", "ChaosInjectedError: injected point failure"
        )
    return _execute_point(task.point)


def _timeout_record(task: _FabricTask, timeout: float) -> dict:
    return _error_record(
        task.point,
        "timeout",
        f"PointTimeout: exceeded the {timeout:g}s wall-clock budget",
    )


def _crash_record(task: _FabricTask, reason: str) -> dict:
    return _error_record(task.point, "error", f"WorkerCrash: {reason}")


# ------------------------------------------------------------------ fabric run
def run_campaign_fabric(
    spec: CampaignSpec,
    store: Union[str, pathlib.Path, ResultStore],
    *,
    fabric: Optional[FabricConfig] = None,
    chaos: Optional[ChaosSpec] = None,
    chunk_size: int = 4,
    max_workers: Optional[int] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> CampaignResult:
    """Drive a campaign grid to terminal state under the fault-tolerant fabric.

    Per round, the worker claims a chunk of due points (skipping points
    live-leased to other workers), executes them under the watchdog with
    per-point timeouts and lease-renewing heartbeats, appends the finalized
    records (attempt counters, quarantine on exhaustion) and releases the
    leases.  Failed points re-enter the queue after an exponentially
    backed-off, jittered delay; the invocation returns when every point is
    terminal (completed or quarantined), when only foreign-leased points
    remain un-runnable, or after ``fabric.max_rounds`` rounds.

    ``chaos`` deterministically injects worker crashes, hangs, torn tail
    writes and raised errors at chosen grid indices -- the test harness for
    every recovery path above.  ``clock`` and ``sleep`` are injectable for
    deterministic tests and default to :func:`time.monotonic` /
    :func:`time.sleep`.
    """
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be at least 1")
    fabric = fabric or FabricConfig()
    clock = clock or time.monotonic
    sleep = sleep or time.sleep
    store = store if isinstance(store, ResultStore) else ResultStore(store)
    worker = fabric.resolved_worker_id()
    leases = LeaseManager(store, worker, fabric.lease_ttl, clock=clock)

    points = spec.expand()
    index_by_key = {point.key: index for index, point in enumerate(points)}
    existing = store.load() if resume else {}
    done, attempts = _classify_existing(points, existing, store, fabric.max_attempts)
    # Latest known record per point, terminal or not -- failures that are
    # still pending when the invocation returns (max_rounds, deferral) must
    # surface in the result, not just in the store.
    latest: Dict[str, dict] = {
        key: existing[key] for key in attempts if key in existing
    }
    latest.update(done)
    pending: Dict[str, CampaignPoint] = {
        point.key: point for point in points if point.key not in done
    }
    total_pending = len(pending)
    ready_at: Dict[str, float] = {key: 0.0 for key in pending}
    executed = 0
    rounds = 0
    ever_deferred = False
    if progress is not None:
        progress(0, total_pending)

    def report_progress() -> None:
        if progress is not None:
            settled = total_pending - len(pending)
            progress(settled, total_pending)

    def adopt_foreign_results() -> None:
        """Fold in points another worker finished while we were deferred."""
        refreshed = store.load()
        for key in list(pending):
            record = refreshed.get(key)
            if record is not None and record.get("status") in TERMINAL_STATUSES:
                done[key] = record
                latest[key] = record
                pending.pop(key)
                ready_at.pop(key)

    while pending:
        if fabric.max_rounds is not None and rounds >= fabric.max_rounds:
            break
        rounds += 1
        if ever_deferred:
            adopt_foreign_results()
            if not pending:
                break
        now = clock()
        due = [key for key in pending if ready_at[key] <= now]
        if not due:
            wake = min(ready_at[key] for key in pending)
            sleep(max(wake - now, fabric.poll_interval))
            continue
        progressed = False
        for chunk in _chunks(due, chunk_size):
            claimed = leases.claim(chunk)
            lost = set(chunk) - set(claimed)
            if lost:
                # Foreign live leases: come back when they can have expired.
                ever_deferred = True
                foreign = leases.live_leases()
                for key in lost:
                    lease = foreign.get(key)
                    ready_at[key] = (
                        float(lease["deadline"]) if lease else clock()
                    ) + fabric.poll_interval
            if not claimed:
                continue
            progressed = True
            tasks = [
                _FabricTask(
                    point=pending[key],
                    chaos_action=(
                        None
                        if chaos is None
                        else chaos.action_for(
                            index_by_key[key], attempts.get(key, 0)
                        )
                    ),
                    hang_duration=(
                        chaos.hang_duration if chaos is not None else 30.0
                    ),
                    store_path=str(store.path),
                    timeout=fabric.point_timeout,
                )
                for key in claimed
            ]
            heartbeat = _Heartbeat(leases, claimed)
            records = run_scenarios_guarded(
                tasks,
                runner=_execute_fabric_task,
                serial_runner=_execute_fabric_task_serial,
                timeout=fabric.point_timeout,
                max_workers=max_workers,
                on_timeout=lambda task: _timeout_record(task, fabric.point_timeout),
                on_crash=_crash_record,
                poll_interval=fabric.poll_interval,
                tick=heartbeat,
            )
            for task, record in zip(tasks, records):
                key = task.point.key
                record = _finalize_record(
                    record, attempts, fabric.max_attempts, worker=worker
                )
                store.append(record)
                leases.release([key])
                executed += 1
                latest[key] = record
                if record.get("status") in TERMINAL_STATUSES:
                    done[key] = record
                    pending.pop(key)
                    ready_at.pop(key)
                else:
                    ready_at[key] = clock() + backoff_delay(
                        attempts[key],
                        base=fabric.backoff_base,
                        cap=fabric.backoff_cap,
                        jitter=fabric.backoff_jitter,
                        seed=fabric.seed,
                        key=key,
                    )
            report_progress()
        if not progressed:
            if not ever_deferred:  # pragma: no cover - defensive
                raise FabricError("fabric made no progress on unleased points")
            # Everything due is foreign-leased; if nothing can free up
            # before our own backoffs, yield this invocation.
            adopt_foreign_results()
            if pending and all(
                key in leases.live_leases() for key in pending
            ):
                break
            if pending:
                sleep(fabric.poll_interval)

    return CampaignResult(
        spec=spec,
        store_path=store.path,
        points=points,
        records=[latest[point.key] for point in points if point.key in latest],
        executed=executed,
        skipped=len(points) - total_pending,
        deferred=len(pending),
    )


# ------------------------------------------------------------------ merge
_STATUS_RANK = {"ok": 3, "quarantined": 2, "timeout": 1, "error": 1}


@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_stores` wrote: one compacted record per key."""

    path: pathlib.Path
    sources: Tuple[str, ...]
    keys: int
    completed: int
    quarantined: int
    retryable: int
    dropped_leases: int

    def as_dict(self) -> dict:
        return {
            "path": str(self.path),
            "sources": list(self.sources),
            "keys": self.keys,
            "completed": self.completed,
            "quarantined": self.quarantined,
            "retryable": self.retryable,
            "dropped_leases": self.dropped_leases,
        }


def merge_stores(
    sources: Sequence[Union[str, pathlib.Path]],
    dest: Union[str, pathlib.Path],
) -> MergeReport:
    """Merge shard stores into one compacted store with no duplicate keys.

    For each key the best record wins: a completed (``ok``) result beats a
    quarantine beats a retryable failure; among equals the *last-written*
    record wins (sources in argument order, lines in file order), so two
    workers' shards merge to the same result regardless of which also holds
    stale earlier attempts.  Lease records and torn lines are dropped; the
    output is written atomically (temp file + rename) and sorted by key, so
    merging is idempotent and ``dest`` may be one of the sources
    (in-place compaction).
    """
    source_paths = [pathlib.Path(source) for source in sources]
    if not source_paths:
        raise FabricError("merge_stores needs at least one source store")
    for source in source_paths:
        if not source.exists():
            raise FabricError(f"cannot merge missing store {source}")
    best: Dict[str, Tuple[int, int, dict]] = {}
    dropped_leases = 0
    sequence = 0
    for source in source_paths:
        for record in ResultStore(source).iter_records():
            if record.get("record_type") == LEASE_RECORD_TYPE:
                dropped_leases += 1
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            sequence += 1
            rank = _STATUS_RANK.get(record.get("status"), 0)
            current = best.get(key)
            if current is None or rank >= current[0]:
                best[key] = (rank, sequence, record)
    dest = pathlib.Path(dest)
    temp = dest.with_name(dest.name + ".merge-tmp")
    if temp.exists():
        temp.unlink()
    temp_store = ResultStore(temp)
    statuses = {"ok": 0, "quarantined": 0}
    retryable = 0
    for key in sorted(best):
        record = best[key][2]
        status = record.get("status")
        if status in statuses:
            statuses[status] += 1
        elif status in RETRYABLE_STATUSES:
            retryable += 1
        temp_store.append(record)
    if not best:
        temp.touch()
    os.replace(temp, dest)
    return MergeReport(
        path=dest,
        sources=tuple(str(source) for source in source_paths),
        keys=len(best),
        completed=statuses["ok"],
        quarantined=statuses["quarantined"],
        retryable=retryable,
        dropped_leases=dropped_leases,
    )


__all__ = [
    "CHAOS_CRASH_EXIT",
    "CHAOS_TORN_EXIT",
    "ChaosSpec",
    "FabricConfig",
    "LeaseManager",
    "MergeReport",
    "backoff_delay",
    "merge_stores",
    "run_campaign_fabric",
]
