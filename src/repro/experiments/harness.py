"""Experiment harness: configure, run and post-process one MPTCP measurement.

This is the programmatic equivalent of the paper's measurement procedure
(Section 2.2): build the Mininet-like network, pin the subflows to the
pre-selected tagged paths, generate bulk traffic, capture packets with the
tshark substitute at the receiver, filter by tag and bin into throughput time
series, and compare the result against the analytical optimum.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.connection import MptcpConnection
from ..core.path_manager import PathManager
from ..errors import ConfigurationError
from ..measure.convergence import ConvergenceReport, analyze_convergence
from ..measure.dynamics import DynamicsReport, analyze_dynamics
from ..measure.flowstats import ConnectionStats, connection_stats
from ..measure.sampling import TimeSeries, per_tag_timeseries, total_timeseries
from ..measure.signalplane import SignalPlaneReport, signal_plane_report
from ..model.bottleneck import ConstraintSystem, build_constraints
from ..model.lp import LpResult, max_total_throughput
from ..model.paths import PathSet
from ..netsim.dynamics import DynamicsSpec
from ..netsim.network import Network
from ..netsim.topology import Topology
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from ..units import DEFAULT_MSS

ScenarioBuilder = Callable[[], Tuple[Topology, PathSet]]


@dataclass
class ExperimentConfig:
    """Configuration of one measurement run.

    The defaults reproduce the paper's setup: the Fig. 1a topology, three
    tagged subflows with Path 2 as the default path, a greedy bulk source and
    100 ms receiver-side sampling.
    """

    name: str = "paper"
    scenario: Union[ScenarioBuilder, Tuple[Topology, PathSet], None] = None
    congestion_control: str = "cubic"
    scheduler: str = "minrtt"
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX
    duration: float = 4.0
    sampling_interval: float = 0.1
    mss: int = DEFAULT_MSS
    join_delay: float = 0.0
    send_buffer_bytes: Optional[int] = None
    total_bytes: Optional[int] = None
    warmup: float = 0.0
    paper_variant: str = "as_stated"
    #: Optional custom subflow lifecycle (e.g. FailoverPathManager for
    #: handover scenarios); when set, the scenario's paths are still used
    #: for capture tagging and the LP optimum but the manager decides which
    #: subflows open, and when.
    path_manager: Optional[PathManager] = None
    #: Optional time-varying network events; an empty/None spec costs
    #: nothing and leaves static runs byte-identical.
    dynamics: Optional[DynamicsSpec] = None
    #: Which simulation fidelity runs this configuration: ``"packet"`` (the
    #: per-segment simulator, the ground truth) or ``"flowlevel"`` (the
    #: fluid backend in :mod:`repro.flowsim`, for many-flow scale).
    backend: str = "packet"
    #: Rate-sharing rule for the flow-level backend
    #: (:data:`repro.flowsim.allocator.ALLOCATORS`); ignored at packet level.
    flow_allocator: str = "maxmin"
    #: Queue discipline forced onto every link of the scenario topology
    #: (:data:`repro.netsim.queues.QUEUE_KINDS`); ``None`` keeps whatever
    #: the scenario builder declared (drop-tail everywhere by default).
    queue_kind: Optional[str] = None
    #: ECN-capable transport: senders mark segments ECT, AQM queues CE-mark
    #: instead of dropping, and the ECE echo drives ``cc.on_ecn``.
    ecn: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        from ..flowsim.backend import BACKENDS
        from ..netsim.queues import QUEUE_KINDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.queue_kind is not None and self.queue_kind not in QUEUE_KINDS:
            raise ConfigurationError(
                f"unknown queue discipline {self.queue_kind!r}; "
                f"choose from {QUEUE_KINDS}"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this configuration with some fields replaced."""
        return replace(self, **kwargs)

    def build_scenario(self) -> Tuple[Topology, PathSet]:
        if self.scenario is None:
            return paper_scenario(self.paper_variant)
        if callable(self.scenario):
            return self.scenario()
        return self.scenario


@dataclass
class ExperimentResult:
    """Everything produced by one run."""

    config: ExperimentConfig
    per_path_series: Dict[int, TimeSeries]
    total_series: TimeSeries
    optimum: LpResult
    convergence: ConvergenceReport
    stats: ConnectionStats
    constraint_system: ConstraintSystem
    drops: int
    events_processed: int
    #: Present when the run's dynamics spec declares measurement epochs
    #: (scheduled events or explicit ones) or a capacity profile.
    dynamics: Optional[DynamicsReport] = None
    #: Congestion-signal counters of the run (ECN marks, early/full drops,
    #: queueing delay); None only for results predating the signal plane.
    signal_plane: Optional[SignalPlaneReport] = None

    # ------------------------------------------------------------------
    @property
    def achieved_total_mbps(self) -> float:
        """Mean total throughput over the second half of the run."""
        return self.convergence.achieved_mean

    @property
    def optimal_total_mbps(self) -> float:
        return self.optimum.total

    @property
    def utilization_of_optimum(self) -> float:
        return self.convergence.utilization_of_optimum

    def path_series(self, tag: int) -> TimeSeries:
        return self.per_path_series[tag]

    def summary(self) -> dict:
        summary = {
            "name": self.config.name,
            "congestion_control": self.config.congestion_control,
            "scheduler": self.config.scheduler,
            "default_path_index": self.config.default_path_index,
            "duration_s": self.config.duration,
            "optimum_mbps": round(self.optimum.total, 3),
            "achieved_mean_mbps": round(self.achieved_total_mbps, 3),
            "utilization_of_optimum": round(self.utilization_of_optimum, 4),
            "reached_optimum": self.convergence.reached_optimum,
            "time_to_optimum_s": self.convergence.time_to_optimum,
            "stability_cv": round(self.convergence.stability_cv, 4),
            "drops": self.drops,
            "retransmissions": self.stats.retransmissions,
        }
        if self.config.queue_kind is not None:
            summary["queue_kind"] = self.config.queue_kind
        if self.config.ecn:
            summary["ecn"] = True
        if self.signal_plane is not None:
            summary["signal_plane"] = self.signal_plane.as_dict()
        if self.dynamics is not None:
            summary["dynamics"] = self.dynamics.as_dict()
        return summary


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one measurement and return its post-processed result.

    Dispatches on ``config.backend``: the packet-level simulator below, or
    the flow-level twin (:func:`repro.flowsim.backend.run_experiment_flowlevel`)
    returning the same result shape at fluid fidelity.
    """
    if config.backend == "flowlevel":
        from ..flowsim.backend import run_experiment_flowlevel

        return run_experiment_flowlevel(config)
    topology, paths = config.build_scenario()
    if config.queue_kind is not None:
        topology.set_queue_kind(config.queue_kind)
    network = Network(topology)
    capture = network.attach_capture(paths.dst, data_only=True)

    connection = MptcpConnection(
        network,
        paths.src,
        paths.dst,
        None if config.path_manager is not None else paths,
        congestion_control=config.congestion_control,
        scheduler=config.scheduler,
        path_manager=config.path_manager,
        default_path_index=config.default_path_index,
        mss=config.mss,
        ecn=config.ecn,
        total_bytes=config.total_bytes,
        send_buffer_bytes=config.send_buffer_bytes,
        join_delay=config.join_delay,
    )
    connection.start(at=0.0)
    if config.dynamics is not None:
        # Registered after the connection so its dynamics listener sees the
        # events; an empty spec registers nothing.
        config.dynamics.apply(network)
    network.run(config.duration)

    start = config.warmup
    end = config.duration
    tags = [path.tag for path in paths]
    per_path = per_tag_timeseries(
        capture, config.sampling_interval, start=start, end=end, tags=tags
    )
    total = total_timeseries(capture, config.sampling_interval, start=start, end=end)

    system = build_constraints(topology, paths)
    optimum = max_total_throughput(system)
    convergence = analyze_convergence(total, optimum.total)
    stats = connection_stats(connection, config.duration)
    dynamics_report = None
    spec = config.dynamics
    if spec is not None and (spec.measurement_epochs() or spec.capacity_profile):
        # Epochs or a capacity profile may also describe events driven
        # outside the Schedule; an entirely empty spec yields no report.
        dynamics_report = analyze_dynamics(total, spec)

    return ExperimentResult(
        config=config,
        per_path_series=per_path,
        total_series=total,
        optimum=optimum,
        convergence=convergence,
        stats=stats,
        constraint_system=system,
        drops=network.total_drops(),
        events_processed=network.sim.events_processed,
        dynamics=dynamics_report,
        signal_plane=signal_plane_report(network, config.duration),
    )


class ScenarioPool:
    """Reusable worker pool for chunked scenario sweeps.

    :func:`run_scenarios_parallel` tears its process pool down after every
    call, which is fine for one-shot sweeps but dominates the cost of small
    campaign chunks: a four-point chunk pays worker spawn plus interpreter
    import on every chunk.  ``ScenarioPool`` keeps the workers alive across
    :meth:`map` calls so a chunked campaign pays the startup cost once,
    while preserving the same fallbacks (serial when multiprocessing is
    unavailable or the payload cannot be pickled) and in-order results.

    ``expected`` is the total number of configurations the pool will see
    across all calls; a pool that will only ever run one configuration (or
    ``max_workers=1``) stays serial and never spawns workers.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        runner: Callable = run_experiment,
        expected: Optional[int] = None,
    ) -> None:
        self._max_workers = max_workers
        self._runner = runner
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial = max_workers == 1 or (expected is not None and expected <= 1)

    def map(self, configs: Sequence) -> List:
        """Run ``configs`` through the runner, in order; reuses live workers."""
        configs = list(configs)
        if not configs:
            return []
        runner = self._runner
        if not self._serial:
            try:
                # Probe picklability up front (a `scenario` lambda is the
                # common offender) so that real errors raised *inside* the
                # runner are never mistaken for multiprocessing limitations.
                pickle.dumps((runner, configs))
            except Exception:
                # This payload cannot cross the process boundary; the next
                # chunk might, so stay parallel-capable.
                return [runner(config) for config in configs]
            try:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
                return list(self._pool.map(runner, configs))
            except (BrokenProcessPool, PermissionError, OSError):
                # No subprocess support (restricted sandbox): run in-process
                # from here on.
                self._serial = True
                self.close()
        return [runner(config) for config in configs]

    def close(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown()
            except Exception:
                pass

    def __enter__(self) -> "ScenarioPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_scenarios_parallel(
    configs: Sequence,
    *,
    max_workers: Optional[int] = None,
    runner: Callable = run_experiment,
) -> List:
    """Run a scenario sweep, fanning the runs across worker processes.

    Each configuration is an independent simulation, so figure-style
    multi-scenario sweeps scale with cores.  Results come back in the order
    of ``configs``.  ``runner`` maps one configuration to its result
    (:func:`run_experiment` by default; the campaign layer substitutes its
    own point executor) and must be a module-level callable to cross the
    process boundary.

    Falls back to running serially when multiprocessing is unavailable
    (restricted sandboxes) or when a configuration cannot be pickled (e.g. a
    ``scenario`` lambda); module-level scenario builders keep configurations
    picklable.  Callers issuing many small batches should hold a
    :class:`ScenarioPool` instead, which amortises worker startup.
    """
    configs = list(configs)
    with ScenarioPool(
        max_workers=max_workers, runner=runner, expected=len(configs)
    ) as pool:
        return pool.map(configs)


def _guarded_child(conn, runner: Callable, config) -> None:
    """Child-process body for :func:`run_scenarios_guarded`.

    Ships the runner's result (or a stringified failure) back over the pipe;
    a process that dies before sending anything is detected by the parent's
    watchdog as a crash.
    """
    try:
        conn.send(("result", runner(config)))
    except BaseException as error:  # noqa: BLE001 - report, then let the child die
        try:
            conn.send(("raised", f"{type(error).__name__}: {error}"))
        except Exception:
            pass
    finally:
        conn.close()


def run_scenarios_guarded(
    configs: Sequence,
    *,
    runner: Callable = run_experiment,
    timeout: Optional[float] = None,
    max_workers: Optional[int] = None,
    on_timeout: Optional[Callable] = None,
    on_crash: Optional[Callable] = None,
    serial_runner: Optional[Callable] = None,
    poll_interval: float = 0.05,
    tick: Optional[Callable[[], None]] = None,
) -> List:
    """Watchdog-supervised variant of :func:`run_scenarios_parallel`.

    Each configuration runs in its **own** worker process (bounded by
    ``max_workers`` concurrent children) while the parent polls result pipes,
    liveness and per-point deadlines:

    * a point exceeding ``timeout`` wall-clock seconds is killed
      (``terminate``) and replaced by ``on_timeout(config)``;
    * a child that dies without reporting -- crash, OOM-kill, ``os._exit``
      -- is replaced by ``on_crash(config, reason)``;
    * ``tick`` (if given) is called on every poll sweep, which is where the
      campaign fabric renews its leases while long points run.

    This is the enforcement layer under the fabric's per-point budgets: a
    pool-based map cannot kill a wedged task, a dedicated process can.
    Results come back in ``configs`` order.  When worker processes are
    unavailable (restricted sandboxes, unpicklable runners) the scenarios
    run serially via ``serial_runner`` (default: ``runner``); real hangs
    cannot be killed in-process, but a point whose serial run exceeded the
    budget is still reported through ``on_timeout``.
    """
    configs = list(configs)
    if not configs:
        return []
    if timeout is not None and timeout <= 0:
        raise ConfigurationError("watchdog timeout must be positive")
    if timeout is not None and on_timeout is None:
        raise ConfigurationError("a timeout needs an on_timeout record factory")

    def run_serial() -> List:
        fallback = serial_runner or runner
        results = []
        for config in configs:
            started = time.monotonic()
            result = fallback(config)
            if timeout is not None and time.monotonic() - started > timeout:
                result = on_timeout(config)
            results.append(result)
            if tick is not None:
                tick()
        return results

    try:
        pickle.dumps((runner, configs))
    except Exception:
        return run_serial()
    import multiprocessing
    import os as _os

    ctx = multiprocessing.get_context()
    workers = max(1, min(max_workers or _os.cpu_count() or 1, len(configs)))
    results: List = [None] * len(configs)
    queue = deque(enumerate(configs))
    running: Dict[int, tuple] = {}  # index -> (process, pipe, deadline, config)

    def reap(index: int, result) -> None:
        process, conn, _, _ = running.pop(index)
        conn.close()
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - stuck after result/kill
            process.kill()
            process.join()
        results[index] = result

    try:
        while queue or running:
            while queue and len(running) < workers:
                index, config = queue.popleft()
                receiver, sender = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_guarded_child, args=(sender, runner, config)
                )
                try:
                    process.start()
                except (PermissionError, OSError):
                    # No subprocess support: drain everything serially.
                    receiver.close()
                    sender.close()
                    for idx, (proc, conn, _, _) in list(running.items()):
                        proc.terminate()
                        proc.join()
                        conn.close()
                    running.clear()
                    return run_serial()
                sender.close()
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                running[index] = (process, receiver, deadline, config)
            progressed = False
            for index, (process, conn, deadline, config) in list(running.items()):
                if conn.poll(0):
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        # The pipe closed without a result: the child died
                        # (os._exit, signal) before flushing anything.
                        kind = "raised"
                        payload = (
                            "worker process died before reporting "
                            f"(exit code {process.exitcode})"
                        )
                    if kind == "result":
                        reap(index, payload)
                    elif on_crash is not None:
                        reap(index, on_crash(config, payload))
                    else:
                        reap(index, None)
                        raise RuntimeError(
                            f"guarded worker failed for {config!r}: {payload}"
                        )
                    progressed = True
                elif not process.is_alive():
                    reason = f"worker process died (exit code {process.exitcode})"
                    if on_crash is None:
                        reap(index, None)
                        raise RuntimeError(
                            f"guarded worker crashed for {config!r}: {reason}"
                        )
                    reap(index, on_crash(config, reason))
                    progressed = True
                elif deadline is not None and time.monotonic() > deadline:
                    process.terminate()
                    process.join(timeout=1.0)
                    if process.is_alive():  # pragma: no cover - ignores SIGTERM
                        process.kill()
                    reap(index, on_timeout(config))
                    progressed = True
            if tick is not None:
                tick()
            if not progressed and running:
                time.sleep(poll_interval)
    finally:
        for process, conn, _, _ in running.values():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover
                process.kill()
            conn.close()
    return results


def paper_experiment(
    congestion_control: str = "cubic",
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX,
    variant: str = "as_stated",
    **overrides,
) -> ExperimentConfig:
    """Convenience constructor for paper-topology experiment configurations."""
    return ExperimentConfig(
        name=f"paper-{congestion_control}",
        congestion_control=congestion_control,
        duration=duration,
        sampling_interval=sampling_interval,
        default_path_index=default_path_index,
        paper_variant=variant,
        **overrides,
    )
