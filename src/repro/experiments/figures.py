"""Regenerate the data series behind the paper's figures.

Each function returns a :class:`FigureData` carrying the per-path and total
throughput series that the corresponding panel of Fig. 2 plots, plus the
analytical optimum for reference.  Absolute values depend on the substrate
(the paper used the v0.94 kernel on Mininet; we use a packet-level
simulator), but the qualitative shape -- which algorithm approaches the
90 Mbps optimum, how quickly, and how stably -- is what the benchmarks check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..measure.sampling import TimeSeries
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX
from .harness import ExperimentResult, paper_experiment, run_experiment


@dataclass
class FigureData:
    """The series plotted in one panel of Fig. 2."""

    figure_id: str
    description: str
    result: ExperimentResult

    @property
    def per_path_series(self) -> Dict[int, TimeSeries]:
        return self.result.per_path_series

    @property
    def total_series(self) -> TimeSeries:
        return self.result.total_series

    @property
    def optimum_mbps(self) -> float:
        return self.result.optimum.total

    def summary(self) -> dict:
        data = self.result.summary()
        data["figure"] = self.figure_id
        data["description"] = self.description
        return data


def fig2a_cubic(
    *, duration: float = 4.0, sampling_interval: float = 0.1, variant: str = "as_stated"
) -> FigureData:
    """Fig. 2(a): per-path rate with uncoupled CUBIC, 100 ms sampling, 4 s."""
    config = paper_experiment(
        "cubic", duration=duration, sampling_interval=sampling_interval, variant=variant
    )
    return FigureData(
        figure_id="fig2a",
        description="MPTCP throughput with CUBIC congestion control (100 ms sampling)",
        result=run_experiment(config),
    )


def fig2b_olia(
    *, duration: float = 4.0, sampling_interval: float = 0.1, variant: str = "as_stated"
) -> FigureData:
    """Fig. 2(b): per-path rate with OLIA, 100 ms sampling, 4 s."""
    config = paper_experiment(
        "olia", duration=duration, sampling_interval=sampling_interval, variant=variant
    )
    return FigureData(
        figure_id="fig2b",
        description="MPTCP throughput with OLIA congestion control (100 ms sampling)",
        result=run_experiment(config),
    )


def fig2c_fine(
    *,
    duration: float = 0.5,
    sampling_interval: float = 0.01,
    variant: str = "as_stated",
    join_delay: float = 0.05,
) -> FigureData:
    """Fig. 2(c): the first 0.5 s with 10 ms sampling (sawtooth detail).

    The start-up zoom models the MPTCP establishment sequence explicitly: the
    initial subflow runs on the default path (Path 2) and the additional
    subflows join ``join_delay`` seconds later, which is why the default path
    is the first to reach its bottleneck in the paper's Fig. 2.
    """
    config = paper_experiment(
        "cubic", duration=duration, sampling_interval=sampling_interval, variant=variant
    )
    config = config.with_overrides(name="paper-cubic-10ms", join_delay=join_delay)
    return FigureData(
        figure_id="fig2c",
        description="MPTCP per-flow rate with 10 ms sampling (start-up detail)",
        result=run_experiment(config),
    )


def figure_with_algorithm(
    algorithm: str,
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX,
    variant: str = "as_stated",
) -> FigureData:
    """A Fig. 2-style panel for any congestion-control algorithm."""
    config = paper_experiment(
        algorithm,
        duration=duration,
        sampling_interval=sampling_interval,
        default_path_index=default_path_index,
        variant=variant,
    )
    return FigureData(
        figure_id=f"fig2-{algorithm}",
        description=f"MPTCP throughput with {algorithm.upper()} congestion control",
        result=run_experiment(config),
    )
