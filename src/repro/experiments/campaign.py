"""Campaign subsystem: resumable, sharded parameter sweeps with validation.

One-off runs answer one question about one configuration; the paper's claims
(and the ROADMAP's many-scenario ambitions) need *grids*: every congestion
control on every topology across link rates, delays, loss and dynamics.  This
module turns those grids into restartable batch jobs:

* :class:`CampaignSpec` declares a grid (scenario x congestion control x
  link rate/delay scale x loss rate x dynamics schedule x path manager) and
  expands it into picklable :class:`~repro.experiments.harness.ExperimentConfig`
  / :class:`~repro.experiments.multiflow.MultiFlowConfig` points, each keyed
  by a content hash of its parameters;
* :func:`run_campaign` executes the points in chunks on top of
  :func:`~repro.experiments.harness.run_scenarios_parallel`, persisting every
  finished point to a JSONL :class:`ResultStore` -- re-invoking the campaign
  skips completed points, so a crashed or extended grid resumes for free;
* every point is cross-validated against the analytical models
  (:mod:`repro.measure.validation`) and the campaign aggregates the error
  distributions into a :class:`~repro.measure.validation.ValidationReport`;
* :data:`CAMPAIGN_GRIDS` names the stock grids exposed by
  ``repro.cli campaign``.

Grid expansion eagerly builds each point's constraint system and calls
:meth:`~repro.model.bottleneck.ConstraintSystem.validate`, so a degenerate
grid fails with the offending point's parameters instead of a solver trace
from deep inside a worker process.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ModelError
from ..measure.report import sanitize_metrics
from ..measure.validation import (
    ValidationReport,
    validate_experiment,
    validate_multiflow,
)
from ..model.bottleneck import ConstraintSystem, build_constraints
from ..model.paths import PathSet
from ..netsim.dynamics import DynamicsSpec, LinkRateChange, LossBurst, Schedule
from ..netsim.topology import Topology
from ..topologies.generators import shared_bottleneck, wifi_cellular
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from ..workload.runner import WorkloadConfig, run_workload
from ..workload.scenarios import WORKLOAD_SCENARIOS
from .harness import ExperimentConfig, ScenarioPool, run_experiment
from .multiflow import MultiFlowConfig, run_multiflow
from .scenarios import COMPETITION_SCENARIOS

#: Single-connection scenario axis values (name -> zero-argument builder).
SINGLE_SCENARIOS: Dict[str, Callable[[], Tuple[Topology, PathSet]]] = {
    "paper": paper_scenario,
    "wifi_cellular": wifi_cellular,
    "shared_bottleneck": shared_bottleneck,
}

#: Dynamics-schedule axis values (besides the loss axis, which composes in).
DYNAMICS_CHOICES = ("none", "bottleneck_step")

#: Path-manager axis values ("failover" is single-connection only).
PATH_MANAGER_CHOICES = ("default", "failover")


def _build_single_scenario(
    kind: str, rate_scale: float, delay_scale: float
) -> Tuple[Topology, PathSet]:
    """Module-level scenario factory so expanded configs stay picklable."""
    try:
        builder = SINGLE_SCENARIOS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign scenario {kind!r}; choose from {sorted(SINGLE_SCENARIOS)}"
        ) from None
    topology, paths = builder()
    topology.scale_links(rate=rate_scale, delay=delay_scale)
    return topology, paths


def point_key(params: Dict[str, object]) -> str:
    """Stable content hash of one grid point's parameters.

    The key addresses the point in the JSONL result store; any change to a
    parameter (including duration or sampling) yields a fresh key, so stale
    records can never shadow a different experiment.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class CampaignPoint:
    """One expanded grid point: parameters, content key and runnable config."""

    key: str
    params: Dict[str, object]
    config: Union[ExperimentConfig, MultiFlowConfig, WorkloadConfig]

    def label(self) -> str:
        """Compact human-readable identification of the point."""
        parts = [
            str(self.params.get("scenario", "?")),
            str(self.params.get("congestion_control", "?")),
            f"x{self.params.get('rate_scale', 1.0):g}",
        ]
        if self.params.get("delay_scale", 1.0) != 1.0:
            parts.append(f"d{self.params['delay_scale']:g}")
        if self.params.get("loss_rate", 0.0):
            parts.append(f"loss{self.params['loss_rate']:g}")
        if self.params.get("dynamics", "none") != "none":
            parts.append(str(self.params["dynamics"]))
        if self.params.get("path_manager", "default") != "default":
            parts.append(str(self.params["path_manager"]))
        if self.params.get("queue_kind") is not None:
            parts.append(str(self.params["queue_kind"]))
        if self.params.get("ecn") is not None:
            parts.append("ecn" if self.params["ecn"] else "noecn")
        if self.params.get("load_scale") is not None:
            parts.append(f"load{self.params['load_scale']:g}")
        if self.params.get("size_scale") is not None:
            parts.append(f"size{self.params['size_scale']:g}")
        return "/".join(parts)


@dataclass
class CampaignSpec:
    """A parameter grid over scenarios, controllers and link conditions.

    Every combination of the axis values becomes one simulation point; axes
    default to a single neutral value, so a spec only grows along the axes a
    study actually sweeps.  ``kind`` selects the runner: ``"single"`` points
    are :class:`ExperimentConfig` (one MPTCP connection, scenario names from
    :data:`SINGLE_SCENARIOS`), ``"multiflow"`` points are
    :class:`MultiFlowConfig` (scenario names from
    :data:`~repro.experiments.scenarios.COMPETITION_SCENARIOS`), and
    ``"workload"`` points are :class:`~repro.workload.runner.WorkloadConfig`
    (scenario names from :data:`~repro.workload.scenarios.WORKLOAD_SCENARIOS`,
    swept along the workload-specific ``load_scales`` / ``size_scales`` axes
    instead of the loss/dynamics/path-manager axes).
    """

    name: str
    kind: str = "single"
    scenarios: Sequence[str] = ("paper",)
    congestion_controls: Sequence[str] = ("cubic",)
    rate_scales: Sequence[float] = (1.0,)
    delay_scales: Sequence[float] = (1.0,)
    loss_rates: Sequence[float] = (0.0,)
    dynamics: Sequence[str] = ("none",)
    path_managers: Sequence[str] = ("default",)
    #: Signal-plane axes: queue discipline and ECN.  ``None`` leaves the
    #: scenario's own default in place (and stays out of the point key, so
    #: every pre-AQM campaign store remains addressable); a concrete value
    #: forces it on every link / every sender of the point.
    queue_kinds: Sequence[Optional[str]] = (None,)
    ecn_modes: Sequence[Optional[bool]] = (None,)
    #: Workload-kind axes: arrival-rate and transfer-size multipliers
    #: applied via :meth:`~repro.workload.spec.WorkloadSpec.scaled`.
    load_scales: Sequence[float] = (1.0,)
    size_scales: Sequence[float] = (1.0,)
    duration: float = 2.0
    sampling_interval: float = 0.1
    #: Simulation fidelity for every point: ``"packet"`` or ``"flowlevel"``.
    #: Flow-level points additionally run their packet-level twin and record
    #: the cross-fidelity agreement (``cross_fidelity`` in the store record).
    backend: str = "packet"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("single", "multiflow", "workload"):
            raise ConfigurationError(
                f"unknown campaign kind {self.kind!r}; "
                "choose 'single', 'multiflow' or 'workload'"
            )
        from ..flowsim.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown campaign backend {self.backend!r}; choose from {BACKENDS}"
            )
        for axis in (
            "scenarios",
            "congestion_controls",
            "rate_scales",
            "delay_scales",
            "loss_rates",
            "dynamics",
            "path_managers",
            "queue_kinds",
            "ecn_modes",
            "load_scales",
            "size_scales",
        ):
            if not list(getattr(self, axis)):
                raise ConfigurationError(f"campaign axis {axis!r} must not be empty")
        from ..netsim.queues import QUEUE_KINDS

        for queue_kind in self.queue_kinds:
            if queue_kind is not None and queue_kind not in QUEUE_KINDS:
                raise ConfigurationError(
                    f"unknown queue discipline {queue_kind!r}; "
                    f"choose from {QUEUE_KINDS} (or None for the scenario default)"
                )
        from ..core.coupled import MULTIPATH_ALGORITHMS

        for congestion_control in self.congestion_controls:
            if congestion_control not in MULTIPATH_ALGORITHMS:
                raise ConfigurationError(
                    f"unknown congestion control {congestion_control!r}; "
                    f"choose from {sorted(MULTIPATH_ALGORITHMS)}"
                )
        if self.kind != "workload" and (
            tuple(self.load_scales) != (1.0,) or tuple(self.size_scales) != (1.0,)
        ):
            raise ConfigurationError(
                "load_scales / size_scales are workload-kind axes"
            )
        if self.kind == "workload":
            for axis, neutral in (
                ("loss_rates", (0.0,)),
                ("dynamics", ("none",)),
                ("path_managers", ("default",)),
                ("queue_kinds", (None,)),
                ("ecn_modes", (None,)),
            ):
                if tuple(getattr(self, axis)) != neutral:
                    raise ConfigurationError(
                        f"workload campaigns sweep load/size scales; "
                        f"axis {axis!r} must stay at its default"
                    )
        if self.kind == "single":
            registry = SINGLE_SCENARIOS
        elif self.kind == "multiflow":
            registry = COMPETITION_SCENARIOS
        else:
            registry = WORKLOAD_SCENARIOS
        for scenario in self.scenarios:
            if scenario not in registry:
                raise ConfigurationError(
                    f"unknown {self.kind} campaign scenario {scenario!r}; "
                    f"choose from {sorted(registry)}"
                )
        for name in self.dynamics:
            if name not in DYNAMICS_CHOICES:
                raise ConfigurationError(
                    f"unknown dynamics choice {name!r}; choose from {DYNAMICS_CHOICES}"
                )
        for name in self.path_managers:
            if name not in PATH_MANAGER_CHOICES:
                raise ConfigurationError(
                    f"unknown path manager {name!r}; choose from {PATH_MANAGER_CHOICES}"
                )
            if name == "failover" and self.kind == "multiflow":
                raise ConfigurationError(
                    "the 'failover' path manager applies to single-connection points only"
                )
            if name == "failover" and self.backend == "flowlevel":
                raise ConfigurationError(
                    "the flow-level backend has no subflow lifecycle; "
                    "'failover' grids need backend='packet'"
                )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return (
            len(list(self.scenarios))
            * len(list(self.congestion_controls))
            * len(list(self.rate_scales))
            * len(list(self.delay_scales))
            * len(list(self.loss_rates))
            * len(list(self.dynamics))
            * len(list(self.path_managers))
            * len(list(self.queue_kinds))
            * len(list(self.ecn_modes))
            * len(list(self.load_scales))
            * len(list(self.size_scales))
        )

    def expand(self) -> List[CampaignPoint]:
        """Expand the grid into validated, picklable simulation points.

        Each distinct (scenario, rate, delay) combination's constraint
        system is checked once via
        :meth:`~repro.model.bottleneck.ConstraintSystem.validate`; a
        degenerate combination raises :class:`ConfigurationError` naming the
        offending point's parameters.
        """
        points: List[CampaignPoint] = []
        scenario_cache: Dict[Tuple, Tuple[Topology, PathSet, ConstraintSystem]] = {}
        for scenario in self.scenarios:
            for rate_scale in self.rate_scales:
                for delay_scale in self.delay_scales:
                    cache_key = (scenario, float(rate_scale), float(delay_scale))
                    if cache_key not in scenario_cache:
                        scenario_cache[cache_key] = self._built_scenario(
                            scenario, rate_scale, delay_scale
                        )
                    topology, paths, system = scenario_cache[cache_key]
                    for congestion_control in self.congestion_controls:
                        for loss_rate in self.loss_rates:
                            for dynamics_name in self.dynamics:
                                for path_manager in self.path_managers:
                                    for queue_kind in self.queue_kinds:
                                        for ecn in self.ecn_modes:
                                            for load_scale in self.load_scales:
                                                for size_scale in self.size_scales:
                                                    points.append(
                                                        self._point(
                                                            scenario=scenario,
                                                            congestion_control=congestion_control,
                                                            rate_scale=float(rate_scale),
                                                            delay_scale=float(delay_scale),
                                                            loss_rate=float(loss_rate),
                                                            dynamics_name=dynamics_name,
                                                            path_manager=path_manager,
                                                            queue_kind=queue_kind,
                                                            ecn=ecn,
                                                            load_scale=float(load_scale),
                                                            size_scale=float(size_scale),
                                                            paths=paths,
                                                            system=system,
                                                        )
                                                    )
        return points

    # ------------------------------------------------------------------
    def _built_scenario(
        self, scenario: str, rate_scale: float, delay_scale: float
    ) -> Tuple[Topology, PathSet, ConstraintSystem]:
        if self.kind == "single":
            topology, paths = _build_single_scenario(scenario, rate_scale, delay_scale)
        elif self.kind == "workload":
            config = WORKLOAD_SCENARIOS[scenario](duration=self.duration)
            topology, paths = config.build_scenario()
            topology.scale_links(rate=rate_scale, delay=delay_scale)
        else:
            config = _competition_config(
                scenario, "lia", self.duration, self.sampling_interval
            )
            topology, paths = config.build_scenario()
            topology.scale_links(rate=rate_scale, delay=delay_scale)
        system = build_constraints(topology, paths)
        try:
            system.validate()
        except ModelError as error:
            params = {
                "campaign": self.name,
                "scenario": scenario,
                "rate_scale": rate_scale,
                "delay_scale": delay_scale,
            }
            raise ConfigurationError(
                f"degenerate campaign grid point {json.dumps(params, sort_keys=True)}: {error}"
            ) from error
        return topology, paths, system

    def _point(
        self,
        *,
        scenario: str,
        congestion_control: str,
        rate_scale: float,
        delay_scale: float,
        loss_rate: float,
        dynamics_name: str,
        path_manager: str,
        queue_kind: Optional[str] = None,
        ecn: Optional[bool] = None,
        load_scale: float = 1.0,
        size_scale: float = 1.0,
        paths: PathSet,
        system: ConstraintSystem,
    ) -> CampaignPoint:
        if self.kind == "workload":
            params = {
                "kind": self.kind,
                "scenario": scenario,
                "congestion_control": congestion_control,
                "rate_scale": rate_scale,
                "delay_scale": delay_scale,
                "duration": float(self.duration),
                "load_scale": load_scale,
                "size_scale": size_scale,
            }
            if self.backend != "packet":
                params["backend"] = self.backend
            workload_config = WORKLOAD_SCENARIOS[scenario](
                duration=self.duration, backend=self.backend
            )
            topology, base_paths = workload_config.build_scenario()
            topology.scale_links(rate=rate_scale, delay=delay_scale)
            workload_config = workload_config.with_overrides(
                name=f"{self.name}-{scenario}",
                scenario=(topology, base_paths),
                spec=workload_config.spec.scaled(load=load_scale, size=size_scale),
                congestion_control=congestion_control,
            )
            return CampaignPoint(
                key=point_key(params), params=params, config=workload_config
            )
        params = {
            "kind": self.kind,
            "scenario": scenario,
            "congestion_control": congestion_control,
            "rate_scale": rate_scale,
            "delay_scale": delay_scale,
            "loss_rate": loss_rate,
            "dynamics": dynamics_name,
            "path_manager": path_manager,
            "duration": float(self.duration),
            "sampling_interval": float(self.sampling_interval),
        }
        if self.backend != "packet":
            # Only non-default backends enter the content hash, so every key
            # recorded by pre-flowlevel campaigns stays addressable.
            params["backend"] = self.backend
        # Same key-stability rule for the signal-plane axes: ``None`` (use
        # the scenario's own discipline / ECN setting) stays out of the hash.
        if queue_kind is not None:
            params["queue_kind"] = queue_kind
        if ecn is not None:
            params["ecn"] = bool(ecn)
        signal_overrides: Dict[str, object] = {}
        if queue_kind is not None:
            signal_overrides["queue_kind"] = queue_kind
        if ecn is not None:
            signal_overrides["ecn"] = bool(ecn)
        spec = _point_dynamics(dynamics_name, loss_rate, system, self.duration)
        if self.kind == "single":
            manager = None
            if path_manager == "failover":
                from ..core.path_manager import FailoverPathManager

                manager = FailoverPathManager(list(paths))
            config: Union[ExperimentConfig, MultiFlowConfig] = ExperimentConfig(
                name=f"{self.name}-{scenario}-{congestion_control}",
                scenario=partial(
                    _build_single_scenario, scenario, rate_scale, delay_scale
                ),
                congestion_control=congestion_control,
                duration=self.duration,
                sampling_interval=self.sampling_interval,
                default_path_index=(
                    PAPER_DEFAULT_PATH_INDEX if scenario == "paper" else 0
                ),
                path_manager=manager,
                dynamics=spec,
                backend=self.backend,
                **signal_overrides,
            )
        else:
            config = _competition_config(
                scenario, congestion_control, self.duration, self.sampling_interval
            )
            topology, base_paths = config.build_scenario()
            topology.scale_links(rate=rate_scale, delay=delay_scale)
            config = config.with_overrides(
                name=f"{self.name}-{scenario}-{congestion_control}",
                scenario=(topology, base_paths),
                dynamics=spec,
                backend=self.backend,
                **signal_overrides,
            )
        return CampaignPoint(key=point_key(params), params=params, config=config)


def _competition_config(
    scenario: str, congestion_control: str, duration: float, sampling_interval: float
) -> MultiFlowConfig:
    """Instantiate a named competition scenario with one controller everywhere."""
    builder = COMPETITION_SCENARIOS[scenario]
    kwargs: Dict[str, object] = {
        "duration": duration,
        "sampling_interval": sampling_interval,
    }
    if scenario in ("two_mptcp_competition", "ecn_mptcp_fairness"):
        kwargs["congestion_control_a"] = congestion_control
        kwargs["congestion_control_b"] = congestion_control
    else:
        kwargs["congestion_control"] = congestion_control
    return builder(**kwargs)


def _most_shared_link(system: ConstraintSystem) -> Tuple[Tuple[str, str], float]:
    """The constraint link crossed by the most paths (ties: first in order)."""
    constraints = system.shared_constraints() or system.constraints
    best = max(constraints, key=lambda c: len(c.path_indices))
    return best.link, best.capacity


def _point_dynamics(
    dynamics_name: str,
    loss_rate: float,
    system: ConstraintSystem,
    duration: float,
) -> Optional[DynamicsSpec]:
    """Compose the point's dynamics schedule (step events and/or loss)."""
    schedule = Schedule()
    descriptions: List[str] = []
    link, capacity = _most_shared_link(system)
    if dynamics_name == "bottleneck_step":
        down_at, up_at = 0.4 * duration, 0.7 * duration
        schedule.at(down_at, LinkRateChange(link[0], link[1], capacity * 0.5))
        schedule.at(up_at, LinkRateChange(link[0], link[1], capacity))
        descriptions.append(
            f"{link[0]}-{link[1]} halves at t={down_at:g}s, restores at t={up_at:g}s"
        )
    if loss_rate > 0.0:
        schedule.at(
            0.0,
            LossBurst(link[0], link[1], duration=duration, loss_rate=loss_rate, seed=1),
        )
        descriptions.append(f"{loss_rate:g} loss on {link[0]}-{link[1]}")
    if not schedule:
        return None
    return DynamicsSpec(schedule=schedule, description="; ".join(descriptions))


# ------------------------------------------------------------------ execution
def _execute_point(point: CampaignPoint) -> dict:
    """Run one grid point and post-process it into a JSON-safe store record.

    Module-level so :func:`run_scenarios_parallel` can ship it to worker
    processes; failures become ``status: "error"`` records (the campaign
    keeps going, and error points re-run on the next invocation).
    """
    record: Dict[str, object] = {"key": point.key, "params": dict(point.params)}
    try:
        if isinstance(point.config, WorkloadConfig):
            workload_result = run_workload(point.config)
            record["status"] = "ok"
            record["summary"] = workload_result.summary()
            if point.config.backend == "flowlevel":
                # FCT agreement against the packet-level twin of the same plan.
                from ..measure.validation import compare_workload_backends

                twin = point.config.with_overrides(backend="packet")
                record["cross_fidelity_fct"] = compare_workload_backends(
                    workload_result, run_workload(twin)
                ).as_dict()
            return sanitize_metrics(record)  # type: ignore[return-value]
        if isinstance(point.config, MultiFlowConfig):
            result = run_multiflow(point.config)
            validation = validate_multiflow(result)
        else:
            result = run_experiment(point.config)
            validation = validate_experiment(result)
        record["status"] = "ok"
        record["summary"] = result.summary()
        record["validation"] = validation.as_dict()
        if point.config.backend == "flowlevel":
            # A flow-level point also runs its packet-level twin so the
            # record carries the fidelity error, not just the model error.
            from ..measure.validation import (
                compare_experiment_backends,
                compare_multiflow_backends,
            )

            twin = point.config.with_overrides(backend="packet")
            if isinstance(twin, MultiFlowConfig):
                comparison = compare_multiflow_backends(result, run_multiflow(twin))
            else:
                comparison = compare_experiment_backends(result, run_experiment(twin))
            record["cross_fidelity"] = comparison.as_dict()
    except Exception as error:  # noqa: BLE001 - one bad point must not kill the grid
        record["status"] = "error"
        record["error"] = f"{type(error).__name__}: {error}"
    return sanitize_metrics(record)  # type: ignore[return-value]


#: ``record_type`` marker of lease records (see :mod:`repro.experiments.fabric`).
#: Result records carry no ``record_type`` field, so every record written by a
#: pre-fabric campaign loads exactly as before.
LEASE_RECORD_TYPE = "lease"

#: Statuses that end a point's lifecycle: it will never run again.
TERMINAL_STATUSES = ("ok", "quarantined")

#: Statuses that re-run on a later invocation (until ``max_attempts``).
RETRYABLE_STATUSES = ("error", "timeout")


def _attempts_of(record: dict) -> int:
    """Failed-attempt count recorded on a point's latest store record.

    Pre-fabric error records carry no counter; they represent exactly one
    failed attempt.
    """
    if record.get("status") not in RETRYABLE_STATUSES:
        return int(record.get("attempts", 0))
    return int(record.get("attempts", 1))


def _finalize_record(
    record: dict,
    attempts: Dict[str, int],
    max_attempts: int,
    *,
    worker: Optional[str] = None,
) -> dict:
    """Stamp retry bookkeeping onto a freshly produced point record.

    Successful records pass through untouched (a fault-free store stays
    byte-identical to the pre-fabric format); failures gain an ``attempts``
    counter (and the executing ``worker``, when known) and flip to the
    terminal ``"quarantined"`` status once ``max_attempts`` is exhausted.
    """
    if record.get("status") == "ok":
        return record
    key = record.get("key")
    count = attempts.get(key, 0) + 1
    attempts[key] = count
    record["attempts"] = count
    if worker:
        record["worker"] = worker
    if record.get("status") in RETRYABLE_STATUSES and count >= max_attempts:
        record["status"] = "quarantined"
    return record


def _quarantined_from(record: dict) -> dict:
    """A quarantined copy of an attempts-exhausted retryable record."""
    quarantined = dict(record)
    quarantined["status"] = "quarantined"
    quarantined["attempts"] = _attempts_of(record)
    return quarantined


class ResultStore:
    """Append-only JSONL store of campaign point records, keyed by content hash.

    Each line is one self-describing record (``key``, ``params``, ``status``
    and, for successful points, the run summary plus validation).  Loading
    tolerates a torn final line (crash mid-append) and keeps the *last*
    record per key -- except that a completed (``"ok"``) record is terminal
    and is never shadowed by a later failure report (two workers may race on
    the same point; the one that finished wins).  Lease records appended by
    the fabric layer (``record_type: "lease"``) are bookkeeping, not results,
    and are skipped.

    Appends serialise each record as a **single** ``os.write`` of one
    newline-terminated line on an ``O_APPEND`` descriptor, so concurrent
    writers (threads, processes, fabric workers sharing one store) never
    interleave partial lines.  If a previous writer crashed mid-append and
    left a torn tail without a newline, the next append starts on a fresh
    line instead of fusing with (and thereby corrupting) the fragment.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def iter_records(self) -> List[dict]:
        """Every parseable record in file (i.e. write) order.

        Unparseable lines -- a torn tail from a crashed writer -- are
        skipped, as are blank lines.
        """
        records: List[dict] = []
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write from a crashed run
                if isinstance(record, dict):
                    records.append(record)
        return records

    def load(self) -> Dict[str, dict]:
        records: Dict[str, dict] = {}
        for record in self.iter_records():
            if record.get("record_type") == LEASE_RECORD_TYPE:
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            previous = records.get(key)
            if (
                previous is not None
                and previous.get("status") == "ok"
                and record.get("status") != "ok"
            ):
                continue  # completed results are terminal: last *ok* writer wins
            records[key] = record
        return records

    def load_leases(self) -> Dict[str, dict]:
        """The last lease record per key, in no particular liveness state."""
        leases: Dict[str, dict] = {}
        for record in self.iter_records():
            if record.get("record_type") != LEASE_RECORD_TYPE:
                continue
            key = record.get("key")
            if isinstance(key, str):
                leases[key] = record
        return leases

    def append(self, record: dict) -> None:
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            sanitize_metrics(record), sort_keys=True, allow_nan=False
        )
        data = (line + "\n").encode("utf-8")
        fd = os.open(str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            if self._tail_is_torn():
                # Heal a crashed writer's partial line: without this, the next
                # record would fuse onto the fragment and *both* would be lost.
                data = b"\n" + data
            os.write(fd, data)
        finally:
            os.close(fd)

    def _tail_is_torn(self) -> bool:
        """True when the file is non-empty and does not end with a newline."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return False
        if size == 0:
            return False
        with self.path.open("rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def __len__(self) -> int:
        return len(self.load())


@dataclass
class CampaignResult:
    """Outcome of one campaign invocation (fresh runs plus resumed records)."""

    spec: CampaignSpec
    store_path: pathlib.Path
    points: List[CampaignPoint]
    records: List[dict]
    executed: int
    skipped: int
    #: Points left pending because another live worker holds their lease
    #: (fabric runs only; a plain ``run_campaign`` never defers).
    deferred: int = 0

    @property
    def ok_records(self) -> List[dict]:
        return [r for r in self.records if r.get("status") == "ok"]

    @property
    def error_records(self) -> List[dict]:
        """Retryable failures (``error`` and ``timeout``): re-run next time."""
        return [r for r in self.records if r.get("status") in RETRYABLE_STATUSES]

    @property
    def quarantined_records(self) -> List[dict]:
        """Points that exhausted ``max_attempts``: terminal, never re-run."""
        return [r for r in self.records if r.get("status") == "quarantined"]

    def validation_report(self) -> ValidationReport:
        return ValidationReport.from_validations(
            [r.get("validation") for r in self.ok_records if r.get("validation")]
        )

    def cross_fidelity_records(self) -> List[dict]:
        """The per-point flow-level-vs-packet-level comparisons (if any)."""
        return [
            r["cross_fidelity"] for r in self.ok_records if r.get("cross_fidelity")
        ]

    def cross_fidelity_report(self) -> Optional[dict]:
        """Aggregate backend-agreement stats across the grid's points."""
        comparisons = self.cross_fidelity_records()
        if not comparisons:
            return None
        errors = [
            c["mean_rel_error"]
            for c in comparisons
            if c.get("mean_rel_error") is not None
        ]
        ranks = [
            c["rank_agreement"]
            for c in comparisons
            if c.get("rank_agreement") is not None
        ]
        return {
            "points": len(comparisons),
            "mean_rel_error": (
                round(sum(errors) / len(errors), 6) if errors else None
            ),
            "max_rel_error": round(max(errors), 6) if errors else None,
            "mean_rank_agreement": (
                round(sum(ranks) / len(ranks), 4) if ranks else None
            ),
        }

    def summary(self) -> dict:
        summary = {
            "campaign": self.spec.name,
            "kind": self.spec.kind,
            "backend": self.spec.backend,
            "points": len(self.points),
            "executed": self.executed,
            "skipped": self.skipped,
            "errors": len(self.error_records),
            "quarantined": len(self.quarantined_records),
            "store": str(self.store_path),
            "report": self.validation_report().as_dict(),
        }
        if self.deferred:
            summary["deferred"] = self.deferred
        cross = self.cross_fidelity_report()
        if cross is not None:
            summary["cross_fidelity"] = cross
        return summary


def _chunks(items: Sequence, size: int) -> List[List]:
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _classify_existing(
    points: Sequence[CampaignPoint],
    existing: Dict[str, dict],
    store: ResultStore,
    max_attempts: int,
) -> Tuple[Dict[str, dict], Dict[str, int]]:
    """Split a store's prior records into terminal results and retry counters.

    Returns ``(done, attempts)``: ``done`` maps keys that must not run again
    (completed or quarantined) to their record, ``attempts`` carries the
    failed-attempt count of every retryable point.  A retryable record whose
    counter already meets ``max_attempts`` (e.g. written by an invocation
    with a higher ceiling) is quarantined on the spot -- the quarantined
    record is appended so the store, not just this process, reflects the
    terminal state.
    """
    done: Dict[str, dict] = {}
    attempts: Dict[str, int] = {}
    for point in points:
        record = existing.get(point.key)
        if record is None:
            continue
        status = record.get("status")
        if status in TERMINAL_STATUSES:
            done[point.key] = record
        elif status in RETRYABLE_STATUSES:
            count = _attempts_of(record)
            attempts[point.key] = count
            if count >= max_attempts:
                quarantined = _quarantined_from(record)
                store.append(quarantined)
                done[point.key] = quarantined
    return done, attempts


def run_campaign(
    spec: CampaignSpec,
    store: Union[str, pathlib.Path, ResultStore],
    *,
    chunk_size: int = 4,
    max_workers: Optional[int] = None,
    resume: bool = True,
    max_attempts: int = 3,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignResult:
    """Execute a campaign grid, resuming from the store's completed points.

    The pending points run in chunks of ``chunk_size`` through a shared
    :class:`~repro.experiments.harness.ScenarioPool` -- the worker processes
    persist across chunks, so the per-point cost is the simulation itself
    rather than pool startup.  Every finished chunk is flushed to the JSONL
    store before the next one starts, so a crash loses at most one chunk of
    work.  ``progress`` is called with ``(points_done,
    points_pending_total)`` after each chunk (and once with ``(0, total)``
    up front).

    Failed points carry an ``attempts`` counter across invocations and stop
    retrying once ``max_attempts`` is reached: the point's record flips to
    the terminal ``"quarantined"`` status, the rest of the grid still
    summarises, and :meth:`CampaignResult.summary` surfaces the quarantined
    count.  For leases, watchdog timeouts and in-invocation backoff see
    :func:`repro.experiments.fabric.run_campaign_fabric`.
    """
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be at least 1")
    if max_attempts < 1:
        raise ConfigurationError("max_attempts must be at least 1")
    store = store if isinstance(store, ResultStore) else ResultStore(store)
    points = spec.expand()
    existing = store.load() if resume else {}
    done, attempts = _classify_existing(points, existing, store, max_attempts)
    pending = [point for point in points if point.key not in done]
    if progress is not None:
        progress(0, len(pending))
    completed = 0
    with ScenarioPool(
        max_workers=max_workers, runner=_execute_point, expected=len(pending)
    ) as pool:
        for chunk in _chunks(pending, chunk_size):
            records = pool.map(chunk)
            for record in records:
                record = _finalize_record(record, attempts, max_attempts)
                store.append(record)
                done[record["key"]] = record
            completed += len(chunk)
            if progress is not None:
                progress(completed, len(pending))
    return CampaignResult(
        spec=spec,
        store_path=store.path,
        points=points,
        records=[done[point.key] for point in points if point.key in done],
        executed=len(pending),
        skipped=len(points) - len(pending),
    )


# ------------------------------------------------------------------ stock grids
def paper_cc_rate_campaign(
    *,
    duration: float = 1.5,
    congestion_controls: Sequence[str] = ("cubic", "lia", "olia"),
    rate_scales: Sequence[float] = (0.5, 1.0, 2.0),
    backend: str = "packet",
) -> CampaignSpec:
    """Paper-topology controller x link-rate sweep with model validation.

    Does the LP optimum keep predicting the measured aggregate when every
    link is half / double the paper's speed, for each controller family?
    """
    return CampaignSpec(
        name="paper_cc_rate",
        kind="single",
        scenarios=("paper",),
        congestion_controls=tuple(congestion_controls),
        rate_scales=tuple(rate_scales),
        duration=duration,
        backend=backend,
        description="paper topology: congestion control x uniform link-rate scale",
    )


def multiflow_fairness_campaign(
    *,
    duration: float = 2.0,
    congestion_controls: Sequence[str] = ("lia", "olia"),
    rate_scales: Sequence[float] = (0.6, 1.0),
    backend: str = "packet",
) -> CampaignSpec:
    """Multi-flow fairness grid: competition scenarios x controller x rate."""
    return CampaignSpec(
        name="multiflow_fairness",
        kind="multiflow",
        scenarios=("mptcp_vs_tcp_shared_bottleneck", "two_mptcp_competition"),
        congestion_controls=tuple(congestion_controls),
        rate_scales=tuple(rate_scales),
        duration=duration,
        backend=backend,
        description="shared-bottleneck competition: scenario x controller x rate scale",
    )


def workload_fct_campaign(
    *,
    duration: float = 10.0,
    load_scales: Sequence[float] = (0.5, 1.0, 2.0),
    size_scales: Sequence[float] = (1.0,),
    backend: str = "flowlevel",
) -> CampaignSpec:
    """Workload FCT grid: named workloads x offered-load and size multipliers.

    How do flow-completion-time percentiles move as the arrival rate (and
    optionally the transfer sizes) scale around each scenario's nominal
    operating point?  Flow-level points record cross-fidelity FCT agreement
    against their packet-level twin.
    """
    return CampaignSpec(
        name="workload_fct",
        kind="workload",
        scenarios=("conferencing_load", "web_page_load"),
        congestion_controls=("cubic",),
        load_scales=tuple(load_scales),
        size_scales=tuple(size_scales),
        duration=duration,
        backend=backend,
        description="named workloads: FCT percentiles vs load and size scale",
    )


def ecn_aqm_fairness_campaign(
    *,
    duration: float = 2.0,
    congestion_controls: Sequence[str] = ("lia", "olia", "sfc", "telehaptic"),
    queue_kinds: Sequence[str] = ("droptail", "red", "codel"),
    ecn_modes: Sequence[bool] = (True,),
    backend: str = "packet",
) -> CampaignSpec:
    """Signal-plane grid: queue discipline x controller on the ECN scenario.

    Sweeps every queue discipline against the coupled and signal-driven
    controller families on the two-MPTCP ECN fairness scenario; each point's
    record carries the signal-plane block (marking rate, early/full drop
    split, mean queue delay) from its run summary.  Run with
    ``backend="flowlevel"`` to sweep the identical grid at flow-level
    fidelity -- the keys differ only in the ``backend`` param, and each
    flow-level point records cross-fidelity agreement against its
    packet-level twin.
    """
    return CampaignSpec(
        name="ecn_aqm_fairness",
        kind="multiflow",
        scenarios=("ecn_mptcp_fairness",),
        congestion_controls=tuple(congestion_controls),
        queue_kinds=tuple(queue_kinds),
        ecn_modes=tuple(ecn_modes),
        duration=duration,
        backend=backend,
        description=(
            "ECN fairness scenario: queue discipline x controller "
            "(incl. sfc/telehaptic) with signal-plane metrics per point"
        ),
    )


#: Named campaign grids exposed through the CLI (``campaign`` command).
CAMPAIGN_GRIDS: Dict[str, Callable[..., CampaignSpec]] = {
    "paper_cc_rate": paper_cc_rate_campaign,
    "multiflow_fairness": multiflow_fairness_campaign,
    "workload_fct": workload_fct_campaign,
    "ecn_aqm_fairness": ecn_aqm_fairness_campaign,
}
