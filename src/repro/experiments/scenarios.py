"""Named experiment sweeps behind the Results-section claims and the ablations.

* :func:`cc_comparison` -- RES-CC: run CUBIC, LIA and OLIA (and optionally the
  extension algorithms) on the paper topology and report who reaches the
  optimum, how fast and how stably.
* :func:`olia_default_path_sweep` -- RES-OLIA-DEFAULT: the paper observed
  that OLIA only reached the optimum when Path 2 was the default path.
* :func:`scheduler_comparison` -- ABL-SCHED: the data-scheduler ablation.
* :func:`queue_size_sweep` -- ablation over the bottleneck buffer size.
* :func:`variant_comparison` -- both capacity labellings of the topology.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.coupled import PAPER_ALGORITHMS
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from .harness import ExperimentConfig, ExperimentResult, paper_experiment, run_experiment


def cc_comparison(
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Run the paper experiment once per congestion-control algorithm."""
    results: Dict[str, ExperimentResult] = {}
    for algorithm in algorithms:
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_path_index,
            variant=variant,
        )
        results[algorithm] = run_experiment(config)
    return results


def olia_default_path_sweep(
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    algorithm: str = "olia",
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Sweep which path is the default (shortest) path, keyed by path index."""
    results: Dict[int, ExperimentResult] = {}
    for default_index in range(3):
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_index,
            variant=variant,
        )
        config = config.with_overrides(name=f"paper-{algorithm}-default{default_index + 1}")
        results[default_index] = run_experiment(config)
    return results


def scheduler_comparison(
    schedulers: Sequence[str] = ("minrtt", "roundrobin", "redundant"),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    sampling_interval: float = 0.1,
    send_buffer_bytes: Optional[int] = 256 * 1024,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Ablate the MPTCP data scheduler (with a bounded send buffer so it matters)."""
    results: Dict[str, ExperimentResult] = {}
    for scheduler in schedulers:
        config = paper_experiment(
            congestion_control,
            duration=duration,
            sampling_interval=sampling_interval,
            variant=variant,
        )
        config = config.with_overrides(
            name=f"paper-{congestion_control}-{scheduler}",
            scheduler=scheduler,
            send_buffer_bytes=send_buffer_bytes,
        )
        results[scheduler] = run_experiment(config)
    return results


def queue_size_sweep(
    queue_sizes: Iterable[int] = (25, 50, 100, 200),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Ablate the bottleneck buffer size (design decision #1 in DESIGN.md)."""
    results: Dict[int, ExperimentResult] = {}
    for queue_packets in queue_sizes:
        config = ExperimentConfig(
            name=f"paper-{congestion_control}-q{queue_packets}",
            scenario=lambda qp=queue_packets: paper_scenario(variant, queue_packets=qp),
            congestion_control=congestion_control,
            duration=duration,
            paper_variant=variant,
        )
        results[queue_packets] = run_experiment(config)
    return results


def variant_comparison(
    *, congestion_control: str = "cubic", duration: float = 4.0
) -> Dict[str, ExperimentResult]:
    """Run both capacity labellings of the paper topology."""
    results: Dict[str, ExperimentResult] = {}
    for variant in ("as_stated", "as_solution"):
        config = paper_experiment(congestion_control, duration=duration, variant=variant)
        config = config.with_overrides(name=f"paper-{congestion_control}-{variant}")
        results[variant] = run_experiment(config)
    return results


def summarize_results(results: Dict[str, ExperimentResult]) -> List[dict]:
    """One summary dictionary per run (used by benchmarks and the CLI)."""
    return [result.summary() | {"key": str(key)} for key, result in results.items()]
