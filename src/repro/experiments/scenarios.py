"""Named experiment sweeps behind the Results-section claims and the ablations.

* :func:`cc_comparison` -- RES-CC: run CUBIC, LIA and OLIA (and optionally the
  extension algorithms) on the paper topology and report who reaches the
  optimum, how fast and how stably.
* :func:`olia_default_path_sweep` -- RES-OLIA-DEFAULT: the paper observed
  that OLIA only reached the optimum when Path 2 was the default path.
* :func:`scheduler_comparison` -- ABL-SCHED: the data-scheduler ablation.
* :func:`queue_size_sweep` -- ablation over the bottleneck buffer size.
* :func:`variant_comparison` -- both capacity labellings of the topology.

Multi-flow competition scenarios (the fairness claims behind coupled
congestion control, run through :func:`repro.experiments.multiflow.run_multiflow`):

* :func:`mptcp_vs_tcp_shared_bottleneck` -- one MPTCP connection and one
  single-path TCP flow share a bottleneck; a TCP-fair coupled controller
  should split it evenly.
* :func:`two_mptcp_competition` -- two MPTCP connections compete on a
  common bottleneck.
* :func:`cross_traffic_perturbation` -- bursty on-off UDP cross-traffic
  perturbs an MPTCP connection's rate search on a shared bottleneck.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.coupled import PAPER_ALGORITHMS
from ..topologies.generators import shared_bottleneck
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from .harness import ExperimentConfig, ExperimentResult, paper_experiment, run_experiment
from .multiflow import FlowSpec, MultiFlowConfig


def cc_comparison(
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Run the paper experiment once per congestion-control algorithm."""
    results: Dict[str, ExperimentResult] = {}
    for algorithm in algorithms:
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_path_index,
            variant=variant,
        )
        results[algorithm] = run_experiment(config)
    return results


def olia_default_path_sweep(
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    algorithm: str = "olia",
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Sweep which path is the default (shortest) path, keyed by path index."""
    results: Dict[int, ExperimentResult] = {}
    for default_index in range(3):
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_index,
            variant=variant,
        )
        config = config.with_overrides(name=f"paper-{algorithm}-default{default_index + 1}")
        results[default_index] = run_experiment(config)
    return results


def scheduler_comparison(
    schedulers: Sequence[str] = ("minrtt", "roundrobin", "redundant"),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    sampling_interval: float = 0.1,
    send_buffer_bytes: Optional[int] = 256 * 1024,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Ablate the MPTCP data scheduler (with a bounded send buffer so it matters)."""
    results: Dict[str, ExperimentResult] = {}
    for scheduler in schedulers:
        config = paper_experiment(
            congestion_control,
            duration=duration,
            sampling_interval=sampling_interval,
            variant=variant,
        )
        config = config.with_overrides(
            name=f"paper-{congestion_control}-{scheduler}",
            scheduler=scheduler,
            send_buffer_bytes=send_buffer_bytes,
        )
        results[scheduler] = run_experiment(config)
    return results


def queue_size_sweep(
    queue_sizes: Iterable[int] = (25, 50, 100, 200),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Ablate the bottleneck buffer size (design decision #1 in DESIGN.md)."""
    results: Dict[int, ExperimentResult] = {}
    for queue_packets in queue_sizes:
        config = ExperimentConfig(
            name=f"paper-{congestion_control}-q{queue_packets}",
            scenario=lambda qp=queue_packets: paper_scenario(variant, queue_packets=qp),
            congestion_control=congestion_control,
            duration=duration,
            paper_variant=variant,
        )
        results[queue_packets] = run_experiment(config)
    return results


def variant_comparison(
    *, congestion_control: str = "cubic", duration: float = 4.0
) -> Dict[str, ExperimentResult]:
    """Run both capacity labellings of the paper topology."""
    results: Dict[str, ExperimentResult] = {}
    for variant in ("as_stated", "as_solution"):
        config = paper_experiment(congestion_control, duration=duration, variant=variant)
        config = config.with_overrides(name=f"paper-{congestion_control}-{variant}")
        results[variant] = run_experiment(config)
    return results


def summarize_results(results: Dict[str, ExperimentResult]) -> List[dict]:
    """One summary dictionary per run (used by benchmarks and the CLI)."""
    return [result.summary() | {"key": str(key)} for key, result in results.items()]


# ---------------------------------------------------------------- competition
def mptcp_vs_tcp_shared_bottleneck(
    *,
    congestion_control: str = "lia",
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """MPTCP vs a single TCP flow on one shared bottleneck.

    The central fairness question of coupled congestion control: the MPTCP
    connection opens ``n_paths`` subflows that all cross the bottleneck and
    competes against one single-path TCP flow on its own access path.  With a
    perfectly TCP-fair coupled controller the bottleneck splits evenly
    (``mptcp_tcp_ratio`` ~ 1); with uncoupled per-subflow control MPTCP takes
    roughly ``n_paths`` shares.
    """
    topology, paths = shared_bottleneck(
        n_paths + 1, bottleneck_mbps, access_mbps
    )
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(kind="tcp", name="tcp", path_index=n_paths),
    ]
    return MultiFlowConfig(
        name=f"mptcp-vs-tcp-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def two_mptcp_competition(
    *,
    congestion_control_a: str = "lia",
    congestion_control_b: str = "lia",
    subflows_each: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """Two MPTCP connections compete for one shared bottleneck.

    Each connection gets its own disjoint set of access paths; only the
    bottleneck is shared.  Symmetric configurations should converge towards
    an even split (Jain's index near 1 over the two connections).
    """
    topology, paths = shared_bottleneck(
        2 * subflows_each, bottleneck_mbps, access_mbps
    )
    path_list = list(paths)
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp-a",
            paths=path_list[:subflows_each],
            congestion_control=congestion_control_a,
        ),
        FlowSpec(
            kind="mptcp",
            name="mptcp-b",
            paths=path_list[subflows_each:],
            congestion_control=congestion_control_b,
        ),
    ]
    return MultiFlowConfig(
        name=f"two-mptcp-{congestion_control_a}-vs-{congestion_control_b}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def cross_traffic_perturbation(
    *,
    congestion_control: str = "lia",
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    cross_rate_fraction: float = 0.5,
    on_duration: float = 0.5,
    off_duration: float = 0.5,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """Bursty on-off cross-traffic perturbs MPTCP on a shared bottleneck.

    A non-responsive on-off UDP source periodically claims
    ``cross_rate_fraction`` of the bottleneck, forcing the coupled controller
    to repeatedly re-search for the remaining capacity (the rate-adaptation
    scenario of telehaptic/SFC-style cross-traffic studies).
    """
    topology, paths = shared_bottleneck(
        n_paths + 1, bottleneck_mbps, access_mbps
    )
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(
            kind="onoff",
            name="cross-traffic",
            path_index=n_paths,
            rate_mbps=cross_rate_fraction * bottleneck_mbps,
            on_duration=on_duration,
            off_duration=off_duration,
        ),
    ]
    return MultiFlowConfig(
        name=f"cross-traffic-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


#: Named competition scenarios exposed through the CLI (``fairness`` command).
COMPETITION_SCENARIOS: Dict[str, Callable[..., MultiFlowConfig]] = {
    "mptcp_vs_tcp_shared_bottleneck": mptcp_vs_tcp_shared_bottleneck,
    "two_mptcp_competition": two_mptcp_competition,
    "cross_traffic_perturbation": cross_traffic_perturbation,
}
