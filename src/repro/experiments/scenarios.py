"""Named experiment sweeps behind the Results-section claims and the ablations.

* :func:`cc_comparison` -- RES-CC: run CUBIC, LIA and OLIA (and optionally the
  extension algorithms) on the paper topology and report who reaches the
  optimum, how fast and how stably.
* :func:`olia_default_path_sweep` -- RES-OLIA-DEFAULT: the paper observed
  that OLIA only reached the optimum when Path 2 was the default path.
* :func:`scheduler_comparison` -- ABL-SCHED: the data-scheduler ablation.
* :func:`queue_size_sweep` -- ablation over the bottleneck buffer size.
* :func:`variant_comparison` -- both capacity labellings of the topology.

Multi-flow competition scenarios (the fairness claims behind coupled
congestion control, run through :func:`repro.experiments.multiflow.run_multiflow`):

* :func:`mptcp_vs_tcp_shared_bottleneck` -- one MPTCP connection and one
  single-path TCP flow share a bottleneck; a TCP-fair coupled controller
  should split it evenly.
* :func:`two_mptcp_competition` -- two MPTCP connections compete on a
  common bottleneck.
* :func:`cross_traffic_perturbation` -- bursty on-off UDP cross-traffic
  perturbs an MPTCP connection's rate search on a shared bottleneck.

Network-dynamics scenarios (time-varying links and the mid-run subflow
lifecycle, run through :func:`repro.experiments.harness.run_experiment` with
a :class:`~repro.netsim.dynamics.DynamicsSpec` attached):

* :func:`link_flap_failover` -- the default (Wi-Fi) path fails mid-run and
  later recovers; the surviving cellular subflow must carry the connection
  (failover gap) and the healed path must be re-absorbed (re-convergence).
* :func:`capacity_step_tracking` -- the shared bottleneck's rate steps down
  and back up; the coupled controller must track the moving capacity.
* :func:`handover_subflow_migration` -- the connection starts on Wi-Fi only
  (:class:`~repro.core.path_manager.FailoverPathManager`); when Wi-Fi dies a
  cellular subflow is opened *at runtime* and the transfer migrates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.coupled import PAPER_ALGORITHMS
from ..core.path_manager import FailoverPathManager
from ..netsim.dynamics import DynamicsSpec, LinkDown, LinkRateChange, LinkUp, Schedule
from ..topologies.generators import shared_bottleneck, wifi_cellular
from ..topologies.paper import PAPER_DEFAULT_PATH_INDEX, paper_scenario
from .harness import ExperimentConfig, ExperimentResult, paper_experiment, run_experiment
from .multiflow import FlowSpec, MultiFlowConfig


def cc_comparison(
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    default_path_index: int = PAPER_DEFAULT_PATH_INDEX,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Run the paper experiment once per congestion-control algorithm."""
    results: Dict[str, ExperimentResult] = {}
    for algorithm in algorithms:
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_path_index,
            variant=variant,
        )
        results[algorithm] = run_experiment(config)
    return results


def olia_default_path_sweep(
    *,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    algorithm: str = "olia",
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Sweep which path is the default (shortest) path, keyed by path index."""
    results: Dict[int, ExperimentResult] = {}
    for default_index in range(3):
        config = paper_experiment(
            algorithm,
            duration=duration,
            sampling_interval=sampling_interval,
            default_path_index=default_index,
            variant=variant,
        )
        config = config.with_overrides(name=f"paper-{algorithm}-default{default_index + 1}")
        results[default_index] = run_experiment(config)
    return results


def scheduler_comparison(
    schedulers: Sequence[str] = ("minrtt", "roundrobin", "redundant"),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    sampling_interval: float = 0.1,
    send_buffer_bytes: Optional[int] = 256 * 1024,
    variant: str = "as_stated",
) -> Dict[str, ExperimentResult]:
    """Ablate the MPTCP data scheduler (with a bounded send buffer so it matters)."""
    results: Dict[str, ExperimentResult] = {}
    for scheduler in schedulers:
        config = paper_experiment(
            congestion_control,
            duration=duration,
            sampling_interval=sampling_interval,
            variant=variant,
        )
        config = config.with_overrides(
            name=f"paper-{congestion_control}-{scheduler}",
            scheduler=scheduler,
            send_buffer_bytes=send_buffer_bytes,
        )
        results[scheduler] = run_experiment(config)
    return results


def queue_size_sweep(
    queue_sizes: Iterable[int] = (25, 50, 100, 200),
    *,
    congestion_control: str = "cubic",
    duration: float = 3.0,
    variant: str = "as_stated",
) -> Dict[int, ExperimentResult]:
    """Ablate the bottleneck buffer size (design decision #1 in DESIGN.md)."""
    results: Dict[int, ExperimentResult] = {}
    for queue_packets in queue_sizes:
        config = ExperimentConfig(
            name=f"paper-{congestion_control}-q{queue_packets}",
            scenario=lambda qp=queue_packets: paper_scenario(variant, queue_packets=qp),
            congestion_control=congestion_control,
            duration=duration,
            paper_variant=variant,
        )
        results[queue_packets] = run_experiment(config)
    return results


def variant_comparison(
    *, congestion_control: str = "cubic", duration: float = 4.0
) -> Dict[str, ExperimentResult]:
    """Run both capacity labellings of the paper topology."""
    results: Dict[str, ExperimentResult] = {}
    for variant in ("as_stated", "as_solution"):
        config = paper_experiment(congestion_control, duration=duration, variant=variant)
        config = config.with_overrides(name=f"paper-{congestion_control}-{variant}")
        results[variant] = run_experiment(config)
    return results


def summarize_results(results: Dict[str, ExperimentResult]) -> List[dict]:
    """One summary dictionary per run (used by benchmarks and the CLI)."""
    return [result.summary() | {"key": str(key)} for key, result in results.items()]


# ---------------------------------------------------------------- competition
def mptcp_vs_tcp_shared_bottleneck(
    *,
    congestion_control: str = "lia",
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """MPTCP vs a single TCP flow on one shared bottleneck.

    The central fairness question of coupled congestion control: the MPTCP
    connection opens ``n_paths`` subflows that all cross the bottleneck and
    competes against one single-path TCP flow on its own access path.  With a
    perfectly TCP-fair coupled controller the bottleneck splits evenly
    (``mptcp_tcp_ratio`` ~ 1); with uncoupled per-subflow control MPTCP takes
    roughly ``n_paths`` shares.
    """
    topology, paths = shared_bottleneck(
        n_paths + 1, bottleneck_mbps, access_mbps
    )
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(kind="tcp", name="tcp", path_index=n_paths),
    ]
    return MultiFlowConfig(
        name=f"mptcp-vs-tcp-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def two_mptcp_competition(
    *,
    congestion_control_a: str = "lia",
    congestion_control_b: str = "lia",
    subflows_each: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """Two MPTCP connections compete for one shared bottleneck.

    Each connection gets its own disjoint set of access paths; only the
    bottleneck is shared.  Symmetric configurations should converge towards
    an even split (Jain's index near 1 over the two connections).
    """
    topology, paths = shared_bottleneck(
        2 * subflows_each, bottleneck_mbps, access_mbps
    )
    path_list = list(paths)
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp-a",
            paths=path_list[:subflows_each],
            congestion_control=congestion_control_a,
        ),
        FlowSpec(
            kind="mptcp",
            name="mptcp-b",
            paths=path_list[subflows_each:],
            congestion_control=congestion_control_b,
        ),
    ]
    return MultiFlowConfig(
        name=f"two-mptcp-{congestion_control_a}-vs-{congestion_control_b}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def cross_traffic_perturbation(
    *,
    congestion_control: str = "lia",
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    cross_rate_fraction: float = 0.5,
    on_duration: float = 0.5,
    off_duration: float = 0.5,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """Bursty on-off cross-traffic perturbs MPTCP on a shared bottleneck.

    A non-responsive on-off UDP source periodically claims
    ``cross_rate_fraction`` of the bottleneck, forcing the coupled controller
    to repeatedly re-search for the remaining capacity (the rate-adaptation
    scenario of telehaptic/SFC-style cross-traffic studies).
    """
    topology, paths = shared_bottleneck(
        n_paths + 1, bottleneck_mbps, access_mbps
    )
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(
            kind="onoff",
            name="cross-traffic",
            path_index=n_paths,
            rate_mbps=cross_rate_fraction * bottleneck_mbps,
            on_duration=on_duration,
            off_duration=off_duration,
        ),
    ]
    return MultiFlowConfig(
        name=f"cross-traffic-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def workload_background(
    *,
    congestion_control: str = "lia",
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    sessions: int = 10,
    mean_request_bytes: int = 200_000,
    requests_per_session: int = 5,
    think_time_s: float = 0.3,
    seed: int = 1,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """A request/response workload competes with MPTCP on a shared bottleneck.

    Instead of a synthetic CBR source, the cross-traffic here is a compiled
    :class:`~repro.workload.spec.WorkloadSpec` population -- heavy-tailed
    sized responses over warm TCP connections with think times -- so the
    perturbation has the on/off texture of real application traffic and the
    result carries an FCT report for the background sessions themselves.
    """
    from ..workload.spec import ArrivalProcess, RequestResponseSpec, SizeDistribution, WorkloadSpec

    topology, paths = shared_bottleneck(n_paths + 1, bottleneck_mbps, access_mbps)
    workload = WorkloadSpec(
        name="background",
        seed=seed,
        sessions=sessions,
        arrival=ArrivalProcess(
            kind="poisson", rate_per_s=max(sessions / max(duration / 2.0, 1e-9), 1e-9)
        ),
        request=RequestResponseSpec(
            requests_per_session=requests_per_session,
            response_size=SizeDistribution(kind="pareto", mean_bytes=mean_request_bytes),
            think_time_s=think_time_s,
        ),
    )
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(
            kind="workload",
            name="background",
            paths=[paths[n_paths]],
            workload=workload,
        ),
    ]
    return MultiFlowConfig(
        name=f"workload-background-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
    )


def aqm_vs_droptail(
    *,
    congestion_control: str = "lia",
    queue_kind: str = "red",
    ecn: bool = True,
    n_paths: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """The MPTCP-vs-TCP fairness contest under an AQM discipline.

    Identical to :func:`mptcp_vs_tcp_shared_bottleneck` except every link
    runs ``queue_kind`` (RED by default) and, with ``ecn=True``, the
    transports negotiate ECN -- so congestion shows up as CE marks and rate
    reductions instead of drops and retransmissions.  Comparing this run
    against the drop-tail baseline isolates what the signal plane changes:
    queueing delay, loss, and whether the fairness split survives.
    """
    topology, paths = shared_bottleneck(n_paths + 1, bottleneck_mbps, access_mbps)
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp",
            paths=list(paths)[:n_paths],
            congestion_control=congestion_control,
        ),
        FlowSpec(kind="tcp", name="tcp", path_index=n_paths),
    ]
    return MultiFlowConfig(
        name=f"aqm-{queue_kind}{'-ecn' if ecn else ''}-{congestion_control}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
        queue_kind=queue_kind,
        ecn=ecn,
    )


def ecn_mptcp_fairness(
    *,
    congestion_control_a: str = "lia",
    congestion_control_b: str = "lia",
    queue_kind: str = "red",
    ecn: bool = True,
    subflows_each: int = 2,
    bottleneck_mbps: float = 50.0,
    access_mbps: float = 100.0,
    duration: float = 4.0,
    sampling_interval: float = 0.1,
    warmup: float = 0.0,
) -> MultiFlowConfig:
    """Two MPTCP connections on an ECN-marking bottleneck.

    The two-connection competition of :func:`two_mptcp_competition` with an
    AQM bottleneck and ECN-capable transports: both coupled controllers see
    the same mark stream, so an asymmetric split reveals a controller that
    under- or over-reacts to marks relative to its competitor.
    """
    topology, paths = shared_bottleneck(2 * subflows_each, bottleneck_mbps, access_mbps)
    path_list = list(paths)
    flows = [
        FlowSpec(
            kind="mptcp",
            name="mptcp-a",
            paths=path_list[:subflows_each],
            congestion_control=congestion_control_a,
        ),
        FlowSpec(
            kind="mptcp",
            name="mptcp-b",
            paths=path_list[subflows_each:],
            congestion_control=congestion_control_b,
        ),
    ]
    return MultiFlowConfig(
        name=f"ecn-fairness-{congestion_control_a}-vs-{congestion_control_b}",
        scenario=(topology, paths),
        flows=flows,
        duration=duration,
        sampling_interval=sampling_interval,
        warmup=warmup,
        bottleneck_link=("agg", "core"),
        queue_kind=queue_kind,
        ecn=ecn,
    )


#: Named competition scenarios exposed through the CLI (``fairness`` command).
COMPETITION_SCENARIOS: Dict[str, Callable[..., MultiFlowConfig]] = {
    "mptcp_vs_tcp_shared_bottleneck": mptcp_vs_tcp_shared_bottleneck,
    "two_mptcp_competition": two_mptcp_competition,
    "cross_traffic_perturbation": cross_traffic_perturbation,
    "workload_background": workload_background,
    "aqm_vs_droptail": aqm_vs_droptail,
    "ecn_mptcp_fairness": ecn_mptcp_fairness,
}


# ------------------------------------------------------------------ dynamics
def link_flap_failover(
    *,
    congestion_control: str = "lia",
    duration: float = 5.0,
    sampling_interval: float = 0.1,
    down_at: Optional[float] = None,
    up_at: Optional[float] = None,
    wifi_mbps: float = 50.0,
    cellular_mbps: float = 20.0,
) -> ExperimentConfig:
    """The default (Wi-Fi) path flaps down and back up mid-run.

    A two-subflow MPTCP connection on the Wi-Fi/cellular topology loses its
    default path's access link at ``down_at`` and gets it back at ``up_at``
    (defaults: 30% / 60% of the duration).  The failover gap measures how
    quickly the surviving cellular subflow picks up the re-injected data;
    the re-convergence time after ``up_at`` measures how quickly the healed
    path is filled again.
    """
    if down_at is None:
        down_at = 0.3 * duration
    if up_at is None:
        up_at = 0.6 * duration
    if not 0.0 < down_at < up_at < duration:
        raise ValueError("need 0 < down_at < up_at < duration")
    topology, paths = wifi_cellular(wifi_mbps, cellular_mbps)
    schedule = (
        Schedule()
        .at(down_at, LinkDown("client", "wifi_ap"))
        .at(up_at, LinkUp("client", "wifi_ap"))
    )
    spec = DynamicsSpec(
        schedule=schedule,
        epochs=(down_at, up_at),
        capacity_profile=(
            (0.0, wifi_mbps + cellular_mbps),
            (down_at, cellular_mbps),
            (up_at, wifi_mbps + cellular_mbps),
        ),
        description=(
            f"Wi-Fi access link down at t={down_at:g}s, up at t={up_at:g}s; "
            "the cellular subflow carries the connection through the outage"
        ),
    )
    return ExperimentConfig(
        name=f"link-flap-{congestion_control}",
        scenario=(topology, paths),
        congestion_control=congestion_control,
        duration=duration,
        sampling_interval=sampling_interval,
        default_path_index=0,
        dynamics=spec,
    )


def capacity_step_tracking(
    *,
    congestion_control: str = "lia",
    duration: float = 5.0,
    sampling_interval: float = 0.1,
    step_down_at: Optional[float] = None,
    step_up_at: Optional[float] = None,
    bottleneck_mbps: float = 50.0,
    reduced_mbps: float = 20.0,
    access_mbps: float = 100.0,
    n_paths: int = 2,
) -> ExperimentConfig:
    """The shared bottleneck's capacity steps down, then back up.

    Both subflows cross one bottleneck whose rate drops to ``reduced_mbps``
    at ``step_down_at`` and recovers at ``step_up_at`` (defaults: 30% / 60%
    of the duration).  The capacity-tracking error measures how closely the
    coupled controller follows the moving capacity; the per-epoch
    re-convergence times measure how fast it settles on each new level.
    """
    if step_down_at is None:
        step_down_at = 0.3 * duration
    if step_up_at is None:
        step_up_at = 0.6 * duration
    if not 0.0 < step_down_at < step_up_at < duration:
        raise ValueError("need 0 < step_down_at < step_up_at < duration")
    topology, paths = shared_bottleneck(n_paths, bottleneck_mbps, access_mbps)
    schedule = (
        Schedule()
        .at(step_down_at, LinkRateChange("agg", "core", reduced_mbps))
        .at(step_up_at, LinkRateChange("agg", "core", bottleneck_mbps))
    )
    spec = DynamicsSpec(
        schedule=schedule,
        epochs=(step_down_at, step_up_at),
        capacity_profile=(
            (0.0, bottleneck_mbps),
            (step_down_at, reduced_mbps),
            (step_up_at, bottleneck_mbps),
        ),
        description=(
            f"bottleneck {bottleneck_mbps:g} -> {reduced_mbps:g} Mbps at "
            f"t={step_down_at:g}s, back at t={step_up_at:g}s"
        ),
    )
    return ExperimentConfig(
        name=f"capacity-step-{congestion_control}",
        scenario=(topology, paths),
        congestion_control=congestion_control,
        duration=duration,
        sampling_interval=sampling_interval,
        default_path_index=0,
        dynamics=spec,
    )


def handover_subflow_migration(
    *,
    congestion_control: str = "lia",
    duration: float = 5.0,
    sampling_interval: float = 0.1,
    handover_at: Optional[float] = None,
    wifi_mbps: float = 50.0,
    cellular_mbps: float = 20.0,
) -> ExperimentConfig:
    """Mobile handover: Wi-Fi dies, a cellular subflow joins at runtime.

    The connection starts on the Wi-Fi path *alone* (failover path manager).
    When the Wi-Fi access link goes down at ``handover_at`` (default: 40% of
    the duration), the manager opens a cellular subflow mid-connection and
    the transfer migrates -- exercising the runtime add-subflow path and DSN
    re-injection.
    """
    if handover_at is None:
        handover_at = 0.4 * duration
    if not 0.0 < handover_at < duration:
        raise ValueError("need 0 < handover_at < duration")
    topology, paths = wifi_cellular(wifi_mbps, cellular_mbps)
    schedule = Schedule().at(handover_at, LinkDown("client", "wifi_ap"))
    spec = DynamicsSpec(
        schedule=schedule,
        epochs=(handover_at,),
        capacity_profile=(
            (0.0, wifi_mbps),
            (handover_at, cellular_mbps),
        ),
        description=(
            f"Wi-Fi-only connection loses its path at t={handover_at:g}s; "
            "a cellular subflow is opened mid-run and the transfer migrates"
        ),
    )
    return ExperimentConfig(
        name=f"handover-{congestion_control}",
        scenario=(topology, paths),
        congestion_control=congestion_control,
        duration=duration,
        sampling_interval=sampling_interval,
        path_manager=FailoverPathManager(list(paths)),
        dynamics=spec,
    )


#: Named dynamics scenarios exposed through the CLI (``dynamics`` command).
DYNAMICS_SCENARIOS: Dict[str, Callable[..., ExperimentConfig]] = {
    "link_flap_failover": link_flap_failover,
    "capacity_step_tracking": capacity_step_tracking,
    "handover_subflow_migration": handover_subflow_migration,
}
