"""Run unmodified experiment configurations at flow-level fidelity.

These adapters accept the exact :class:`~repro.experiments.harness.ExperimentConfig`
and :class:`~repro.experiments.multiflow.MultiFlowConfig` objects the
packet-level runners take, execute them on :class:`~repro.flowsim.engine.FlowLevelSim`,
and return results of the same shape (:class:`~repro.experiments.harness.ExperimentResult`
/ :class:`~repro.experiments.multiflow.MultiFlowResult`) -- per-path throughput
time series, fairness reports, convergence metrics -- so everything downstream
(validation, campaign records, plots) works on either backend.

Fidelity mapping:

* an MPTCP connection is one multi-route flow; *coupled* algorithms
  (LIA/OLIA/BALIA/wVegas) weight each subflow ``1/n`` so the connection
  claims a single TCP-fair share of a shared bottleneck, uncoupled
  CUBIC/Reno subflows each claim a full share;
* single-path TCP is a greedy unit-weight flow, UDP a capped
  non-responsive flow, and an on-off source a train of capped
  non-responsive mini-flows (one per ON burst);
* dynamics events translate to capacity changes (`LinkRateChange`,
  `LinkDown`/`LinkUp`, `LossBurst` as a transient capacity scale);
  `LinkDelayChange` is a no-op -- flow-level rates do not see RTT;
* packet-scale parameters (``mss``, ``scheduler``, ``join_delay``,
  buffers, queue sizes) have no flow-level equivalent and are ignored.

What you lose is microstructure -- slow-start transients, RTT unfairness,
retransmissions -- which is exactly what :mod:`repro.measure.validation`'s
cross-fidelity comparison quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..measure.convergence import analyze_convergence
from ..measure.dynamics import analyze_dynamics
from ..measure.fairness import analyze_fairness
from ..measure.fct import FctReport
from ..measure.flowstats import ConnectionStats, SubflowStats
from ..measure.sampling import TimeSeries
from ..measure.signalplane import modeled_signal_plane
from ..model.bottleneck import build_constraints
from ..model.lp import max_total_throughput
from ..model.paths import PathSet
from ..netsim.dynamics import (
    DynamicsSpec,
    LinkDelayChange,
    LinkDown,
    LinkRateChange,
    LinkUp,
    LossBurst,
)
from .engine import FlowDescriptor, FlowLevelSim, FlowOutcome, segments_to_timeseries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..experiments.harness import ExperimentConfig, ExperimentResult
    from ..experiments.multiflow import FlowSpec, MultiFlowConfig, MultiFlowResult

#: Backends an experiment configuration can select.
BACKENDS = ("packet", "flowlevel")

#: Effective-capacity factor of an AQM discipline at flow level: keeping the
#: standing queue short costs a sliver of throughput relative to a brimming
#: drop-tail buffer (CoDel's 5 ms target trims less than RED's mid-threshold
#: operating point).  Deterministic, so campaign sweeps see the same
#: discipline ordering at both fidelities.
AQM_CAPACITY_FACTOR = {"red": 0.97, "codel": 0.99}


def _apply_queue_kind(sim: FlowLevelSim, topology, queue_kind: Optional[str]) -> None:
    """Map an AQM ``queue_kind`` override onto rate-capped link classes."""
    if queue_kind is None:
        return
    factor = AQM_CAPACITY_FACTOR.get(queue_kind)
    if factor is None:
        return
    for spec in topology.links:
        sim.scale_link(spec.src, spec.dst, factor)


def coupled_algorithm(congestion_control: str) -> bool:
    """Whether a congestion-control name denotes a coupled MPTCP algorithm."""
    from ..core.coupled import MULTIPATH_ALGORITHMS
    from ..core.coupled.base import CoupledCongestionControl

    try:
        algorithm = MULTIPATH_ALGORITHMS[congestion_control.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown multipath congestion control {congestion_control!r}; "
            f"choose from {sorted(MULTIPATH_ALGORITHMS)}"
        ) from None
    return issubclass(algorithm, CoupledCongestionControl)


def apply_dynamics(sim: FlowLevelSim, spec: Optional[DynamicsSpec]) -> None:
    """Translate a packet-level dynamics schedule to capacity events.

    Rate changes, outages and loss bursts all move link capacity; delay
    changes have no flow-level observable (rates here are allocation-driven,
    not RTT-driven) and are skipped.
    """
    if spec is None or not spec.schedule:
        return
    for time, event in spec.schedule:
        if isinstance(event, LinkRateChange):
            sim.schedule(
                time,
                sim.set_link_rate,
                event.src,
                event.dst,
                event.rate_mbps,
                bidirectional=event.bidirectional,
            )
        elif isinstance(event, LinkDown):
            sim.schedule(
                time, sim.set_link_down, event.src, event.dst,
                bidirectional=event.bidirectional,
            )
        elif isinstance(event, LinkUp):
            sim.schedule(
                time, sim.set_link_up, event.src, event.dst,
                bidirectional=event.bidirectional,
            )
        elif isinstance(event, LossBurst):
            sim.schedule(
                time, sim.scale_link, event.src, event.dst,
                1.0 - event.loss_rate, bidirectional=event.bidirectional,
            )
            sim.schedule(
                time + event.duration, sim.scale_link, event.src, event.dst,
                1.0, bidirectional=event.bidirectional,
            )
        elif isinstance(event, LinkDelayChange):
            continue
        else:
            raise ConfigurationError(
                f"flow-level backend cannot translate dynamics event {event!r}"
            )


def _outcome_series(
    outcome: FlowOutcome, interval: float, *, start: float, end: float, label: str
) -> TimeSeries:
    merged = [segment for unit in outcome.segments for segment in unit]
    return segments_to_timeseries(merged, interval, start=start, end=end, label=label)


# ------------------------------------------------------------- run_experiment
def run_experiment_flowlevel(config: "ExperimentConfig") -> "ExperimentResult":
    """Flow-level twin of :func:`repro.experiments.harness.run_experiment`."""
    from ..experiments.harness import ExperimentResult

    if config.path_manager is not None:
        raise ConfigurationError(
            "the flow-level backend has no subflow lifecycle; "
            "path_manager scenarios need backend='packet'"
        )
    topology, paths = config.build_scenario()
    sim = FlowLevelSim(
        topology, allocator=config.flow_allocator, record_timeseries=True
    )
    _apply_queue_kind(sim, topology, config.queue_kind)
    coupled = coupled_algorithm(config.congestion_control)
    tags = tuple(
        path.tag if path.tag is not None else index + 1
        for index, path in enumerate(paths)
    )
    sim.add_flow(
        FlowDescriptor(
            name="connection",
            routes=tuple(tuple(path.nodes) for path in paths),
            start=0.0,
            size_bytes=config.total_bytes,
            coupled=coupled,
            tags=tags,
            kind="mptcp",
        )
    )
    apply_dynamics(sim, config.dynamics)
    run = sim.run(config.duration)
    outcome = run.flows["connection"]

    start, end = config.warmup, config.duration
    interval = config.sampling_interval
    per_path = {
        tag: outcome.unit_series(
            index, interval, start=start, end=end, label=f"tag {tag}"
        )
        for index, tag in enumerate(tags)
    }
    total = _outcome_series(outcome, interval, start=start, end=end, label="total")

    system = build_constraints(topology, paths)
    optimum = max_total_throughput(system)
    convergence = analyze_convergence(total, optimum.total)
    spec = config.dynamics
    dynamics_report = None
    if spec is not None and (spec.measurement_epochs() or spec.capacity_profile):
        dynamics_report = analyze_dynamics(total, spec)

    return ExperimentResult(
        config=config,
        per_path_series=per_path,
        total_series=total,
        optimum=optimum,
        convergence=convergence,
        stats=_synthesize_stats(config, paths, tags, outcome, config.duration),
        constraint_system=system,
        drops=0,
        events_processed=run.transitions,
        dynamics=dynamics_report,
        signal_plane=modeled_signal_plane(
            duration=config.duration,
            queue_kind=config.queue_kind or "droptail",
            ecn=config.ecn,
            utilization=convergence.utilization_of_optimum,
            flows=len(paths),
        ),
    )


def _synthesize_stats(
    config: "ExperimentConfig",
    paths: PathSet,
    tags: Tuple[int, ...],
    outcome: FlowOutcome,
    duration: float,
) -> ConnectionStats:
    """A :class:`ConnectionStats` equivalent for a fluid connection.

    Packet-only counters (retransmissions, cwnd, srtt) are identically zero
    or absent at this fidelity.
    """
    subflows = []
    total_bytes = 0
    for index, path in enumerate(paths):
        delivered = sum(
            int(round((seg_end - seg_start) * rate * 1e6 / 8.0))
            for seg_start, seg_end, rate in outcome.segments[index]
        )
        total_bytes += delivered
        subflows.append(
            SubflowStats(
                subflow_id=index + 1,
                name=path.name or f"subflow-{index + 1}",
                tag=tags[index],
                is_default=index == config.default_path_index,
                bytes_acked=delivered,
                mean_throughput_mbps=delivered * 8.0 / duration / 1e6,
                retransmissions=0,
                timeouts=0,
                fast_retransmits=0,
                final_cwnd_segments=0.0,
                srtt_ms=None,
            )
        )
    return ConnectionStats(
        congestion_control=config.congestion_control,
        scheduler=config.scheduler,
        duration=duration,
        bytes_delivered=outcome.bytes_delivered,
        total_throughput_mbps=outcome.bytes_delivered * 8.0 / duration / 1e6,
        retransmissions=0,
        duplicate_bytes=0,
        subflows=subflows,
    )


# -------------------------------------------------------------- run_multiflow
class _FlowPlan:
    """How one :class:`FlowSpec` maps onto engine flows."""

    __slots__ = (
        "spec", "name", "flow_id", "engine_names", "tag_map", "optimum_mbps",
        "workload_run", "workload_plan",
    )

    def __init__(self, spec: "FlowSpec", name: str, flow_id: int) -> None:
        self.spec = spec
        self.name = name
        self.flow_id = flow_id
        self.engine_names: List[str] = []
        self.tag_map: Dict[int, int] = {}
        self.optimum_mbps: Optional[float] = None
        self.workload_run = None  # FlowLevelWorkloadRun of a workload flow
        self.workload_plan = None


def run_multiflow_flowlevel(config: "MultiFlowConfig") -> "MultiFlowResult":
    """Flow-level twin of :func:`repro.experiments.multiflow.run_multiflow`."""
    from ..experiments.multiflow import TAG_STRIDE, FlowResult, MultiFlowResult

    if not config.flows:
        raise ConfigurationError("a multi-flow run needs at least one flow")
    topology, base_paths = config.build_scenario()
    sim = FlowLevelSim(
        topology, allocator=config.flow_allocator, record_timeseries=True
    )
    _apply_queue_kind(sim, topology, config.queue_kind)

    plans: List[_FlowPlan] = []
    for index, spec in enumerate(config.flows):
        name = spec.name or f"{spec.kind}-{index + 1}"
        if any(plan.name == name for plan in plans):
            raise ConfigurationError(f"duplicate flow name {name!r}")
        plan = _FlowPlan(spec, name, flow_id=index + 1)
        _plan_flow(plan, sim, topology, base_paths, config, index * TAG_STRIDE)
        plans.append(plan)

    apply_dynamics(sim, config.dynamics)
    run = sim.run(config.duration)

    start, end = config.warmup, config.duration
    interval = config.sampling_interval
    measured: List[Tuple[_FlowPlan, TimeSeries, Dict[int, TimeSeries], int]] = []
    for plan in plans:
        if plan.workload_run is not None:
            # Workload transfers are added mid-run from completion callbacks,
            # so the engine names are only known afterwards.
            prefix = plan.workload_run.prefix
            engine_names = [name for name in run.flows if name.startswith(prefix)]
        else:
            engine_names = plan.engine_names
        outcomes = [run.flows[engine_name] for engine_name in engine_names]
        segments_by_tag: Dict[int, list] = {}
        delivered = 0
        for outcome in outcomes:
            delivered += outcome.bytes_delivered
            for unit, tag in zip(outcome.segments, outcome.tags):
                segments_by_tag.setdefault(tag, []).extend(unit)
        series = segments_to_timeseries(
            [seg for segs in segments_by_tag.values() for seg in segs],
            interval, start=start, end=end, label=plan.name,
        )
        per_path = {
            original: segments_to_timeseries(
                segments_by_tag.get(original, []),
                interval, start=start, end=end, label=f"tag {installed}",
            )
            for original, installed in plan.tag_map.items()
        }
        measured.append((plan, series, per_path, delivered))

    bottleneck_capacity = None
    if config.bottleneck_link is not None:
        bottleneck_capacity = topology.capacity_of(*config.bottleneck_link)
    fairness = analyze_fairness(
        {plan.name: series for plan, series, _, _ in measured},
        {plan.name: plan.spec.kind for plan, _, _, _ in measured},
        bottleneck_capacity_mbps=bottleneck_capacity,
    )
    results = [
        FlowResult(
            spec=plan.spec,
            name=plan.name,
            kind=plan.spec.kind,
            flow_id=plan.flow_id,
            series=series,
            per_path_series=per_path,
            mean_mbps=fairness.per_flow_mbps[plan.name],
            bytes_delivered=delivered,
            retransmissions=0,
            tag_map=dict(plan.tag_map),
            optimum_mbps=plan.optimum_mbps,
            stats=None,
            fct=(
                None
                if plan.workload_run is None
                else FctReport.from_records(
                    plan.workload_run.records,
                    offered=plan.workload_plan.total_transfers,
                )
            ),
        )
        for plan, series, per_path, delivered in measured
    ]
    responsive_flows = sum(
        1 for plan in plans if plan.spec.kind in ("mptcp", "tcp", "workload")
    )
    if bottleneck_capacity:
        total_mbps = sum(fairness.per_flow_mbps.values())
        bottleneck_utilization = total_mbps / bottleneck_capacity
    else:
        # No declared bottleneck: greedy responsive flows saturate whatever
        # the binding constraint is, so treat the run as congested.
        bottleneck_utilization = 1.0 if responsive_flows else 0.0
    return MultiFlowResult(
        config=config,
        flows=results,
        fairness=fairness,
        drops=0,
        events_processed=run.transitions,
        signal_plane=modeled_signal_plane(
            duration=config.duration,
            queue_kind=config.queue_kind or "droptail",
            ecn=config.ecn,
            utilization=bottleneck_utilization,
            flows=responsive_flows,
        ),
    )


def _plan_flow(
    plan: _FlowPlan,
    sim: FlowLevelSim,
    topology,
    base_paths: PathSet,
    config: "MultiFlowConfig",
    tag_base: int,
) -> None:
    from ..experiments.multiflow import _coerce_path_objects, _single_path_for

    spec = plan.spec
    if spec.kind == "mptcp":
        raw = (
            _coerce_path_objects(spec.paths)
            if spec.paths is not None
            else list(base_paths)
        )
        tags = tuple(
            path.tag if path.tag is not None else index + 1
            for index, path in enumerate(raw)
        )
        plan.tag_map = {tag: tag_base + tag for tag in tags}
        coupled = coupled_algorithm(spec.congestion_control or "lia")
        sim.add_flow(
            FlowDescriptor(
                name=plan.name,
                routes=tuple(tuple(path.nodes) for path in raw),
                start=spec.start,
                size_bytes=spec.total_bytes,
                coupled=coupled,
                tags=tags,
                kind="mptcp",
            )
        )
        plan.engine_names = [plan.name]
        plan.optimum_mbps = max_total_throughput(
            build_constraints(topology, raw)
        ).total
        return

    if spec.kind == "workload":
        from ..workload.flowlevel import FlowLevelWorkloadRun

        raw = (
            _coerce_path_objects(spec.paths)
            if spec.paths is not None
            else list(base_paths)
        )
        tags = tuple(
            path.tag if path.tag is not None else index + 1
            for index, path in enumerate(raw)
        )
        plan.tag_map = {tag: tag_base + tag for tag in tags}
        workload_plan = spec.workload.compile(len(raw))
        workload_run = FlowLevelWorkloadRun(
            sim, workload_plan, raw, prefix=f"{plan.name}/"
        )
        workload_run.install()
        plan.workload_run = workload_run
        plan.workload_plan = workload_plan
        plan.optimum_mbps = max_total_throughput(
            build_constraints(topology, raw)
        ).total
        return

    path = _single_path_for(spec, base_paths)
    tag = path.tag if path.tag is not None else 1
    plan.tag_map = {tag: tag_base + tag}
    route = tuple(path.nodes)

    if spec.kind == "tcp":
        sim.add_flow(
            FlowDescriptor(
                name=plan.name,
                routes=(route,),
                start=spec.start,
                size_bytes=spec.total_bytes,
                tags=(tag,),
                kind="tcp",
            )
        )
        plan.engine_names = [plan.name]
        plan.optimum_mbps = path.capacity(topology)
        return

    stop_at = spec.stop if spec.stop is not None else config.duration
    plan.optimum_mbps = min(spec.rate_mbps, path.capacity(topology))
    if spec.kind == "udp":
        sim.add_flow(
            FlowDescriptor(
                name=plan.name,
                routes=(route,),
                start=spec.start,
                stop=stop_at,
                cap_mbps=spec.rate_mbps,
                responsive=False,
                tags=(tag,),
                kind="udp",
            )
        )
        plan.engine_names = [plan.name]
        return

    # On-off: one capped non-responsive mini-flow per ON burst.
    period = spec.on_duration + spec.off_duration
    if period <= 0:
        raise ConfigurationError(
            f"onoff flow {plan.name!r} needs a positive on+off period"
        )
    burst_start = spec.start
    burst = 0
    while burst_start < stop_at:
        engine_name = f"{plan.name}#on{burst}"
        sim.add_flow(
            FlowDescriptor(
                name=engine_name,
                routes=(route,),
                start=burst_start,
                stop=min(burst_start + spec.on_duration, stop_at),
                cap_mbps=spec.rate_mbps,
                responsive=False,
                tags=(tag,),
                kind="onoff",
            )
        )
        plan.engine_names.append(engine_name)
        burst += 1
        burst_start = spec.start + burst * period
