"""The flow-level event loop: advance between rate changes, never per packet.

:class:`FlowLevelSim` models each flow as a fluid transfer over one or more
:class:`~repro.netsim.topology.Topology` paths.  Flows with the same route,
weight and cap are aggregated into *rate classes*; the allocator
(:mod:`repro.flowsim.allocator`) assigns every class a per-flow rate, and the
engine only wakes up when those rates can change:

* a flow **arrives** (scheduled up front),
* a flow **completes** (earliest predicted finish given the current rates),
* a greedy flow **departs** (its stop time), or
* a **network dynamics** event fires (link rate change / down / up / loss
  burst translated to a capacity scale).

Completion tracking uses the classic processor-sharing *virtual service*
trick: every class accumulates cumulative per-flow service ``S(t)`` (bytes);
a flow of size ``s`` joining at service level ``S0`` finishes exactly when
``S`` reaches ``S0 + s``.  Within a class all flows share one rate, so the
next finisher is simply the smallest target in a per-class heap -- one heap
operation per completion, never a re-sort.  The allocation itself is
memoised on (capacity version, per-class populations): in birth-death churn
the same population vector recurs constantly, so most events skip the solver
entirely.

Multi-path flows (an MPTCP connection at flow-level fidelity) place one unit
per path; coupled connections give each unit weight ``1/n_paths`` so the
whole connection claims a single fair share on a shared bottleneck.  Sized
multi-path flows are tracked explicitly (their finish depends on the sum of
several class rates), which stays cheap while such flows are few.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..measure.sampling import TimeSeries
from ..netsim.topology import Topology
from .allocator import ClassDemand, RateAllocator, make_allocator

#: Mbps -> bytes per second.
MBPS_TO_BYTES_PER_S = 1e6 / 8.0

_INF = math.inf


@dataclass(frozen=True)
class FlowDescriptor:
    """One flow offered to the flow-level engine.

    Parameters
    ----------
    name:
        Unique flow name (results are keyed by it).
    routes:
        One node path per unit; multi-route flows model MPTCP connections.
    start:
        Arrival time (flows arriving after the run's end never start).
    size_bytes:
        Transfer size; ``None`` makes the flow greedy (it stays until
        ``stop`` or the end of the run).
    stop:
        Departure time for greedy flows (ignored for sized flows).
    cap_mbps:
        Per-unit rate cap (CBR sources, application-limited flows).
    coupled:
        Weight each unit ``1/len(routes)`` (coupled MPTCP) instead of 1.
    responsive:
        False for constant-bit-rate traffic that does not back off; such
        flows are allocated before the fair sharing of the remainder.
    tags:
        Optional per-route tag carried through to results (path tagging).
    kind:
        Free-form label carried through to results.
    """

    name: str
    routes: Tuple[Tuple[str, ...], ...]
    start: float = 0.0
    size_bytes: Optional[int] = None
    stop: Optional[float] = None
    cap_mbps: Optional[float] = None
    coupled: bool = False
    responsive: bool = True
    tags: Optional[Tuple[int, ...]] = None
    kind: str = "flow"

    def __post_init__(self) -> None:
        if not self.routes:
            raise ConfigurationError(f"flow {self.name!r} needs at least one route")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ConfigurationError(f"flow {self.name!r} size must be positive")
        if self.start < 0:
            raise ConfigurationError(f"flow {self.name!r} cannot start at t={self.start}")


@dataclass
class FlowCompletion:
    """One finished transfer."""

    name: str
    start: float
    finish: float
    size_bytes: int
    kind: str = "flow"

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def mean_mbps(self) -> float:
        if self.finish <= self.start:
            return 0.0
        return self.size_bytes * 8.0 / (self.finish - self.start) / 1e6


@dataclass
class FlowOutcome:
    """Final per-flow accounting (completed or still active at the end)."""

    name: str
    kind: str
    start: float
    end: float
    bytes_delivered: int
    completed: bool
    #: Per-unit piecewise-constant rate segments ``(t0, t1, mbps)``; only
    #: populated when the engine records time series.
    segments: List[List[Tuple[float, float, float]]] = field(default_factory=list)
    tags: Tuple[int, ...] = ()

    def unit_series(
        self, unit: int, interval: float, *, start: float, end: float, label: str = ""
    ) -> TimeSeries:
        return segments_to_timeseries(
            self.segments[unit], interval, start=start, end=end, label=label
        )

    def series(
        self, interval: float, *, start: float, end: float, label: str = ""
    ) -> TimeSeries:
        merged = [segment for unit in self.segments for segment in unit]
        return segments_to_timeseries(merged, interval, start=start, end=end, label=label)


@dataclass
class FlowLevelResult:
    """Everything a flow-level run produces."""

    duration: float
    transitions: int
    completions: List[FlowCompletion]
    flows: Dict[str, FlowOutcome]
    max_concurrent: int

    def completion_times(self) -> List[float]:
        return [c.duration for c in self.completions]

    def summary(self) -> dict:
        durations = sorted(self.completion_times())

        def _pct(p: float) -> Optional[float]:
            if not durations:
                return None
            return durations[min(int(p * len(durations)), len(durations) - 1)]

        return {
            "duration_s": self.duration,
            "transitions": self.transitions,
            "flows": len(self.flows),
            "completed": len(self.completions),
            "max_concurrent": self.max_concurrent,
            "fct_p50_s": _pct(0.50),
            "fct_p90_s": _pct(0.90),
            "fct_p99_s": _pct(0.99),
        }


def segments_to_timeseries(
    segments: Sequence[Tuple[float, float, float]],
    interval: float,
    *,
    start: float = 0.0,
    end: float,
    label: str = "",
) -> TimeSeries:
    """Bin piecewise-constant rate segments the way the capture binning does.

    Each segment contributes ``rate * overlap`` worth of traffic to every
    sampling bin it overlaps; bin values are mean Mbps over the bin, and bin
    timestamps are interval *ends* -- the exact convention of
    :func:`repro.measure.sampling.throughput_timeseries`.
    """
    if interval <= 0:
        raise ConfigurationError("sampling interval must be positive")
    bins = int(round((end - start) / interval))
    if bins <= 0:
        return TimeSeries(label=label, interval=interval)
    values = [0.0] * bins
    for seg_start, seg_end, rate_mbps in segments:
        if rate_mbps <= 0.0 or seg_end <= seg_start:
            continue
        lo = max(seg_start, start)
        hi = min(seg_end, end)
        if hi <= lo:
            continue
        first = max(int((lo - start) / interval), 0)
        last = min(int(math.ceil((hi - start) / interval)), bins)
        for index in range(first, last):
            bin_lo = start + index * interval
            bin_hi = bin_lo + interval
            overlap = min(hi, bin_hi) - max(lo, bin_lo)
            if overlap > 0:
                values[index] += rate_mbps * overlap / interval
    times = [start + (index + 1) * interval for index in range(bins)]
    return TimeSeries(times=times, values=values, label=label, interval=interval)


class _RateClass:
    """All flows sharing one (route, weight, cap, responsiveness) tuple."""

    __slots__ = (
        "links",
        "weight",
        "cap",
        "responsive",
        "count",
        "rate",
        "byte_rate",
        "service",
        "heap",
        "members",
    )

    def __init__(
        self,
        links: Tuple[int, ...],
        weight: float,
        cap: Optional[float],
        responsive: bool,
    ) -> None:
        self.links = links
        self.weight = weight
        self.cap = cap
        self.responsive = responsive
        self.count = 0
        self.rate = 0.0  # per-flow Mbps
        self.byte_rate = 0.0  # per-flow bytes/s
        self.service = 0.0  # cumulative per-flow service, bytes
        self.heap: List[Tuple[float, int, "_Flow"]] = []
        self.members: List["_Unit"] = []


class _Unit:
    """One flow's presence in one rate class."""

    __slots__ = ("cls", "join_service", "segments", "segment_start", "segment_rate")

    def __init__(self, cls: _RateClass, now: float) -> None:
        self.cls = cls
        self.join_service = cls.service
        self.segments: List[Tuple[float, float, float]] = []
        self.segment_start = now
        self.segment_rate = cls.rate

    def delivered(self) -> float:
        return self.cls.service - self.join_service

    def flush_segment(self, now: float) -> None:
        if now > self.segment_start and self.segment_rate > 0.0:
            self.segments.append((self.segment_start, now, self.segment_rate))
        self.segment_start = now
        self.segment_rate = self.cls.rate


class _Flow:
    __slots__ = ("descriptor", "units", "active", "end", "delivered_final", "completed")

    def __init__(self, descriptor: FlowDescriptor) -> None:
        self.descriptor = descriptor
        self.units: List[_Unit] = []
        self.active = False
        self.end = descriptor.start
        self.delivered_final = 0
        self.completed = False

    def delivered(self) -> float:
        if not self.active:
            return float(self.delivered_final)
        return sum(unit.delivered() for unit in self.units)


# Event actions, ordered: simultaneous departures fire before arrivals so a
# stop-and-restart (on-off bursts) at the same instant stays consistent.
_DEPART, _ARRIVE, _DYNAMICS = 0, 1, 2


class FlowLevelSim:
    """Flow-level simulator over one topology.

    Parameters
    ----------
    topology:
        Link capacities (Mbps) come from here; delays are irrelevant at this
        fidelity.
    allocator:
        An allocator name from :data:`repro.flowsim.allocator.ALLOCATORS`
        or a ready instance.
    record_timeseries:
        Keep per-flow piecewise-rate segments for throughput time series.
        Costs O(flows touched) per rate change -- leave off for 10k-flow
        runs, on for validation-scale scenarios.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        allocator: Union[str, RateAllocator] = "maxmin",
        record_timeseries: bool = False,
    ) -> None:
        self.topology = topology
        self.allocator = make_allocator(allocator)
        self.record_timeseries = record_timeseries

        self._link_index: Dict[Tuple[str, str], int] = {}
        self._nominal: List[float] = []
        self._factor: List[float] = []
        self._down: List[bool] = []
        self._capacity: List[float] = []
        for spec in topology.links:
            self._link_index[(spec.src, spec.dst)] = len(self._nominal)
            self._nominal.append(float(spec.capacity_mbps))
            self._factor.append(1.0)
            self._down.append(False)
            self._capacity.append(float(spec.capacity_mbps))

        self._classes: List[_RateClass] = []
        self._class_by_key: Dict[Tuple, _RateClass] = {}
        self._route_cache: Dict[Tuple[str, ...], Tuple[int, ...]] = {}
        self._compound: List[_Flow] = []  # sized flows spanning several classes
        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self._capacity_version = 0
        self._allocation_cache: Dict[Tuple, Tuple[float, ...]] = {}
        self._dirty = True

        self.now = 0.0
        self.transitions = 0
        self.completions: List[FlowCompletion] = []
        self.flows: Dict[str, _Flow] = {}
        self._active_count = 0
        self.max_concurrent = 0
        self._running = False
        #: flow name -> one-shot callback fired when that flow completes.
        self._on_complete: Dict[str, object] = {}

    # ------------------------------------------------------------------ input
    def add_flow(self, descriptor: FlowDescriptor) -> None:
        """Register one flow; its arrival is scheduled at ``descriptor.start``.

        May also be called *mid-run* from a dynamics or completion callback
        (dependent transfers in a workload), as long as the flow does not
        start in the past.
        """
        if descriptor.name in self.flows:
            raise ConfigurationError(f"duplicate flow name {descriptor.name!r}")
        if self._running and descriptor.start < self.now:
            raise ConfigurationError(
                f"flow {descriptor.name!r} cannot start at t={descriptor.start} "
                f"(simulation is already at t={self.now})"
            )
        flow = _Flow(descriptor)
        self.flows[descriptor.name] = flow
        self._push_event(descriptor.start, _ARRIVE, flow)
        if descriptor.size_bytes is None and descriptor.stop is not None:
            self._push_event(descriptor.stop, _DEPART, flow)

    def add_flows(self, descriptors: Sequence[FlowDescriptor]) -> None:
        for descriptor in descriptors:
            self.add_flow(descriptor)

    def schedule(self, time: float, action, *args) -> None:
        """Schedule a dynamics callback ``action(*args)`` at ``time``."""
        self._push_event(time, _DYNAMICS, (action, args))

    def on_flow_complete(self, name: str, callback) -> None:
        """Register a one-shot ``callback(completion)`` for flow ``name``.

        Fired synchronously when the flow completes; the callback may add
        new flows (:meth:`add_flow`) or schedule further work -- this is how
        the workload layer realises dependency edges (a transfer that starts
        only after its parent finishes).  Flows that never complete never
        fire their callback.
        """
        if name not in self.flows:
            raise ConfigurationError(f"unknown flow {name!r}")
        self._on_complete[name] = callback

    # ------------------------------------------------------------- link state
    def _edge(self, a: str, b: str) -> int:
        try:
            return self._link_index[(a, b)]
        except KeyError:
            raise ConfigurationError(f"unknown link {a!r}->{b!r}") from None

    def _refresh_capacity(self, index: int) -> None:
        self._capacity[index] = (
            0.0 if self._down[index] else self._nominal[index] * self._factor[index]
        )
        self._capacity_version += 1
        self._dirty = True

    def set_link_rate(self, a: str, b: str, mbps: float, *, bidirectional: bool = False) -> None:
        for edge in ((a, b), (b, a)) if bidirectional else ((a, b),):
            index = self._edge(*edge)
            self._nominal[index] = float(mbps)
            self._refresh_capacity(index)

    def set_link_down(self, a: str, b: str, *, bidirectional: bool = True) -> None:
        for edge in ((a, b), (b, a)) if bidirectional else ((a, b),):
            index = self._edge(*edge)
            self._down[index] = True
            self._refresh_capacity(index)

    def set_link_up(self, a: str, b: str, *, bidirectional: bool = True) -> None:
        for edge in ((a, b), (b, a)) if bidirectional else ((a, b),):
            index = self._edge(*edge)
            self._down[index] = False
            self._refresh_capacity(index)

    def scale_link(self, a: str, b: str, factor: float, *, bidirectional: bool = False) -> None:
        """Scale effective capacity (a fluid loss burst keeps ``1 - loss_rate``)."""
        for edge in ((a, b), (b, a)) if bidirectional else ((a, b),):
            index = self._edge(*edge)
            self._factor[index] = max(float(factor), 0.0)
            self._refresh_capacity(index)

    # ------------------------------------------------------------------- run
    def run(self, duration: float) -> FlowLevelResult:
        """Advance the simulation to ``duration`` and return the results."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        heapq.heapify(self._events)
        self._running = True
        while True:
            event_time = self._events[0][0] if self._events else _INF
            completion_time, source = self._next_completion()
            next_time = min(event_time, completion_time)
            if next_time > duration:
                break
            self._advance(next_time)
            if completion_time <= event_time:
                self._complete(source)
            else:
                _, action, _, payload = heapq.heappop(self._events)
                if action == _ARRIVE:
                    self._arrive(payload)
                elif action == _DEPART:
                    self._depart(payload)
                else:
                    callback, args = payload
                    callback(*args)
            self.transitions += 1
            self._resolve()
        self._running = False
        self._advance(duration)
        for flow in self.flows.values():
            if flow.active:
                self._leave(flow, completed=False)
        return FlowLevelResult(
            duration=duration,
            transitions=self.transitions,
            completions=list(self.completions),
            flows={name: self._outcome(flow) for name, flow in self.flows.items()},
            max_concurrent=self.max_concurrent,
        )

    # ------------------------------------------------------------- internals
    def _push_event(self, time: float, action: int, payload: object) -> None:
        # Before run(): plain append, heapified once -- O(n) total instead
        # of O(n log n) pushes.  Mid-run (dependent workload transfers,
        # dynamics callbacks scheduling more work) the heap invariant must
        # be preserved, so those pushes pay the log.
        self._seq += 1
        entry = (float(time), action, self._seq, payload)
        if self._running:
            heapq.heappush(self._events, entry)
        else:
            self._events.append(entry)

    def _route_links(self, route: Tuple[str, ...]) -> Tuple[int, ...]:
        links = self._route_cache.get(route)
        if links is None:
            if len(route) < 2:
                raise ConfigurationError(f"route {route!r} needs at least two nodes")
            links = tuple(self._edge(a, b) for a, b in zip(route, route[1:]))
            self._route_cache[route] = links
        return links

    def _class_for(
        self, links: Tuple[int, ...], weight: float, cap: Optional[float], responsive: bool
    ) -> _RateClass:
        key = (links, weight, cap, responsive)
        cls = self._class_by_key.get(key)
        if cls is None:
            cls = _RateClass(links, weight, cap, responsive)
            self._class_by_key[key] = cls
            self._classes.append(cls)
        return cls

    def _arrive(self, flow: _Flow) -> None:
        descriptor = flow.descriptor
        weight = 1.0 / len(descriptor.routes) if descriptor.coupled else 1.0
        flow.active = True
        for route in descriptor.routes:
            links = self._route_links(route)
            cls = self._class_for(links, weight, descriptor.cap_mbps, descriptor.responsive)
            cls.count += 1
            unit = _Unit(cls, self.now)
            flow.units.append(unit)
            if self.record_timeseries:
                cls.members.append(unit)
        if descriptor.size_bytes is not None:
            if len(flow.units) == 1:
                cls = flow.units[0].cls
                self._seq += 1
                heapq.heappush(
                    cls.heap, (cls.service + descriptor.size_bytes, self._seq, flow)
                )
            else:
                self._compound.append(flow)
        self._active_count += 1
        self.max_concurrent = max(self.max_concurrent, self._active_count)
        self._dirty = True

    def _leave(self, flow: _Flow, *, completed: bool) -> None:
        flow.delivered_final = (
            flow.descriptor.size_bytes
            if completed
            else int(round(sum(unit.delivered() for unit in flow.units)))
        )
        if self.record_timeseries:
            for unit in flow.units:
                unit.flush_segment(self.now)
                unit.cls.count -= 1
                unit.cls.members.remove(unit)
        else:
            for unit in flow.units:
                unit.cls.count -= 1
        flow.active = False
        flow.completed = completed
        flow.end = self.now
        self._active_count -= 1
        self._dirty = True

    def _depart(self, flow: _Flow) -> None:
        if flow.active:
            self._leave(flow, completed=False)

    def _complete(self, source) -> None:
        kind, target = source
        if kind == "class":
            _, _, flow = heapq.heappop(target.heap)
        else:
            flow = target
            self._compound.remove(flow)
        self._leave(flow, completed=True)
        descriptor = flow.descriptor
        completion = FlowCompletion(
            name=descriptor.name,
            start=descriptor.start,
            finish=self.now,
            size_bytes=descriptor.size_bytes or 0,
            kind=descriptor.kind,
        )
        self.completions.append(completion)
        # Cheap falsy check first: runs without listeners pay one dict test.
        if self._on_complete:
            callback = self._on_complete.pop(descriptor.name, None)
            if callback is not None:
                callback(completion)

    def _advance(self, time: float) -> None:
        dt = time - self.now
        if dt > 0.0:
            for cls in self._classes:
                if cls.count > 0 and cls.byte_rate > 0.0:
                    cls.service += cls.byte_rate * dt
        self.now = time

    def _next_completion(self) -> Tuple[float, Optional[Tuple[str, object]]]:
        best = _INF
        source: Optional[Tuple[str, object]] = None
        now = self.now
        for cls in self._classes:
            heap = cls.heap
            if not heap or cls.byte_rate <= 0.0:
                continue
            candidate = now + (heap[0][0] - cls.service) / cls.byte_rate
            if candidate < best:
                best = candidate
                source = ("class", cls)
        for flow in self._compound:
            total_rate = sum(unit.cls.byte_rate for unit in flow.units)
            if total_rate <= 0.0:
                continue
            remaining = flow.descriptor.size_bytes - flow.delivered()
            candidate = now + max(remaining, 0.0) / total_rate
            if candidate < best:
                best = candidate
                source = ("compound", flow)
        return max(best, now) if source is not None else best, source

    def _resolve(self) -> None:
        if not self._dirty:
            return
        self._dirty = False
        counts = tuple(cls.count for cls in self._classes)
        key = (self._capacity_version, counts)
        rates = self._allocation_cache.get(key)
        if rates is None:
            demands = [
                ClassDemand(
                    links=cls.links,
                    count=cls.count,
                    weight=cls.weight,
                    cap=cls.cap,
                    responsive=cls.responsive,
                )
                for cls in self._classes
            ]
            rates = tuple(self.allocator.solve(demands, self._capacity))
            if len(self._allocation_cache) >= 8192:
                self._allocation_cache.clear()
            self._allocation_cache[key] = rates
        for cls, rate in zip(self._classes, rates):
            if rate != cls.rate:
                if self.record_timeseries:
                    for unit in cls.members:
                        unit.flush_segment(self.now)
                cls.rate = rate
                cls.byte_rate = rate * MBPS_TO_BYTES_PER_S
                if self.record_timeseries:
                    for unit in cls.members:
                        unit.segment_rate = rate

    def _outcome(self, flow: _Flow) -> FlowOutcome:
        descriptor = flow.descriptor
        return FlowOutcome(
            name=descriptor.name,
            kind=descriptor.kind,
            start=descriptor.start,
            end=flow.end,
            bytes_delivered=flow.delivered_final,
            completed=flow.completed,
            segments=(
                [list(unit.segments) for unit in flow.units]
                if self.record_timeseries
                else []
            ),
            tags=descriptor.tags or tuple(range(1, len(descriptor.routes) + 1)),
        )
