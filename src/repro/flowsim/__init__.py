"""Flow-level simulation backend: event-per-rate-change, not event-per-packet.

The packet-level simulator (:mod:`repro.netsim`) models every segment and
acknowledgement; it is the ground truth, and it tops out around ~400k packet
events per second.  This package trades packet microstructure for scale: each
flow is a bandwidth-shared transfer placed on :class:`~repro.netsim.topology.Topology`
paths, instantaneous rates come from a pluggable allocator over the link
capacities (weighted max-min by default), and simulated time advances between
*rate-change events only* -- flow arrivals, flow completions and scheduled
network dynamics.  Thousands of concurrent flows cost thousands of events,
not billions of packets.

* :mod:`repro.flowsim.engine` -- the event loop (:class:`FlowLevelSim`),
  flow descriptors and results;
* :mod:`repro.flowsim.allocator` -- the instantaneous rate-sharing rules
  (``maxmin`` / ``proportional_fair`` / ``fluid``);
* :mod:`repro.flowsim.workload` -- shim re-exporting the seeded synthetic
  populations that now live in :mod:`repro.workload.population`;
* :mod:`repro.flowsim.backend` -- adapters running an unmodified
  :class:`~repro.experiments.harness.ExperimentConfig` /
  :class:`~repro.experiments.multiflow.MultiFlowConfig` at flow-level
  fidelity (``backend="flowlevel"``).
"""

from .allocator import ALLOCATORS, FluidAllocator, MaxMinAllocator, ProportionalFairAllocator
from .engine import FlowCompletion, FlowDescriptor, FlowLevelResult, FlowLevelSim
from .workload import heavy_tailed_workload, pareto_size_sampler

__all__ = [
    "ALLOCATORS",
    "FluidAllocator",
    "FlowCompletion",
    "FlowDescriptor",
    "FlowLevelResult",
    "FlowLevelSim",
    "MaxMinAllocator",
    "ProportionalFairAllocator",
    "heavy_tailed_workload",
    "pareto_size_sampler",
]
