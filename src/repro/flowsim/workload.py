"""Compatibility shim: flat flow populations moved to :mod:`repro.workload.population`.

The backend-agnostic workload subsystem (:mod:`repro.workload`) absorbed the
seeded heavy-tailed population generator; this module keeps the historical
``repro.flowsim.workload`` import path working.
"""

from __future__ import annotations

from ..workload.population import heavy_tailed_workload, pareto_size_sampler

__all__ = ["heavy_tailed_workload", "pareto_size_sampler"]
