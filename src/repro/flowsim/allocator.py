"""Instantaneous rate allocators for the flow-level backend.

Between two events the flow-level engine holds every flow's rate constant;
whenever the set of active flows or the link capacities change it asks an
allocator to re-solve the bandwidth sharing.  Flows with identical routing,
weight and rate cap are interchangeable, so the engine aggregates them into
*rate classes* and the allocator works on classes, never on individual flows
-- the solve cost scales with the number of distinct routes, not with the
number of concurrent flows.

Three rules are provided, mirroring the reference allocations the analytical
models already compute (:mod:`repro.model`):

* :class:`MaxMinAllocator` (default) -- weighted progressive filling with
  rate caps.  Coupled MPTCP connections give each subflow weight ``1/n`` so
  a whole connection claims one TCP-fair share of a shared bottleneck, which
  is exactly the operating point LIA/OLIA aim for.
* :class:`ProportionalFairAllocator` -- weighted log-utility maximisation
  (scipy SLSQP), the equilibrium of utility-fair congestion control.
* :class:`FluidAllocator` -- the equilibrium of the matching
  :class:`~repro.model.fluid.FluidModel` congestion-control family, solved on
  a per-flow replicated constraint system (validation-scale scenarios only).

Non-responsive classes (UDP / on-off cross-traffic) are served first at
``min(cap, fair share of the remaining capacity)`` -- a constant-bit-rate
source does not back off, so it must not participate in the fair sharing of
what is left.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Type

from ..errors import ConfigurationError, ModelError


class ClassDemand(NamedTuple):
    """One rate class as the allocator sees it.

    ``links`` are indices into the capacity vector; ``count`` is the number
    of interchangeable flows in the class; ``weight`` scales the class's
    claim per flow in weighted fair sharing; ``cap`` bounds the per-flow rate
    (``None`` = greedy); ``responsive`` is False for constant-bit-rate
    sources that do not back off under congestion.
    """

    links: Tuple[int, ...]
    count: int
    weight: float = 1.0
    cap: Optional[float] = None
    responsive: bool = True


class RateAllocator:
    """Base class: map (rate classes, link capacities) to per-flow rates."""

    name = "base"

    def solve(
        self, demands: Sequence[ClassDemand], capacity: Sequence[float]
    ) -> List[float]:  # pragma: no cover - abstract
        """Per-flow rate (Mbps) for each class, parallel to ``demands``."""
        raise NotImplementedError


_EPS = 1e-9


class MaxMinAllocator(RateAllocator):
    """Weighted max-min fairness by progressive filling, with rate caps.

    All unfrozen classes grow together in proportion to their weights until a
    link saturates (freezing every class crossing it) or a class reaches its
    cap; repeat until nothing can grow.  With uniform weights and no caps
    this is exactly :func:`repro.model.maxmin.max_min_fair_rates` evaluated
    per flow.
    """

    name = "maxmin"

    def solve(
        self, demands: Sequence[ClassDemand], capacity: Sequence[float]
    ) -> List[float]:
        remaining = [float(c) for c in capacity]
        rates = [0.0] * len(demands)

        # Non-responsive classes first: a CBR source takes min(cap, its share
        # of what the link has) and never backs off below that.
        for index, demand in enumerate(demands):
            if demand.responsive or demand.count <= 0:
                continue
            share = min(remaining[link] for link in demand.links) / demand.count
            rate = max(0.0, share if demand.cap is None else min(demand.cap, share))
            rates[index] = rate
            claimed = rate * demand.count
            for link in demand.links:
                remaining[link] -= claimed

        active = {
            index
            for index, demand in enumerate(demands)
            if demand.responsive and demand.count > 0
        }
        # A class that starts on an already-exhausted link stays at rate 0.
        self._freeze_on_tight_links(demands, remaining, active)

        max_rounds = len(demands) + len(remaining) + 1
        for _ in range(max_rounds):
            if not active:
                break
            weight_demand: Dict[int, float] = {}
            for index in active:
                demand = demands[index]
                claim = demand.count * demand.weight
                for link in demand.links:
                    weight_demand[link] = weight_demand.get(link, 0.0) + claim
            increment = min(
                remaining[link] / total for link, total in weight_demand.items()
            )
            capped_now: List[int] = []
            for index in active:
                demand = demands[index]
                if demand.cap is None:
                    continue
                headroom = (demand.cap - rates[index]) / demand.weight
                if headroom <= increment + _EPS:
                    increment = min(increment, headroom)
                    capped_now.append(index)
            increment = max(increment, 0.0)
            for index in active:
                demand = demands[index]
                rates[index] += demand.weight * increment
            for link, total in weight_demand.items():
                remaining[link] -= total * increment
            for index in capped_now:
                rates[index] = demands[index].cap
                active.discard(index)
            frozen = self._freeze_on_tight_links(demands, remaining, active)
            if increment <= 0.0 and not frozen and not capped_now:
                break  # pragma: no cover - defensive against float stalls
        return rates

    @staticmethod
    def _freeze_on_tight_links(
        demands: Sequence[ClassDemand],
        remaining: Sequence[float],
        active: set,
    ) -> bool:
        tight = {link for link, slack in enumerate(remaining) if slack <= _EPS}
        if not tight:
            return False
        frozen = [
            index
            for index in active
            if any(link in tight for link in demands[index].links)
        ]
        for index in frozen:
            active.discard(index)
        return bool(frozen)


class ProportionalFairAllocator(RateAllocator):
    """Weighted proportional fairness: maximise ``sum(n_c * w_c * log r_c)``.

    The utility-fair equilibrium on the same capacity region, solved with
    scipy's SLSQP (the solver behind
    :func:`repro.model.lp.proportional_fair_rates`).  Weighted subflow terms
    approximate coupled connections; intended for validation-scale scenarios,
    not the 10k-flow regime.
    """

    name = "proportional_fair"

    def __init__(self, *, min_rate: float = 1e-3) -> None:
        self.min_rate = min_rate

    def solve(
        self, demands: Sequence[ClassDemand], capacity: Sequence[float]
    ) -> List[float]:
        try:
            import numpy as np
            from scipy.optimize import minimize
        except Exception as error:  # pragma: no cover - scipy is baked in
            raise ModelError("proportional fairness requires scipy") from error

        populated = [i for i, d in enumerate(demands) if d.count > 0]
        if not populated:
            return [0.0] * len(demands)
        fixed: Dict[int, float] = {}
        remaining = [float(c) for c in capacity]
        for index in list(populated):
            demand = demands[index]
            if demand.responsive:
                continue
            share = min(remaining[link] for link in demand.links) / demand.count
            rate = max(0.0, share if demand.cap is None else min(demand.cap, share))
            fixed[index] = rate
            for link in demand.links:
                remaining[link] -= rate * demand.count
            populated.remove(index)
        if not populated:
            return [fixed.get(i, 0.0) for i in range(len(demands))]

        counts = np.asarray([demands[i].count for i in populated], dtype=float)
        weights = np.asarray([demands[i].weight for i in populated], dtype=float)
        objective_weights = counts * weights

        def negative_utility(x: "np.ndarray") -> float:
            return -float(objective_weights @ np.log(np.maximum(x, 1e-12)))

        def gradient(x: "np.ndarray") -> "np.ndarray":
            return -objective_weights / np.maximum(x, 1e-12)

        rows: Dict[int, List[Tuple[int, float]]] = {}
        for column, index in enumerate(populated):
            for link in demands[index].links:
                rows.setdefault(link, []).append((column, demands[index].count))
        constraints = []
        for link, terms in sorted(rows.items()):
            coefficients = np.zeros(len(populated))
            for column, count in terms:
                coefficients[column] += count
            budget = max(remaining[link], 0.0)
            constraints.append(
                {
                    "type": "ineq",
                    "fun": lambda x, c=coefficients, b=budget: b - float(c @ x),
                }
            )
        bounds = [
            (self.min_rate, demands[i].cap if demands[i].cap is not None else None)
            for i in populated
        ]
        start = np.full(
            len(populated),
            max(self.min_rate, min(max(r, 0.0) for r in remaining) / (2.0 * counts.sum())),
        )
        result = minimize(
            negative_utility,
            start,
            jac=gradient,
            bounds=bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-10},
        )
        if not result.success:  # pragma: no cover - defensive
            raise ModelError(f"proportional-fair allocator failed: {result.message}")
        rates = [0.0] * len(demands)
        for column, index in enumerate(populated):
            rates[index] = float(result.x[column])
        for index, rate in fixed.items():
            rates[index] = rate
        return rates


class FluidAllocator(RateAllocator):
    """Equilibrium rates of the matching fluid congestion-control family.

    Replicates each class into one fluid-model path per flow and runs
    :class:`~repro.model.fluid.FluidModel` to (near-)equilibrium, so the
    flow-level backend can expose the exact allocation the model-validation
    suite already predicts.  Replication makes this linear in the number of
    flows -- it refuses scenarios beyond ``max_flows``.
    """

    name = "fluid"

    def __init__(
        self,
        algorithm: str = "uncoupled",
        *,
        duration: float = 8.0,
        max_flows: int = 256,
    ) -> None:
        self.algorithm = algorithm
        self.duration = duration
        self.max_flows = max_flows

    def solve(
        self, demands: Sequence[ClassDemand], capacity: Sequence[float]
    ) -> List[float]:
        from ..model.bottleneck import Constraint, ConstraintSystem
        from ..model.fluid import FluidModel
        from ..model.paths import Path

        populated = [i for i, d in enumerate(demands) if d.count > 0]
        if not populated:
            return [0.0] * len(demands)
        if any(not demands[i].responsive or demands[i].cap is not None for i in populated):
            raise ModelError(
                "the fluid allocator models greedy responsive flows only; "
                "use the maxmin allocator for capped/non-responsive traffic"
            )
        total_flows = sum(demands[i].count for i in populated)
        if total_flows > self.max_flows:
            raise ModelError(
                f"fluid allocator limited to {self.max_flows} concurrent flows "
                f"(got {total_flows}); use the maxmin allocator at scale"
            )
        columns: List[int] = []  # column -> demand index
        for index in populated:
            columns.extend([index] * demands[index].count)
        link_columns: Dict[int, List[int]] = {}
        for column, index in enumerate(columns):
            for link in demands[index].links:
                link_columns.setdefault(link, []).append(column)
        constraints = [
            Constraint(
                link=("link", str(link)),
                capacity=float(capacity[link]),
                path_indices=tuple(cols),
            )
            for link, cols in sorted(link_columns.items())
        ]
        paths = [Path((f"src{c}", f"dst{c}")) for c in range(len(columns))]
        system = ConstraintSystem(paths, constraints)
        equilibrium = FluidModel(system).run(self.algorithm, duration=self.duration)
        per_column = equilibrium.mean_rates(0.25)
        totals: Dict[int, float] = {}
        for column, index in enumerate(columns):
            totals[index] = totals.get(index, 0.0) + per_column[column]
        return [
            totals.get(i, 0.0) / demands[i].count if demands[i].count else 0.0
            for i in range(len(demands))
        ]


#: Allocator registry keyed by the names used in configurations and the CLI.
ALLOCATORS: Dict[str, Type[RateAllocator]] = {
    "maxmin": MaxMinAllocator,
    "proportional_fair": ProportionalFairAllocator,
    "fluid": FluidAllocator,
}


def make_allocator(name_or_instance, **kwargs) -> RateAllocator:
    """Resolve an allocator name (or pass an instance through)."""
    if isinstance(name_or_instance, RateAllocator):
        return name_or_instance
    try:
        cls = ALLOCATORS[str(name_or_instance)]
    except KeyError:
        raise ConfigurationError(
            f"unknown flow allocator {name_or_instance!r}; "
            f"choose from {sorted(ALLOCATORS)}"
        ) from None
    return cls(**kwargs)
