"""repro -- reproduction of "The Performance of Multi-Path TCP with Overlapping Paths".

The package provides four layers:

* :mod:`repro.netsim` -- a discrete-event, packet-level network simulator
  (the Mininet substitute): topologies, rate-limited links, drop-tail queues,
  tag-based routing, tshark-like captures and time-varying link dynamics
  (rate/delay changes, failures, loss bursts on a :class:`Schedule`).
* :mod:`repro.tcp` -- a packet-level TCP with Reno and CUBIC congestion
  control, NewReno loss recovery and RTO handling.
* :mod:`repro.core` -- MPTCP over pre-selected overlapping paths: tagged
  subflows, path managers, schedulers and the coupled congestion-control
  algorithms (LIA, OLIA, plus BALIA/wVegas extensions).
* :mod:`repro.model` -- the analytical side: the throughput-maximisation LP
  of Fig. 1c, greedy/max-min/proportional-fair baselines, Pareto analysis,
  projected-gradient ascent and fluid models.

Quickstart::

    from repro import paper_experiment, run_experiment

    result = run_experiment(paper_experiment("cubic", duration=4.0))
    print(result.summary())
"""

from ._version import __version__
from .core import MptcpConnection, Subflow, TagPathManager
from .errors import (
    ConfigurationError,
    ModelError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    FlowSpec,
    MultiFlowConfig,
    MultiFlowResult,
    fig2a_cubic,
    fig2b_olia,
    fig2c_fine,
    paper_experiment,
    run_experiment,
    run_multiflow,
)
from .model import (
    Path,
    PathSet,
    build_constraints,
    greedy_fill,
    max_min_fair_rates,
    max_total_throughput,
)
from .netsim import (
    DynamicsSpec,
    LinkDelayChange,
    LinkDown,
    LinkRateChange,
    LinkUp,
    LossBurst,
    Network,
    PacketCapture,
    Schedule,
    Simulator,
    Topology,
)
from .tcp import TcpConnection
from .topologies import (
    PAPER_DEFAULT_PATH_INDEX,
    PAPER_OPTIMAL_RATES,
    PAPER_OPTIMAL_TOTAL,
    build_paper_topology,
    paper_paths,
    paper_scenario,
)

__all__ = [
    "ConfigurationError",
    "DynamicsSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "FlowSpec",
    "LinkDelayChange",
    "LinkDown",
    "LinkRateChange",
    "LinkUp",
    "LossBurst",
    "ModelError",
    "MptcpConnection",
    "MultiFlowConfig",
    "MultiFlowResult",
    "Network",
    "PAPER_DEFAULT_PATH_INDEX",
    "PAPER_OPTIMAL_RATES",
    "PAPER_OPTIMAL_TOTAL",
    "PacketCapture",
    "Path",
    "PathSet",
    "ProtocolError",
    "ReproError",
    "RoutingError",
    "Schedule",
    "SimulationError",
    "Simulator",
    "Subflow",
    "TagPathManager",
    "TcpConnection",
    "Topology",
    "TopologyError",
    "__version__",
    "build_constraints",
    "build_paper_topology",
    "fig2a_cubic",
    "fig2b_olia",
    "fig2c_fine",
    "greedy_fill",
    "max_min_fair_rates",
    "max_total_throughput",
    "paper_experiment",
    "paper_paths",
    "paper_scenario",
    "run_experiment",
    "run_multiflow",
]
