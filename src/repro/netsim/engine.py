"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every heap
entry is a plain list ``[time, sequence, callback, args]`` so that heap sift
operations compare ``(time, sequence)`` at C speed instead of calling back
into Python; the sequence number breaks ties so that events scheduled for
the same instant run in FIFO order and the simulation stays deterministic.

Two scheduling APIs are offered:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle that supports cancellation (retransmission timers).
  Cancelled entries are drained by the run loop into a reusable-entry free
  list that feeds subsequent ``schedule`` calls, so a timer that is re-armed
  on every ACK recycles one heap entry instead of allocating a new one.
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_fast_at` are
  the allocation-light fast path for fire-and-forget callbacks (per-packet
  link events): no cancellation handle is created at all.

Typical use::

    sim = Simulator()
    sim.schedule(1.0, print, "one second elapsed")
    sim.run(until=10.0)
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Upper bound on the reusable-entry free list; the pool deque self-evicts
#: its oldest entry beyond this, so recycle sites never pay a length check.
_POOL_LIMIT = 4096

# NOTE: the heap entry layout [time, seq, callback, args] is mirrored by the
# inlined fast-path pushes in netsim/link.py (send/_serve_queue); keep the
# two in sync when changing it.


class Event:
    """A cancellation handle for a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    them later (e.g. a retransmission timer that is re-armed on every ACK).
    Cancellation is lazy: the underlying heap entry stays in the heap but is
    skipped (and recycled) when it reaches the head.
    """

    __slots__ = ("_entry", "_seq", "_cancelled")

    def __init__(self, entry: list):
        self._entry = entry
        self._seq = entry[1]
        self._cancelled = False

    @property
    def time(self) -> float:
        return self._entry[0] if self._entry[1] == self._seq else 0.0

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; it will not run."""
        self._cancelled = True
        entry = self._entry
        # The entry may have been recycled for a different event after this
        # one fired; the sequence number acts as a generation check.
        if entry[1] == self._seq:
            entry[2] = None
            entry[3] = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self._entry[0]:.6f}, {self._entry[2]!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulation time in seconds.
    events_processed:
        Number of callbacks executed by completed :meth:`run` calls (useful
        for micro-benchmarks).  The counter is accumulated locally inside the
        run loop and flushed when :meth:`run` returns, so a callback reading
        it *during* a run sees the value from before that run started.
    """

    __slots__ = ("now", "events_processed", "_heap", "_seq", "_pool", "_running", "_stopped")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: list[list] = []
        self._seq: int = 0
        self._pool: deque = deque(maxlen=_POOL_LIMIT)
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------ API
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = self.now + delay
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
        else:
            entry = [self.now + delay, self._seq, callback, args]
        self._seq += 1
        _heappush(self._heap, entry)
        return Event(entry)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self.now}"
            )
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
        else:
            entry = [time, self._seq, callback, args]
        self._seq += 1
        _heappush(self._heap, entry)
        return Event(entry)

    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget fast path: no :class:`Event` handle is created.

        Use for callbacks that are never cancelled (per-packet link events).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = self.now + delay
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
        else:
            entry = [self.now + delay, self._seq, callback, args]
        self._seq += 1
        _heappush(self._heap, entry)

    def schedule_fast_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self.now}"
            )
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
        else:
            entry = [time, self._seq, callback, args]
        self._seq += 1
        _heappush(self._heap, entry)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel ``event`` if it is not ``None`` and has not yet fired."""
        if event is not None:
            event.cancel()

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def free_list_size(self) -> int:
        """Number of recycled heap entries currently pooled."""
        return len(self._pool)

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.  The clock
            is advanced to ``until`` when the loop drains or stops early.
        max_events:
            Optional safety valve on the number of events to process.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        # Cyclic GC is paused for the duration of the loop: the entry and
        # packet pools keep the per-event allocation rate near zero, but the
        # surviving pools/heap form a large object graph that generation-0
        # collections would otherwise rescan thousands of times per simulated
        # second.  The simulation allocates no reference cycles, so deferring
        # collection until the run returns is safe; the previous GC state is
        # always restored.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # Hoisted locals: the loop body must not touch ``self`` beyond the
        # clock store and the stop-flag check it cannot avoid.
        heap = self._heap
        pool = self._pool
        heappop = _heappop
        processed = 0
        try:
            if until is None and max_events is None:
                # Batched fast loop: no bound checks; the stop flag can only
                # flip inside a callback, so it is tested after the call.
                # Unlike the until-bounded loop below, fired entries are NOT
                # recycled here: with the collector paused, a fresh 4-element
                # list costs less than the reuse dance, and this loop is the
                # schedule_fast micro-benchmark path.
                while heap:
                    entry = heappop(heap)
                    callback = entry[2]
                    if callback is None:
                        # Cancelled: drain into the free list, no re-heapify.
                        pool.append(entry)
                        continue
                    self.now = entry[0]
                    callback(*entry[3])
                    processed += 1
                    if self._stopped:
                        break
            elif max_events is None:
                # Until-bounded loop (Network.run): the horizon is a local
                # float, no other bound checks.  Pop-first beats peek-then-pop
                # -- the horizon is crossed once per run, so the single
                # push-back is cheaper than indexing heap[0] on every event.
                while heap:
                    entry = heappop(heap)
                    callback = entry[2]
                    if callback is None:  # cancelled: drain without running
                        pool.append(entry)
                        continue
                    time = entry[0]
                    if time > until:
                        _heappush(heap, entry)
                        break
                    self.now = time
                    callback(*entry[3])
                    processed += 1
                    # Fired entries are recycled exactly like cancelled ones
                    # (stale Event handles are generation-checked by their
                    # sequence number); the per-packet link pushes feed off
                    # this free list, so network runs allocate no entries in
                    # steady state.
                    pool.append(entry)
                    if self._stopped:
                        break
            else:
                while heap:
                    entry = heap[0]
                    if entry[2] is None:  # cancelled: drain without running
                        heappop(heap)
                        pool.append(entry)
                        continue
                    if until is not None and entry[0] > until:
                        break
                    heappop(heap)
                    self.now = entry[0]
                    entry[2](*entry[3])
                    processed += 1
                    pool.append(entry)
                    if self._stopped:
                        break
                    if processed >= max_events:
                        break
        finally:
            self._running = False
            self.events_processed += processed
            if gc_was_enabled:
                gc.enable()
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"


def make_simulator() -> "Simulator":
    """Simulator honouring the active kernel selection.

    Returns the compiled drop-in event loop (``KernelSim``) when the
    compiled kernel is active and the pure-Python :class:`Simulator`
    otherwise.  Both expose the same API and identical semantics; use this
    instead of ``Simulator()`` wherever the caller has no reason to pin the
    Python implementation.
    """
    from ..kernel import compiled_module  # lazy: kernel builds on first use

    ext = compiled_module()
    if ext is not None:
        return ext.KernelSim()
    return Simulator()
