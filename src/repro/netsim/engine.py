"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every event is
a ``(time, sequence, callback, args)`` tuple; the sequence number breaks ties
so that events scheduled for the same instant run in FIFO order and the
simulation stays deterministic.

Typical use::

    sim = Simulator()
    sim.schedule(1.0, print, "one second elapsed")
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    them later (e.g. a retransmission timer that is re-armed on every ACK).
    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the head.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will not run."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {self.callback!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulation time in seconds.
    events_processed:
        Number of callbacks executed so far (useful for micro-benchmarks).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------ API
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self.now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel ``event`` if it is not ``None`` and has not yet fired."""
        if event is not None:
            event.cancel()

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.  The clock
            is advanced to ``until`` when the loop drains or stops early.
        max_events:
            Optional safety valve on the number of events to process.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.callback(*event.args)
                self.events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
