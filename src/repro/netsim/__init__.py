"""Discrete-event, packet-level network substrate (the Mininet substitute).

Public surface:

* :class:`Simulator` / :class:`Event` -- the event loop
* :class:`Packet` -- the wire unit
* :class:`Topology` / :class:`LinkSpec` -- declarative topology
* :class:`Network` -- instantiated topology (nodes, links, captures)
* :class:`Host`, :class:`Router`, :class:`Link` -- simulation objects
* queues -- :class:`DropTailQueue`, :class:`REDQueue`
* routing -- :class:`TagRoutingTable`, :class:`StaticRoutingTable`, :class:`EcmpRoutingTable`
* :class:`PacketCapture` -- the tshark substitute
* dynamics -- :class:`Schedule`, :class:`DynamicsSpec` and the timed link
  events (:class:`LinkRateChange`, :class:`LinkDown`, ...)
"""

from .capture import CaptureRecord, PacketCapture
from .dynamics import (
    DynamicsEvent,
    DynamicsSpec,
    LinkDelayChange,
    LinkDown,
    LinkRateChange,
    LinkUp,
    LossBurst,
    Schedule,
)
from .engine import Event, Simulator
from .link import Link
from .network import Network
from .node import Host, Node, Router
from .packet import Packet
from .queues import DropTailQueue, Queue, REDQueue, make_queue
from .routing import EcmpRoutingTable, RoutingTable, StaticRoutingTable, TagRoutingTable
from .topology import LinkSpec, NodeSpec, Topology

__all__ = [
    "CaptureRecord",
    "DropTailQueue",
    "DynamicsEvent",
    "DynamicsSpec",
    "EcmpRoutingTable",
    "Event",
    "Host",
    "Link",
    "LinkDelayChange",
    "LinkDown",
    "LinkRateChange",
    "LinkSpec",
    "LinkUp",
    "LossBurst",
    "Network",
    "Node",
    "NodeSpec",
    "Packet",
    "PacketCapture",
    "Queue",
    "REDQueue",
    "Router",
    "RoutingTable",
    "Schedule",
    "Simulator",
    "StaticRoutingTable",
    "TagRoutingTable",
    "Topology",
    "make_queue",
]
