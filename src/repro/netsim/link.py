"""Unidirectional link model: serialisation, propagation delay, queueing.

Each :class:`Link` owns one transmitter and one bounded queue.  When the link
is idle an offered packet starts serialising immediately; otherwise it is
enqueued (and possibly dropped by the queue discipline).  After the
serialisation time ``size * 8 / rate`` the packet propagates for ``delay``
seconds and is then delivered to the downstream node.

This reproduces the behaviour of a ``tc htb`` shaped veth pair in the paper's
Mininet setup: a fixed-rate bottleneck with a FIFO buffer in front of it.

Hot-path design: the transmitter is tracked analytically through
``_busy_until`` instead of a dedicated end-of-serialisation event, so an
uncongested packet costs a *single* pooled delivery event (scheduled at
``start + tx + delay`` via :meth:`Simulator.schedule_fast_at`).  Only while
packets are queued does the link keep one extra "serve" event alive, firing
exactly when the transmitter frees so queue occupancy (and therefore the
drop behaviour of the discipline) evolves identically to the classic
two-event serialise-then-propagate chain.

Dynamics: a link is born *static* and stays on the fast path above until the
first :mod:`repro.netsim.dynamics` event touches it (``set_rate``,
``set_delay``, ``set_down``/``set_up``, ``start_loss_burst``), which flips it
into *dynamic mode*:

* delivery becomes deadline-driven: a per-packet deadline deque mirrors
  ``_in_flight`` so a mid-serve rate change can re-plan the in-service
  packet (the already-scheduled delivery event defers itself when it fires
  early, and an extra event is pushed when the new deadline is earlier);
* the queue-serve chain validates its fire time against ``_serve_at`` so a
  re-planned transmitter never serves two packets at once, and re-arms
  itself when a rate reduction pushed ``_busy_until`` past the old fire
  time;
* ``send`` consults the ``_impaired`` flag (link down, or an active loss
  burst) before the normal transmit/enqueue logic.

Static links pay exactly two predictable branches per packet for all of
this (``_impaired`` in :meth:`send`, ``_dynamic`` in :meth:`_deliver`); the
event layout, pooling and delivery timing are unchanged until an event
fires.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Optional

from heapq import heappush as _link_heappush

from ..units import BITS_PER_BYTE
from .packet import Packet
from .queues import DropTailQueue, Queue

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator
    from .node import Node


class LinkStats:
    """Counters kept by each link for utilisation reporting.

    ``packets_sent``/``bytes_sent``/``busy_time`` are counted when a packet
    *starts* serialising (the merged delivery event leaves no end-of-
    serialisation hook), so a run truncated mid-transmission includes the
    in-flight packet.  ``busy_time`` is kept for inspection; ``utilization``
    derives busy time from ``bytes_sent`` and the rate instead.
    """

    __slots__ = ("packets_sent", "bytes_sent", "packets_dropped", "busy_time")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.busy_time = 0.0

    def utilization(self, rate_bps: float, duration: float) -> float:
        """Fraction of ``duration`` the link spent transmitting.

        The busy time is derived from the bytes put on the wire and the link
        rate, so the figure is exact regardless of how transmissions were
        scheduled internally.
        """
        if duration <= 0 or rate_bps <= 0:
            return 0.0
        busy = self.bytes_sent * BITS_PER_BYTE / rate_bps
        return min(1.0, busy / duration)


class Link:
    """A unidirectional, rate-limited, store-and-forward link.

    Parameters
    ----------
    sim:
        The discrete-event simulator that drives this link.
    src, dst:
        Upstream and downstream :class:`~repro.netsim.node.Node` objects.
    rate_bps:
        Transmission rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Queue discipline; defaults to a 100-packet drop-tail queue.
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "rate_bps",
        "delay",
        "queue",
        "_enqueue",
        "name",
        "stats",
        "_busy_until",
        "_serving",
        "_dst_receive",
        "_fused_receive",
        "_fused_host",
        "_in_flight",
        "up",
        "_impaired",
        "_dynamic",
        "_deadlines",
        "_serve_at",
        "_loss_rate",
        "_loss_until",
        "_loss_rng",
        "_native_sim",
    )

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue: Optional[Queue] = None,
        name: Optional[str] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("link delay cannot be negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue()
        self._enqueue = self.queue.enqueue  # bound once; runs per offered packet
        self.name = name or f"{src.name}->{dst.name}"
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._serving = False
        # Bound once: _deliver runs per packet per hop and the downstream
        # node never changes after construction.  When the downstream node
        # uses the stock Node.receive, its body is fused into _deliver (one
        # call frame per hop saved); custom receive() overrides (tests,
        # instrumented nodes) keep the virtual dispatch.
        self._dst_receive = dst.receive
        from .node import Host, Node  # runtime import: node.py imports this module lazily

        self._fused_receive = type(dst).receive is Node.receive
        # One level deeper: when the downstream node is a stock Host, the
        # capture fan-out and sole-agent dispatch of _deliver_locally are
        # inlined into _deliver as well.
        self._fused_host = (
            self._fused_receive
            and isinstance(dst, Host)
            and type(dst)._deliver_locally is Host._deliver_locally
        )
        #: Packets serialising/propagating on this link, in delivery order.
        #: Deliveries are FIFO by construction (busy_until is monotone, the
        #: propagation delay constant), so the delivery event itself carries
        #: no arguments and pops from the left -- one args-tuple allocation
        #: per packet per hop avoided.
        self._in_flight: deque = deque()
        #: Dynamics state: inert until the first dynamics event touches this
        #: link (see the module docstring).
        self.up = True
        self._impaired = False
        self._dynamic = False
        self._deadlines: deque = deque()  # mirrors _in_flight in dynamic mode
        self._serve_at = -1.0  # canonical fire time of the live serve event
        self._loss_rate = 0.0
        self._loss_until = 0.0
        self._loss_rng: Optional[random.Random] = None
        # The inlined event pushes below reach into the Python simulator's
        # heap/pool internals; a compiled simulator (repro.kernel KernelSim)
        # exposes the same scheduling API but not those internals, so its
        # links go through schedule_fast_at instead.
        self._native_sim = not hasattr(sim, "_pool")

    # ------------------------------------------------------------------
    @property
    def _busy(self) -> bool:
        """Whether the transmitter is serialising a packet right now."""
        return self.sim.now < self._busy_until or self._serving

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns False if the packet was dropped by the queue discipline (or
        by an outage / loss burst on a dynamic link).
        """
        if self._impaired and not self._admit_impaired(packet):
            return False
        sim = self.sim
        now = sim.now
        if now < self._busy_until or self._serving:
            accepted = self._enqueue(packet, now)
            if accepted and not self._serving:
                # First queued packet: arm the serve event for the instant
                # the transmitter frees (the old end-of-serialisation time).
                self._serving = True
                self._serve_at = self._busy_until
                sim.schedule_fast_at(self._busy_until, self._serve_queue)
            return accepted
        # Idle transmitter: transmit inlined (one call frame per packet per
        # hop adds up); keep in sync with the _serve_queue body.
        size = packet.size
        tx_time = size * 8.0 / self.rate_bps
        tx_end = now + tx_time
        self._busy_until = tx_end
        stats = self.stats
        stats.busy_time += tx_time
        stats.packets_sent += 1
        stats.bytes_sent += size
        self._in_flight.append(packet)
        deliver_at = tx_end + self.delay
        if self._dynamic:
            # FIFO guarantee: a delay reduction must not let this packet
            # overtake one already on the wire, so the deadline is clamped to
            # be non-decreasing (the link never reorders).
            deadlines = self._deadlines
            if deadlines and deliver_at < deadlines[-1]:
                deliver_at = deadlines[-1]
            deadlines.append(deliver_at)
        if self._native_sim:
            sim.schedule_fast_at(deliver_at, self._deliver)
            return True
        pool = sim._pool
        if pool:
            entry = pool.pop()
            entry[0] = deliver_at
            entry[1] = sim._seq
            entry[2] = self._deliver
            entry[3] = ()
        else:
            entry = [deliver_at, sim._seq, self._deliver, ()]
        _link_heappush(sim._heap, entry)
        sim._seq += 1
        return True

    # ------------------------------------------------------------------
    def _serve_queue(self) -> None:
        """Runs at the instant the transmitter frees while packets are queued.

        The transmit body (serialisation accounting + single merged
        delivery event, the ``schedule_fast_at`` push inlined) lives here
        and in the idle branch of :meth:`send`; keep the two in sync.  The
        fire time is >= now by construction (tx > 0, delay >= 0), so the
        engine's past-time guard is redundant.
        """
        sim = self.sim
        if self._dynamic:
            # A dynamics event may have orphaned this serve event (rate
            # re-plan, LinkDown): only the event armed for ``_serve_at`` is
            # live.  A rate reduction can also push the transmitter-free
            # time past this event's fire time; re-arm at the new time.
            now = sim.now
            if now != self._serve_at:
                return
            if now < self._busy_until:
                self._serve_at = self._busy_until
                sim.schedule_fast_at(self._busy_until, self._serve_queue)
                return
        queue = self.queue
        packet = queue.dequeue(sim.now)
        if packet is None:
            # Queue drained elsewhere, or an AQM discipline (CoDel) shed
            # every queued packet at departure time.
            self._serving = False
            return
        size = packet.size
        tx_time = size * 8.0 / self.rate_bps
        tx_end = sim.now + tx_time
        self._busy_until = tx_end
        stats = self.stats
        stats.busy_time += tx_time
        stats.packets_sent += 1
        stats.bytes_sent += size
        self._in_flight.append(packet)
        deliver_at = tx_end + self.delay
        if self._dynamic:
            # Same non-decreasing deadline clamp as in send().
            deadlines = self._deadlines
            if deadlines and deliver_at < deadlines[-1]:
                deliver_at = deadlines[-1]
            deadlines.append(deliver_at)
        if self._native_sim:
            sim.schedule_fast_at(deliver_at, self._deliver)
            if not queue._queue:
                self._serving = False
            else:
                self._serve_at = tx_end
                sim.schedule_fast_at(tx_end, self._serve_queue)
            return
        pool = sim._pool
        if pool:
            entry = pool.pop()
            entry[0] = deliver_at
            entry[1] = sim._seq
            entry[2] = self._deliver
            entry[3] = ()
        else:
            entry = [deliver_at, sim._seq, self._deliver, ()]
        _link_heappush(sim._heap, entry)
        sim._seq += 1
        # Friend access to the queue's backing deque (is_empty property
        # dispatch avoided; this fires once per queued packet).
        if not queue._queue:
            self._serving = False
        else:
            self._serve_at = tx_end
            if pool:
                entry = pool.pop()
                entry[0] = tx_end
                entry[1] = sim._seq
                entry[2] = self._serve_queue
                entry[3] = ()
            else:
                entry = [tx_end, sim._seq, self._serve_queue, ()]
            _link_heappush(sim._heap, entry)
            sim._seq += 1

    def _deliver(self) -> None:
        if self._dynamic:
            # Deadline-driven delivery: a mid-serve rate change moves the
            # in-service packet's deadline, so the pre-scheduled event can
            # fire early (defer to the true deadline) or an extra event may
            # exist (swallowed when nothing is in flight, or bounced until
            # the head packet is actually due -- a packet is never delivered
            # before its deadline, and never reordered).
            in_flight = self._in_flight
            if not in_flight:
                return
            deadline = self._deadlines[0]
            if self.sim.now < deadline:
                self.sim.schedule_fast_at(deadline, self._deliver)
                return
            self._deadlines.popleft()
        packet = self._in_flight.popleft()
        packet.hops += 1
        if self._fused_receive:
            # Node.receive inlined; keep in sync with netsim/node.py.
            dst = self.dst
            stats = dst.stats
            stats.received += 1
            if packet.dst == dst.name:
                stats.delivered += 1
                if self._fused_host:
                    # Host._deliver_locally inlined (captures + sole-agent
                    # dispatch); keep in sync with netsim/node.py.
                    captures = dst._captures
                    if captures:
                        now = dst.sim.now
                        for capture in captures:
                            capture(packet, now)
                    sole = dst._sole_agent
                    if sole is not None:
                        if (
                            packet.flow_id == dst._sole_flow
                            and packet.subflow_id == dst._sole_subflow
                        ):
                            sole.handle_packet(packet)
                        return
                    per_flow = dst._agents_by_flow.get(packet.flow_id)
                    if per_flow is not None:
                        agent = per_flow.get(packet.subflow_id)
                        if agent is not None:
                            agent.handle_packet(packet)
                    return
                dst._deliver_locally(packet)
            else:
                stats.forwarded += 1
                # Forwarding fast path: the downstream node's hop-cache
                # lookup (Node.send) inlined for the cache-hit case.
                cache = dst._hop_cache
                if cache is not None and dst._hop_version == dst.routing.version:
                    link = cache.get((packet.dst, packet.tag))
                    if link is not None:
                        link.send(packet)
                        return
                dst.send(packet)
            return
        self._dst_receive(packet, self)

    # ------------------------------------------------------------------ dynamics
    def _go_dynamic(self) -> None:
        """Flip the link into dynamic mode (first dynamics event only).

        Back-fills the deadline deque for packets already in flight: their
        delivery events are exact, so intermediate packets get an always-due
        deadline of 0.0; the newest packet records its true deadline
        (``busy_until + delay`` -- it is the one that set ``busy_until``) so
        a subsequent rate change can re-plan it and later transmissions can
        clamp against it.
        """
        if self._dynamic:
            return
        self._dynamic = True
        deadlines = self._deadlines
        deadlines.clear()
        count = len(self._in_flight)
        for _ in range(count):
            deadlines.append(0.0)
        if count:
            deadlines[-1] = self._busy_until + self.delay

    def _admit_impaired(self, packet: Packet) -> bool:
        """Down-link / loss-burst admission; True lets ``packet`` proceed.

        Dropped packets are counted in ``stats.packets_dropped`` and -- like
        queue drops -- are *not* recycled into the packet pool: the link
        never owns a packet it refused, so the free-list invariants of the
        transport layer are untouched.
        """
        if not self.up:
            self.stats.packets_dropped += 1
            return False
        if self.sim.now < self._loss_until:
            if self._loss_rng.random() < self._loss_rate:
                self.stats.packets_dropped += 1
                return False
            return True
        # Loss burst expired: clear the impairment lazily (no timer event).
        self._impaired = False
        self._loss_rate = 0.0
        return True

    def set_rate(self, rate_bps: float) -> None:
        """Change the transmission rate, re-planning the in-service packet.

        The remaining bits of the packet currently serialising finish at the
        new rate; queued packets serialise entirely at the new rate.  Fully
        serialised (propagating) packets are unaffected.
        """
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self._go_dynamic()
        old_rate = self.rate_bps
        if rate_bps == old_rate:
            return
        sim = self.sim
        now = sim.now
        busy_until = self._busy_until
        if now < busy_until:
            # Mid-serve: re-plan the in-service packet's end of serialisation
            # (and therefore its delivery deadline, preserving its own delay).
            new_end = now + (busy_until - now) * old_rate / rate_bps
            self._busy_until = new_end
            # busy_time was charged for the whole packet at the old rate;
            # correct it by the change in the remaining serialisation time
            # so utilization stays truthful across rate changes.
            self.stats.busy_time += new_end - busy_until
            deadlines = self._deadlines
            if deadlines:
                old_deadline = deadlines[-1]
                new_deadline = old_deadline + (new_end - busy_until)
                if len(deadlines) > 1 and new_deadline < deadlines[-2]:
                    new_deadline = deadlines[-2]  # FIFO: never overtake
                deadlines[-1] = new_deadline
                if new_deadline < old_deadline:
                    # The pre-scheduled event would deliver too late; push an
                    # earlier one (the stale event is swallowed by _deliver).
                    sim.schedule_fast_at(new_deadline, self._deliver)
            if self._serving:
                # Re-arm the queue-serve chain at the new free time; the old
                # serve event dies on the _serve_at check.
                self._serve_at = new_end
                sim.schedule_fast_at(new_end, self._serve_queue)
        self.rate_bps = float(rate_bps)

    def set_delay(self, delay: float) -> None:
        """Change the propagation delay for subsequently transmitted packets."""
        if delay < 0:
            raise ValueError("link delay cannot be negative")
        self._go_dynamic()
        self.delay = float(delay)

    def set_down(self, *, flush: str = "drop") -> None:
        """Fail the link: offered packets drop until :meth:`set_up`.

        ``flush="drop"`` discards the queued packets (counted in
        ``stats.packets_dropped``); ``flush="park"`` keeps them queued for
        delivery after the link comes back.  Packets already serialised onto
        the wire are delivered either way.
        """
        if flush not in ("drop", "park"):
            raise ValueError(f"unknown flush mode {flush!r}; use 'drop' or 'park'")
        self._go_dynamic()
        if not self.up:
            return
        self.up = False
        self._impaired = True
        self._serving = False
        self._serve_at = -1.0  # orphan any pending serve event
        if flush == "drop":
            queue = self.queue
            stats = self.stats
            now = self.sim.now
            packet = queue.dequeue(now)
            while packet is not None:
                stats.packets_dropped += 1
                packet = queue.dequeue(now)

    def set_up(self) -> None:
        """Restore a failed link; parked packets resume transmission."""
        self._go_dynamic()
        if self.up:
            return
        self.up = True
        now = self.sim.now
        self._impaired = now < self._loss_until
        if self.queue._queue and not self._serving:
            # Parked packets: resume serving once the transmitter frees (it
            # may still be finishing the packet committed before the cut).
            serve_at = self._busy_until if self._busy_until > now else now
            self._serving = True
            self._serve_at = serve_at
            self.sim.schedule_fast_at(serve_at, self._serve_queue)

    def start_loss_burst(self, duration: float, loss_rate: float = 1.0, *, seed: int = 0) -> None:
        """Drop offered packets with ``loss_rate`` for ``duration`` seconds.

        Deterministic: each burst reseeds the per-link RNG from ``seed``, so
        a burst's drop pattern depends only on its own seed -- identical
        schedules reproduce identical patterns, and distinct seeds give
        independent realizations regardless of burst order.
        """
        if duration < 0:
            raise ValueError("loss burst duration cannot be negative")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self._go_dynamic()
        self._loss_rate = float(loss_rate)
        self._loss_until = self.sim.now + duration
        self._loss_rng = random.Random(seed)
        if self.up:
            self._impaired = True

    # ------------------------------------------------------------------
    @property
    def drops(self) -> int:
        """Packets dropped at this link (queue discipline + outage drops)."""
        return self.queue.stats.dropped + self.stats.packets_dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, {self.delay * 1e3:.2f} ms)"
